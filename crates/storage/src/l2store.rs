//! Crash-durable disk-backed fingerprint store — the mapping service's
//! L2 cache.
//!
//! The paper's premise is that a multi-level cache hierarchy keeps hot
//! data close across disruptions; the serving layer gets the same
//! treatment here. An [`L2Store`] persists `fingerprint → payload`
//! records (the service stores canonical `MappedProgram` JSON) in
//! **append-only segment files** so a restarted server recovers its
//! working set instead of recomputing it:
//!
//! * every record carries an FNV-1a/64 checksum over its entire body —
//!   a bit flip anywhere invalidates exactly that record, at recovery
//!   *and* on every read;
//! * recovery is **torn-tail tolerant**: scanning stops at the first
//!   invalid record, the file is truncated back to the last valid one,
//!   and the store always opens (a crash mid-append never bricks it);
//! * the in-memory index is rebuilt from the segments on open — there is
//!   no separate index file to corrupt;
//! * segments are sealed (fsync + rotate) past a size threshold, so a
//!   crash loses at most the unsynced tail of the active segment;
//! * invalidation is durable: deletes and scope-wide invalidations
//!   (keyed on the `(platform, version)` fingerprint) are tombstone
//!   records replayed in order at recovery, so a restart cannot
//!   resurrect entries invalidated before the crash;
//! * entries expire after a TTL, checked lazily on `get` and swept at
//!   open.
//!
//! Record layout (little-endian, `HEADER_LEN` = 52 bytes):
//!
//! ```text
//! magic   u32   0x4c32_4543 ("CEL2")
//! kind    u8    1 = put, 2 = delete, 3 = delete-scope
//! pad     3×u8  zero
//! key     16 B  record fingerprint (zero for delete-scope)
//! scope   16 B  (platform, version) fingerprint
//! created u64   unix seconds at append
//! len     u32   payload byte count (0 for tombstones)
//! payload len B
//! sum     u64   FNV-1a/64 of every preceding byte of the record
//! ```

use cachemap_util::{Fingerprint, FxHashMap};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: u32 = 0x4c32_4543;
const HEADER_LEN: usize = 4 + 1 + 3 + 16 + 16 + 8 + 4;
const TRAILER_LEN: usize = 8;

const KIND_PUT: u8 = 1;
const KIND_DELETE: u8 = 2;
const KIND_DELETE_SCOPE: u8 = 3;

const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut state = FNV64_OFFSET;
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV64_PRIME);
    }
    state
}

/// Tuning knobs for an [`L2Store`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L2Config {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Entry time-to-live in seconds; `0` disables expiry.
    pub ttl_secs: u64,
    /// Active-segment size (bytes) past which it is sealed (fsync +
    /// rotate to a fresh segment).
    pub segment_bytes: u64,
}

impl L2Config {
    /// A config with the given directory and the default TTL (1 day) and
    /// segment size (8 MiB).
    pub fn at<P: Into<PathBuf>>(dir: P) -> Self {
        L2Config {
            dir: dir.into(),
            ttl_secs: 86_400,
            segment_bytes: 8 << 20,
        }
    }
}

/// Where one live record sits on disk.
struct IndexEntry {
    segment: u64,
    /// Byte offset of the record header within the segment.
    offset: u64,
    /// Payload byte count.
    len: u32,
    created: u64,
    scope: Fingerprint,
}

/// Counters describing what recovery found (surfaced in service stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Valid records replayed (puts and tombstones).
    pub records_replayed: u64,
    /// Segments whose tail was truncated past the last valid record.
    pub segments_truncated: u64,
    /// Bytes discarded by torn-tail truncation.
    pub bytes_truncated: u64,
    /// Entries dropped at open because their TTL had expired.
    pub entries_expired: u64,
}

/// A crash-durable, append-only fingerprint→bytes store.
pub struct L2Store {
    cfg: L2Config,
    index: FxHashMap<Fingerprint, IndexEntry>,
    /// Open read handles per segment (including the active one).
    readers: FxHashMap<u64, File>,
    active_id: u64,
    active: File,
    active_len: u64,
    recovery: RecoveryStats,
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:08}.log"))
}

/// One decoded record during the recovery scan.
struct Decoded {
    kind: u8,
    key: Fingerprint,
    scope: Fingerprint,
    created: u64,
    len: u32,
    /// Total encoded size (header + payload + trailer).
    total: usize,
}

/// Decodes and checksum-validates the record starting at `buf[off..]`.
fn decode_record(buf: &[u8], off: usize) -> Option<Decoded> {
    let rest = &buf[off..];
    if rest.len() < HEADER_LEN + TRAILER_LEN {
        return None;
    }
    if u32::from_le_bytes(rest[0..4].try_into().unwrap()) != MAGIC {
        return None;
    }
    let kind = rest[4];
    if !(KIND_PUT..=KIND_DELETE_SCOPE).contains(&kind) {
        return None;
    }
    let key = Fingerprint(u128::from_le_bytes(rest[8..24].try_into().unwrap()));
    let scope = Fingerprint(u128::from_le_bytes(rest[24..40].try_into().unwrap()));
    let created = u64::from_le_bytes(rest[40..48].try_into().unwrap());
    let len = u32::from_le_bytes(rest[48..52].try_into().unwrap());
    let total = HEADER_LEN + len as usize + TRAILER_LEN;
    if rest.len() < total {
        return None;
    }
    let sum = u64::from_le_bytes(rest[total - TRAILER_LEN..total].try_into().unwrap());
    if fnv64(&rest[..total - TRAILER_LEN]) != sum {
        return None;
    }
    Some(Decoded {
        kind,
        key,
        scope,
        created,
        len,
        total,
    })
}

/// Encodes one record (any kind) into a fresh buffer.
fn encode_record(
    kind: u8,
    key: Fingerprint,
    scope: Fingerprint,
    created: u64,
    payload: &[u8],
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.push(kind);
    buf.extend_from_slice(&[0u8; 3]);
    buf.extend_from_slice(&key.0.to_le_bytes());
    buf.extend_from_slice(&scope.0.to_le_bytes());
    buf.extend_from_slice(&created.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    let sum = fnv64(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

impl L2Store {
    /// Opens (or creates) the store, rebuilding the index from the
    /// segment files. Corrupt or torn data is truncated away — recovery
    /// never refuses to start over bad record bytes. `now_secs` drives
    /// the TTL sweep of recovered entries.
    pub fn open(cfg: L2Config, now_secs: u64) -> std::io::Result<L2Store> {
        std::fs::create_dir_all(&cfg.dir)?;
        let mut ids: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(&cfg.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                ids.push(id);
            }
        }
        ids.sort_unstable();

        let mut index: FxHashMap<Fingerprint, IndexEntry> = FxHashMap::default();
        let mut recovery = RecoveryStats::default();
        let mut last_len = 0u64;
        for &id in &ids {
            let path = segment_path(&cfg.dir, id);
            let mut buf = Vec::new();
            File::open(&path)?.read_to_end(&mut buf)?;
            let mut off = 0usize;
            while off < buf.len() {
                let Some(rec) = decode_record(&buf, off) else {
                    // Torn tail or bit-flipped record: drop everything
                    // from here on (append-only order means nothing
                    // after a bad record can be trusted).
                    recovery.segments_truncated += 1;
                    recovery.bytes_truncated += (buf.len() - off) as u64;
                    OpenOptions::new()
                        .write(true)
                        .open(&path)?
                        .set_len(off as u64)?;
                    buf.truncate(off);
                    break;
                };
                match rec.kind {
                    KIND_PUT => {
                        index.insert(
                            rec.key,
                            IndexEntry {
                                segment: id,
                                offset: off as u64,
                                len: rec.len,
                                created: rec.created,
                                scope: rec.scope,
                            },
                        );
                    }
                    KIND_DELETE => {
                        index.remove(&rec.key);
                    }
                    _ => {
                        index.retain(|_, e| e.scope != rec.scope);
                    }
                }
                recovery.records_replayed += 1;
                off += rec.total;
            }
            last_len = buf.len() as u64;
        }

        // TTL sweep of what recovery kept.
        if cfg.ttl_secs > 0 {
            let before = index.len();
            index.retain(|_, e| now_secs < e.created.saturating_add(cfg.ttl_secs));
            recovery.entries_expired = (before - index.len()) as u64;
        }

        let active_id = ids.last().copied().unwrap_or(0);
        let active_path = segment_path(&cfg.dir, active_id);
        let active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&active_path)?;
        let active_len = if ids.is_empty() { 0 } else { last_len };
        Ok(L2Store {
            cfg,
            index,
            readers: FxHashMap::default(),
            active_id,
            active,
            active_len,
            recovery,
        })
    }

    /// What recovery found when this store was opened.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// Number of live (indexed, unexpired-at-last-touch) records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no record is live.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Appends `key → payload` under `scope`. The record is durable
    /// against process crash once the segment seals (or [`L2Store::flush`]
    /// runs); until then it survives in the OS page cache.
    pub fn put(
        &mut self,
        key: Fingerprint,
        scope: Fingerprint,
        payload: &[u8],
        now_secs: u64,
    ) -> std::io::Result<()> {
        let rec = encode_record(KIND_PUT, key, scope, now_secs, payload);
        let offset = self.active_len;
        self.active.write_all(&rec)?;
        self.active_len += rec.len() as u64;
        self.index.insert(
            key,
            IndexEntry {
                segment: self.active_id,
                offset,
                len: payload.len() as u32,
                created: now_secs,
                scope,
            },
        );
        if self.active_len >= self.cfg.segment_bytes {
            self.seal()?;
        }
        Ok(())
    }

    /// Looks `key` up, verifying TTL and the on-disk checksum. A record
    /// that expired, vanished, or fails its checksum (bit flip after the
    /// recovery scan) is dropped from the index and reported as a miss —
    /// the store never returns corrupt bytes.
    pub fn get(&mut self, key: &Fingerprint, now_secs: u64) -> Option<Vec<u8>> {
        let entry = self.index.get(key)?;
        if self.cfg.ttl_secs > 0 && now_secs >= entry.created.saturating_add(self.cfg.ttl_secs) {
            self.index.remove(key);
            return None;
        }
        let (segment, offset, len) = (entry.segment, entry.offset, entry.len);
        let total = HEADER_LEN + len as usize + TRAILER_LEN;
        let mut buf = vec![0u8; total];
        let read_ok = self
            .reader(segment)
            .and_then(|f| {
                f.seek(SeekFrom::Start(offset))?;
                f.read_exact(&mut buf)
            })
            .is_ok();
        let valid =
            read_ok && decode_record(&buf, 0).is_some_and(|r| r.kind == KIND_PUT && r.key == *key);
        if !valid {
            self.index.remove(key);
            return None;
        }
        Some(buf[HEADER_LEN..HEADER_LEN + len as usize].to_vec())
    }

    /// [`L2Store::get`] plus the lookup's wall-clock duration in
    /// nanoseconds (index probe + disk read + checksum verify), for
    /// per-request latency attribution.
    pub fn get_timed(&mut self, key: &Fingerprint, now_secs: u64) -> (Option<Vec<u8>>, u64) {
        let t0 = std::time::Instant::now();
        let hit = self.get(key, now_secs);
        (hit, t0.elapsed().as_nanos() as u64)
    }

    /// Durably removes `key`: drops it from the index and appends a
    /// tombstone so recovery cannot resurrect it.
    pub fn invalidate(&mut self, key: Fingerprint, now_secs: u64) -> std::io::Result<()> {
        if self.index.remove(&key).is_none() {
            return Ok(());
        }
        let rec = encode_record(KIND_DELETE, key, Fingerprint(0), now_secs, &[]);
        self.active.write_all(&rec)?;
        self.active_len += rec.len() as u64;
        Ok(())
    }

    /// Durably removes every record under `scope` (the `(platform,
    /// version)` fingerprint) — the invalidation hook for platform
    /// reconfiguration. One tombstone covers the whole scope.
    pub fn invalidate_scope(&mut self, scope: Fingerprint, now_secs: u64) -> std::io::Result<()> {
        self.index.retain(|_, e| e.scope != scope);
        let rec = encode_record(KIND_DELETE_SCOPE, Fingerprint(0), scope, now_secs, &[]);
        self.active.write_all(&rec)?;
        self.active_len += rec.len() as u64;
        Ok(())
    }

    /// Seals the active segment: fsync it and rotate to a fresh one.
    pub fn seal(&mut self) -> std::io::Result<()> {
        self.active.sync_all()?;
        self.active_id += 1;
        self.active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.cfg.dir, self.active_id))?;
        self.active_len = 0;
        Ok(())
    }

    /// Fsyncs the active segment without rotating — the drain-time
    /// "flush dirty segments" step.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.active.sync_all()
    }

    fn reader(&mut self, segment: u64) -> std::io::Result<&mut File> {
        use std::collections::hash_map::Entry;
        match self.readers.entry(segment) {
            Entry::Occupied(e) => Ok(e.into_mut()),
            Entry::Vacant(e) => {
                let f = File::open(segment_path(&self.cfg.dir, segment))?;
                Ok(e.insert(f))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cachemap-l2-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fp(n: u128) -> Fingerprint {
        Fingerprint(n)
    }

    #[test]
    fn put_get_survive_reopen() {
        let dir = temp_dir("reopen");
        let cfg = L2Config::at(&dir);
        {
            let mut s = L2Store::open(cfg.clone(), 100).unwrap();
            s.put(fp(1), fp(9), b"alpha", 100).unwrap();
            s.put(fp(2), fp(9), b"beta", 101).unwrap();
            s.flush().unwrap();
        }
        let mut s = L2Store::open(cfg, 102).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(&fp(1), 102).as_deref(), Some(&b"alpha"[..]));
        assert_eq!(s.get(&fp(2), 102).as_deref(), Some(&b"beta"[..]));
        assert_eq!(s.get(&fp(3), 102), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn later_put_wins_and_tombstones_are_durable() {
        let dir = temp_dir("tomb");
        let cfg = L2Config::at(&dir);
        {
            let mut s = L2Store::open(cfg.clone(), 10).unwrap();
            s.put(fp(1), fp(9), b"old", 10).unwrap();
            s.put(fp(1), fp(9), b"new", 11).unwrap();
            s.put(fp(2), fp(9), b"dead", 11).unwrap();
            s.invalidate(fp(2), 12).unwrap();
            s.flush().unwrap();
        }
        let mut s = L2Store::open(cfg, 13).unwrap();
        assert_eq!(s.get(&fp(1), 13).as_deref(), Some(&b"new"[..]));
        assert_eq!(s.get(&fp(2), 13), None, "tombstone must survive restart");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scope_invalidation_is_durable_and_selective() {
        let dir = temp_dir("scope");
        let cfg = L2Config::at(&dir);
        {
            let mut s = L2Store::open(cfg.clone(), 10).unwrap();
            s.put(fp(1), fp(100), b"a", 10).unwrap();
            s.put(fp(2), fp(100), b"b", 10).unwrap();
            s.put(fp(3), fp(200), b"c", 10).unwrap();
            s.invalidate_scope(fp(100), 11).unwrap();
            assert_eq!(s.len(), 1);
            s.flush().unwrap();
        }
        let mut s = L2Store::open(cfg, 12).unwrap();
        assert_eq!(s.get(&fp(1), 12), None);
        assert_eq!(s.get(&fp(2), 12), None);
        assert_eq!(s.get(&fp(3), 12).as_deref(), Some(&b"c"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ttl_expires_lazily_and_at_open() {
        let dir = temp_dir("ttl");
        let cfg = L2Config {
            ttl_secs: 10,
            ..L2Config::at(&dir)
        };
        let mut s = L2Store::open(cfg.clone(), 0).unwrap();
        s.put(fp(1), fp(9), b"x", 0).unwrap();
        assert!(s.get(&fp(1), 9).is_some());
        assert!(s.get(&fp(1), 10).is_none(), "lazy expiry on get");
        s.put(fp(2), fp(9), b"y", 20).unwrap();
        s.flush().unwrap();
        drop(s);
        let mut s = L2Store::open(cfg, 29).unwrap();
        assert_eq!(s.len(), 1, "open-time sweep expires aged entries");
        assert_eq!(s.recovery_stats().entries_expired, 1);
        assert!(s.get(&fp(2), 29).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = temp_dir("torn");
        let cfg = L2Config::at(&dir);
        {
            let mut s = L2Store::open(cfg.clone(), 5).unwrap();
            s.put(fp(1), fp(9), b"whole", 5).unwrap();
            s.put(fp(2), fp(9), b"torn-away", 5).unwrap();
            s.flush().unwrap();
        }
        // Chop 3 bytes off the tail, mid-record.
        let path = segment_path(&dir, 0);
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let mut s = L2Store::open(cfg, 6).unwrap();
        assert_eq!(s.get(&fp(1), 6).as_deref(), Some(&b"whole"[..]));
        assert_eq!(s.get(&fp(2), 6), None, "torn record must be dropped");
        assert_eq!(s.recovery_stats().segments_truncated, 1);
        assert!(s.recovery_stats().bytes_truncated > 0);
        // The truncated file accepts fresh appends cleanly.
        s.put(fp(3), fp(9), b"after", 6).unwrap();
        drop(s);
        let mut s = L2Store::open(L2Config::at(&dir), 7).unwrap();
        assert_eq!(s.get(&fp(3), 7).as_deref(), Some(&b"after"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_rotate_and_all_remain_readable() {
        let dir = temp_dir("rotate");
        let cfg = L2Config {
            segment_bytes: 128, // tiny: force rotation every couple of puts
            ..L2Config::at(&dir)
        };
        let mut s = L2Store::open(cfg.clone(), 0).unwrap();
        for i in 0..20u128 {
            s.put(fp(i), fp(9), format!("payload-{i}").as_bytes(), 0)
                .unwrap();
        }
        assert!(s.active_id > 0, "rotation must have happened");
        for i in 0..20u128 {
            assert_eq!(
                s.get(&fp(i), 1).as_deref(),
                Some(format!("payload-{i}").as_bytes()),
                "record {i}"
            );
        }
        drop(s);
        let mut s = L2Store::open(cfg, 1).unwrap();
        assert_eq!(s.len(), 20);
        assert_eq!(s.get(&fp(19), 1).as_deref(), Some(&b"payload-19"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_caught_on_read() {
        let dir = temp_dir("flip");
        let cfg = L2Config::at(&dir);
        let mut s = L2Store::open(cfg, 0).unwrap();
        s.put(fp(1), fp(9), b"pristine-payload", 0).unwrap();
        s.flush().unwrap();
        // Flip one payload bit behind the store's back.
        let path = segment_path(s.cfg.dir.as_path(), 0);
        let mut bytes = std::fs::read(&path).unwrap();
        let k = HEADER_LEN + 4;
        bytes[k] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        s.readers.clear(); // drop cached handles so the flip is visible
        assert_eq!(s.get(&fp(1), 1), None, "corrupt record must be a miss");
        assert_eq!(s.len(), 0, "corrupt record must leave the index");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
