//! Fault-injection plans for the storage hierarchy simulator.
//!
//! A [`FaultPlan`] is a serializable schedule of failures applied to a
//! run: node crashes at a simulated time, disk latency degradation,
//! cache-capacity degradation, and seeded transient access errors. The
//! engine applies events lazily, in the same global-time heap order it
//! uses for client operations, so a faulty run stays byte-for-byte
//! reproducible: the same seed and the same plan always produce the
//! identical [`FaultStats`].
//!
//! Failure semantics (documented here, implemented in
//! [`crate::engine`]):
//!
//! * **I/O-node crash** — the node's L2 cache contents are lost (dirty
//!   chunks are counted as lost-and-refetched); later accesses routed
//!   through it fail over to the lowest-indexed surviving sibling I/O
//!   node under the same storage parent, or go direct-to-storage when
//!   no sibling survives.
//! * **Storage-node crash** — the node's L3 cache is lost the same way.
//!   Its disks stay reachable (the crash models the cache-server
//!   daemon, not the enclosure), so later misses bypass L3 and stream
//!   from disk.
//! * **Disk degradation** — every disk of one storage node services
//!   requests `latency_factor`× slower from the event time on.
//! * **Cache degradation** — one cache shrinks to a smaller capacity;
//!   evicted dirty chunks are written back to the next level down
//!   asynchronously (they occupy the lower-level resource clocks but no
//!   client waits for them).
//! * **Transient errors** — each remote access (an L1 miss) draws from
//!   a seeded [`cachemap_util::XorShift64`]; an error is retried with
//!   capped exponential backoff charged to simulated time.

use crate::config::PlatformConfig;
use cachemap_util::{Json, ToJson};
use std::fmt;

/// Which cache a [`FaultEvent::CacheDegrade`] shrinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradeLevel {
    /// A client (L1) cache; `node` is the client index.
    Client,
    /// An I/O-node (L2) cache; `node` is the I/O-node index.
    Io,
    /// A storage-node (L3) cache; `node` is the storage-node index.
    Storage,
}

impl DegradeLevel {
    fn label(&self) -> &'static str {
        match self {
            DegradeLevel::Client => "client",
            DegradeLevel::Io => "io",
            DegradeLevel::Storage => "storage",
        }
    }

    fn from_label(s: &str) -> Option<Self> {
        match s {
            "client" => Some(DegradeLevel::Client),
            "io" => Some(DegradeLevel::Io),
            "storage" => Some(DegradeLevel::Storage),
            _ => None,
        }
    }
}

/// One scheduled failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// I/O node `io` crashes at simulated time `at_ns`.
    IoNodeCrash {
        /// I/O-node index.
        io: usize,
        /// Simulated time of the crash, ns.
        at_ns: u64,
    },
    /// Storage node `storage` crashes at simulated time `at_ns`.
    StorageNodeCrash {
        /// Storage-node index.
        storage: usize,
        /// Simulated time of the crash, ns.
        at_ns: u64,
    },
    /// Every disk of storage node `storage` becomes `latency_factor`×
    /// slower from `at_ns` on.
    DiskDegrade {
        /// Storage-node index whose spindles degrade.
        storage: usize,
        /// Simulated time the degradation starts, ns.
        at_ns: u64,
        /// Service-time multiplier (≥ 1).
        latency_factor: u32,
    },
    /// One cache shrinks to `capacity_chunks` at `at_ns`.
    CacheDegrade {
        /// Which cache level.
        level: DegradeLevel,
        /// Node index within that level.
        node: usize,
        /// Simulated time the capacity drops, ns.
        at_ns: u64,
        /// New capacity in chunks (≥ 1).
        capacity_chunks: usize,
    },
}

impl FaultEvent {
    /// Simulated time at which the event fires.
    pub fn at_ns(&self) -> u64 {
        match *self {
            FaultEvent::IoNodeCrash { at_ns, .. }
            | FaultEvent::StorageNodeCrash { at_ns, .. }
            | FaultEvent::DiskDegrade { at_ns, .. }
            | FaultEvent::CacheDegrade { at_ns, .. } => at_ns,
        }
    }
}

/// Seeded transient access errors: each remote access fails with
/// probability `rate_ppm / 1_000_000` per attempt and is retried with
/// capped exponential backoff charged to simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransientFaults {
    /// Error probability per remote-access attempt, in parts per
    /// million. Must be below 1 000 000.
    pub rate_ppm: u32,
    /// RNG seed; the same seed reproduces the same error sequence.
    pub seed: u64,
}

/// Why a [`FaultPlan`] is inconsistent with a platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlanError {
    /// An event names an I/O node the platform does not have.
    IoIndexOutOfRange {
        /// Offending index.
        io: usize,
        /// Number of I/O nodes in the platform.
        num_io_nodes: usize,
    },
    /// An event names a storage node the platform does not have.
    StorageIndexOutOfRange {
        /// Offending index.
        storage: usize,
        /// Number of storage nodes in the platform.
        num_storage_nodes: usize,
    },
    /// A cache-degrade event names a client the platform does not have.
    ClientIndexOutOfRange {
        /// Offending index.
        client: usize,
        /// Number of clients in the platform.
        num_clients: usize,
    },
    /// A disk-degrade factor of zero would stop time.
    ZeroLatencyFactor,
    /// A cache cannot degrade to zero capacity.
    ZeroDegradedCapacity,
    /// The transient error rate must stay below one (1 000 000 ppm),
    /// otherwise retries never terminate.
    TransientRateTooHigh {
        /// Offending rate.
        rate_ppm: u32,
    },
    /// A cache-degrade entry targets a node at or after the crash that
    /// destroys that node's cache — the degradation could only shrink a
    /// cache that no longer exists, so the plan is contradictory.
    /// (Disk degradation after a storage-node crash remains valid: the
    /// crash models the cache-server daemon, the spindles survive.)
    CrashDegradeOverlap {
        /// Which cache level the degrade entry names.
        level: DegradeLevel,
        /// Node index within that level.
        node: usize,
        /// When the node crashes.
        crash_at_ns: u64,
        /// When the (unreachable) degradation was scheduled.
        degrade_at_ns: u64,
    },
    /// The plan's JSON form could not be decoded.
    Malformed {
        /// Human-readable decode failure.
        message: String,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::IoIndexOutOfRange { io, num_io_nodes } => {
                write!(
                    f,
                    "I/O node {io} out of range (platform has {num_io_nodes})"
                )
            }
            FaultPlanError::StorageIndexOutOfRange {
                storage,
                num_storage_nodes,
            } => write!(
                f,
                "storage node {storage} out of range (platform has {num_storage_nodes})"
            ),
            FaultPlanError::ClientIndexOutOfRange {
                client,
                num_clients,
            } => write!(
                f,
                "client {client} out of range (platform has {num_clients})"
            ),
            FaultPlanError::ZeroLatencyFactor => {
                write!(f, "disk latency factor must be at least 1")
            }
            FaultPlanError::ZeroDegradedCapacity => {
                write!(f, "degraded cache capacity must be at least 1 chunk")
            }
            FaultPlanError::TransientRateTooHigh { rate_ppm } => write!(
                f,
                "transient error rate {rate_ppm} ppm must be below 1000000"
            ),
            FaultPlanError::CrashDegradeOverlap {
                level,
                node,
                crash_at_ns,
                degrade_at_ns,
            } => write!(
                f,
                "{} node {node} crashes at {crash_at_ns} ns but a cache degradation \
                 is scheduled for it at {degrade_at_ns} ns (the crash already \
                 destroyed that cache)",
                level.label()
            ),
            FaultPlanError::Malformed { message } => {
                write!(f, "malformed fault plan: {message}")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A schedule of failures to inject into one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Scheduled events, applied in `(at_ns, list order)`.
    pub events: Vec<FaultEvent>,
    /// Optional seeded transient access errors.
    pub transient: Option<TransientFaults>,
}

impl FaultPlan {
    /// An empty plan (injects nothing; a run with it is bit-identical
    /// to a fault-free run).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds one event (builder style).
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Sets the transient-error model (builder style).
    pub fn with_transient(mut self, transient: TransientFaults) -> Self {
        self.transient = Some(transient);
        self
    }

    /// True if the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.transient.is_none()
    }

    /// Checks every event against the platform's topology and the
    /// transient model's termination requirement.
    pub fn validate(&self, cfg: &PlatformConfig) -> Result<(), FaultPlanError> {
        for ev in &self.events {
            match *ev {
                FaultEvent::IoNodeCrash { io, .. } => {
                    if io >= cfg.num_io_nodes {
                        return Err(FaultPlanError::IoIndexOutOfRange {
                            io,
                            num_io_nodes: cfg.num_io_nodes,
                        });
                    }
                }
                FaultEvent::StorageNodeCrash { storage, .. } => {
                    if storage >= cfg.num_storage_nodes {
                        return Err(FaultPlanError::StorageIndexOutOfRange {
                            storage,
                            num_storage_nodes: cfg.num_storage_nodes,
                        });
                    }
                }
                FaultEvent::DiskDegrade {
                    storage,
                    latency_factor,
                    ..
                } => {
                    if storage >= cfg.num_storage_nodes {
                        return Err(FaultPlanError::StorageIndexOutOfRange {
                            storage,
                            num_storage_nodes: cfg.num_storage_nodes,
                        });
                    }
                    if latency_factor == 0 {
                        return Err(FaultPlanError::ZeroLatencyFactor);
                    }
                }
                FaultEvent::CacheDegrade {
                    level,
                    node,
                    capacity_chunks,
                    ..
                } => {
                    if capacity_chunks == 0 {
                        return Err(FaultPlanError::ZeroDegradedCapacity);
                    }
                    let (limit, err) = match level {
                        DegradeLevel::Client => (
                            cfg.num_clients,
                            FaultPlanError::ClientIndexOutOfRange {
                                client: node,
                                num_clients: cfg.num_clients,
                            },
                        ),
                        DegradeLevel::Io => (
                            cfg.num_io_nodes,
                            FaultPlanError::IoIndexOutOfRange {
                                io: node,
                                num_io_nodes: cfg.num_io_nodes,
                            },
                        ),
                        DegradeLevel::Storage => (
                            cfg.num_storage_nodes,
                            FaultPlanError::StorageIndexOutOfRange {
                                storage: node,
                                num_storage_nodes: cfg.num_storage_nodes,
                            },
                        ),
                    };
                    if node >= limit {
                        return Err(err);
                    }
                }
            }
        }
        // A crash destroys the node's cache; a cache-degrade entry for
        // the same node at or after the crash could never take effect
        // (the engine used to silently shrink the drained dead cache).
        for ev in &self.events {
            let FaultEvent::CacheDegrade {
                level, node, at_ns, ..
            } = *ev
            else {
                continue;
            };
            let crash = self.events.iter().find_map(|c| match *c {
                FaultEvent::IoNodeCrash { io, at_ns: t }
                    if level == DegradeLevel::Io && io == node && t <= at_ns =>
                {
                    Some(t)
                }
                FaultEvent::StorageNodeCrash { storage, at_ns: t }
                    if level == DegradeLevel::Storage && storage == node && t <= at_ns =>
                {
                    Some(t)
                }
                _ => None,
            });
            if let Some(crash_at_ns) = crash {
                return Err(FaultPlanError::CrashDegradeOverlap {
                    level,
                    node,
                    crash_at_ns,
                    degrade_at_ns: at_ns,
                });
            }
        }
        if let Some(t) = &self.transient {
            if t.rate_ppm >= 1_000_000 {
                return Err(FaultPlanError::TransientRateTooHigh {
                    rate_ppm: t.rate_ppm,
                });
            }
        }
        Ok(())
    }

    /// Decodes a plan from its [`ToJson`] representation.
    pub fn from_json(json: &Json) -> Result<FaultPlan, FaultPlanError> {
        let malformed = |m: &str| FaultPlanError::Malformed {
            message: m.to_string(),
        };
        let events_json = json
            .get("events")
            .and_then(Json::as_array)
            .ok_or_else(|| malformed("missing events array"))?;
        let mut events = Vec::with_capacity(events_json.len());
        for ev in events_json {
            let kind = ev
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| malformed("event missing kind"))?;
            let field = |name: &str| -> Result<u64, FaultPlanError> {
                ev.get(name)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| malformed(&format!("event missing field {name}")))
            };
            events.push(match kind {
                "io_node_crash" => FaultEvent::IoNodeCrash {
                    io: field("io")? as usize,
                    at_ns: field("at_ns")?,
                },
                "storage_node_crash" => FaultEvent::StorageNodeCrash {
                    storage: field("storage")? as usize,
                    at_ns: field("at_ns")?,
                },
                "disk_degrade" => FaultEvent::DiskDegrade {
                    storage: field("storage")? as usize,
                    at_ns: field("at_ns")?,
                    latency_factor: field("latency_factor")? as u32,
                },
                "cache_degrade" => {
                    let level = ev
                        .get("level")
                        .and_then(Json::as_str)
                        .and_then(DegradeLevel::from_label)
                        .ok_or_else(|| malformed("cache_degrade has no valid level"))?;
                    FaultEvent::CacheDegrade {
                        level,
                        node: field("node")? as usize,
                        at_ns: field("at_ns")?,
                        capacity_chunks: field("capacity_chunks")? as usize,
                    }
                }
                other => return Err(malformed(&format!("unknown event kind {other}"))),
            });
        }
        let transient = match json.get("transient") {
            None | Some(Json::Null) => None,
            Some(t) => Some(TransientFaults {
                rate_ppm: t
                    .get("rate_ppm")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| malformed("transient missing rate_ppm"))?
                    as u32,
                seed: t
                    .get("seed")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| malformed("transient missing seed"))?,
            }),
        };
        Ok(FaultPlan { events, transient })
    }

    /// Decodes a plan from JSON text.
    pub fn parse(text: &str) -> Result<FaultPlan, FaultPlanError> {
        let json = cachemap_util::json::parse(text).map_err(|e| FaultPlanError::Malformed {
            message: e.to_string(),
        })?;
        Self::from_json(&json)
    }
}

impl ToJson for FaultEvent {
    fn to_json(&self) -> Json {
        match *self {
            FaultEvent::IoNodeCrash { io, at_ns } => Json::object(vec![
                ("kind", Json::Str("io_node_crash".to_string())),
                ("io", Json::UInt(io as u64)),
                ("at_ns", Json::UInt(at_ns)),
            ]),
            FaultEvent::StorageNodeCrash { storage, at_ns } => Json::object(vec![
                ("kind", Json::Str("storage_node_crash".to_string())),
                ("storage", Json::UInt(storage as u64)),
                ("at_ns", Json::UInt(at_ns)),
            ]),
            FaultEvent::DiskDegrade {
                storage,
                at_ns,
                latency_factor,
            } => Json::object(vec![
                ("kind", Json::Str("disk_degrade".to_string())),
                ("storage", Json::UInt(storage as u64)),
                ("at_ns", Json::UInt(at_ns)),
                ("latency_factor", Json::UInt(latency_factor as u64)),
            ]),
            FaultEvent::CacheDegrade {
                level,
                node,
                at_ns,
                capacity_chunks,
            } => Json::object(vec![
                ("kind", Json::Str("cache_degrade".to_string())),
                ("level", Json::Str(level.label().to_string())),
                ("node", Json::UInt(node as u64)),
                ("at_ns", Json::UInt(at_ns)),
                ("capacity_chunks", Json::UInt(capacity_chunks as u64)),
            ]),
        }
    }
}

impl ToJson for FaultPlan {
    fn to_json(&self) -> Json {
        Json::object(vec![
            (
                "events",
                Json::Array(self.events.iter().map(ToJson::to_json).collect()),
            ),
            (
                "transient",
                match &self.transient {
                    None => Json::Null,
                    Some(t) => Json::object(vec![
                        ("rate_ppm", Json::UInt(t.rate_ppm as u64)),
                        ("seed", Json::UInt(t.seed)),
                    ]),
                },
            ),
        ])
    }
}

/// Degraded-mode counters accumulated during a faulty run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient access errors drawn.
    pub transient_errors: u64,
    /// Retry attempts performed (one per transient error).
    pub retries: u64,
    /// Simulated time spent in retry backoff, ns.
    pub retry_backoff_ns: u64,
    /// Accesses that completed over a failover route (sibling I/O node,
    /// direct-to-storage, or direct-to-disk past a dead L3).
    pub failovers: u64,
    /// Dirty chunks lost when a node crashed (refetched on later use).
    pub lost_dirty_chunks: u64,
    /// I/O-node crashes applied.
    pub crashed_io_nodes: u64,
    /// Storage-node crashes applied.
    pub crashed_storage_nodes: u64,
    /// Clients whose work was redistributed by failure-aware remapping
    /// (filled in by the mapping layer, not the engine).
    pub remap_count: u64,
    /// Time from the first crash to the first access completed over a
    /// failover route, ns (0 when no failover happened).
    pub recovery_ns: u64,
}

impl ToJson for FaultStats {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("transient_errors", Json::UInt(self.transient_errors)),
            ("retries", Json::UInt(self.retries)),
            ("retry_backoff_ns", Json::UInt(self.retry_backoff_ns)),
            ("failovers", Json::UInt(self.failovers)),
            ("lost_dirty_chunks", Json::UInt(self.lost_dirty_chunks)),
            ("crashed_io_nodes", Json::UInt(self.crashed_io_nodes)),
            (
                "crashed_storage_nodes",
                Json::UInt(self.crashed_storage_nodes),
            ),
            ("remap_count", Json::UInt(self.remap_count)),
            ("recovery_ns", Json::UInt(self.recovery_ns)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash_plan() -> FaultPlan {
        FaultPlan::new()
            .with_event(FaultEvent::IoNodeCrash { io: 0, at_ns: 500 })
            .with_event(FaultEvent::DiskDegrade {
                storage: 0,
                at_ns: 1_000,
                latency_factor: 4,
            })
            .with_event(FaultEvent::CacheDegrade {
                level: DegradeLevel::Storage,
                node: 0,
                at_ns: 2_000,
                capacity_chunks: 2,
            })
            .with_transient(TransientFaults {
                rate_ppm: 100,
                seed: 42,
            })
    }

    #[test]
    fn valid_plan_accepted() {
        let cfg = PlatformConfig::tiny();
        assert_eq!(crash_plan().validate(&cfg), Ok(()));
        assert!(FaultPlan::new().is_empty());
        assert!(!crash_plan().is_empty());
    }

    #[test]
    fn out_of_range_indices_rejected() {
        let cfg = PlatformConfig::tiny(); // 4 clients, 2 I/O, 1 storage
        let plan = FaultPlan::new().with_event(FaultEvent::IoNodeCrash { io: 2, at_ns: 0 });
        assert_eq!(
            plan.validate(&cfg),
            Err(FaultPlanError::IoIndexOutOfRange {
                io: 2,
                num_io_nodes: 2
            })
        );
        let plan = FaultPlan::new().with_event(FaultEvent::StorageNodeCrash {
            storage: 1,
            at_ns: 0,
        });
        assert!(matches!(
            plan.validate(&cfg),
            Err(FaultPlanError::StorageIndexOutOfRange { storage: 1, .. })
        ));
        let plan = FaultPlan::new().with_event(FaultEvent::CacheDegrade {
            level: DegradeLevel::Client,
            node: 4,
            at_ns: 0,
            capacity_chunks: 1,
        });
        assert!(matches!(
            plan.validate(&cfg),
            Err(FaultPlanError::ClientIndexOutOfRange { client: 4, .. })
        ));
    }

    #[test]
    fn degenerate_parameters_rejected() {
        let cfg = PlatformConfig::tiny();
        let plan = FaultPlan::new().with_event(FaultEvent::DiskDegrade {
            storage: 0,
            at_ns: 0,
            latency_factor: 0,
        });
        assert_eq!(plan.validate(&cfg), Err(FaultPlanError::ZeroLatencyFactor));
        let plan = FaultPlan::new().with_event(FaultEvent::CacheDegrade {
            level: DegradeLevel::Io,
            node: 0,
            at_ns: 0,
            capacity_chunks: 0,
        });
        assert_eq!(
            plan.validate(&cfg),
            Err(FaultPlanError::ZeroDegradedCapacity)
        );
        let plan = FaultPlan::new().with_transient(TransientFaults {
            rate_ppm: 1_000_000,
            seed: 1,
        });
        assert_eq!(
            plan.validate(&cfg),
            Err(FaultPlanError::TransientRateTooHigh {
                rate_ppm: 1_000_000
            })
        );
    }

    #[test]
    fn degrade_at_or_after_crash_of_same_node_rejected() {
        let cfg = PlatformConfig::tiny(); // 4 clients, 2 I/O, 1 storage
                                          // I/O node 0 crashes at 500, then its (dead) L2 "degrades" at 800.
        let plan = FaultPlan::new()
            .with_event(FaultEvent::IoNodeCrash { io: 0, at_ns: 500 })
            .with_event(FaultEvent::CacheDegrade {
                level: DegradeLevel::Io,
                node: 0,
                at_ns: 800,
                capacity_chunks: 2,
            });
        assert_eq!(
            plan.validate(&cfg),
            Err(FaultPlanError::CrashDegradeOverlap {
                level: DegradeLevel::Io,
                node: 0,
                crash_at_ns: 500,
                degrade_at_ns: 800,
            })
        );
        // Same instant counts as overlap (the crash drains the cache first).
        let plan = FaultPlan::new()
            .with_event(FaultEvent::StorageNodeCrash {
                storage: 0,
                at_ns: 1_000,
            })
            .with_event(FaultEvent::CacheDegrade {
                level: DegradeLevel::Storage,
                node: 0,
                at_ns: 1_000,
                capacity_chunks: 2,
            });
        assert!(matches!(
            plan.validate(&cfg),
            Err(FaultPlanError::CrashDegradeOverlap { .. })
        ));
        // Degrading *before* the crash is a legitimate schedule.
        let plan = FaultPlan::new()
            .with_event(FaultEvent::CacheDegrade {
                level: DegradeLevel::Io,
                node: 0,
                at_ns: 100,
                capacity_chunks: 2,
            })
            .with_event(FaultEvent::IoNodeCrash { io: 0, at_ns: 500 });
        assert_eq!(plan.validate(&cfg), Ok(()));
        // A different node, or the surviving spindles of a crashed
        // storage node, may still degrade later.
        let plan = FaultPlan::new()
            .with_event(FaultEvent::IoNodeCrash { io: 0, at_ns: 500 })
            .with_event(FaultEvent::CacheDegrade {
                level: DegradeLevel::Io,
                node: 1,
                at_ns: 800,
                capacity_chunks: 2,
            })
            .with_event(FaultEvent::StorageNodeCrash {
                storage: 0,
                at_ns: 500,
            })
            .with_event(FaultEvent::DiskDegrade {
                storage: 0,
                at_ns: 900,
                latency_factor: 3,
            });
        assert_eq!(plan.validate(&cfg), Ok(()));
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let plan = crash_plan();
        let text = plan.to_json().to_string_pretty();
        let back = FaultPlan::parse(&text).expect("round trip parses");
        assert_eq!(plan, back);
        // And the empty plan round-trips too.
        let empty = FaultPlan::new();
        let back = FaultPlan::parse(&empty.to_json().to_string_compact()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn malformed_json_reports_errors() {
        assert!(matches!(
            FaultPlan::parse("{}"),
            Err(FaultPlanError::Malformed { .. })
        ));
        assert!(matches!(
            FaultPlan::parse(r#"{"events":[{"kind":"warp_core_breach"}],"transient":null}"#),
            Err(FaultPlanError::Malformed { .. })
        ));
        assert!(FaultPlan::parse("not json").is_err());
    }

    #[test]
    fn errors_display() {
        for e in [
            FaultPlanError::IoIndexOutOfRange {
                io: 9,
                num_io_nodes: 2,
            },
            FaultPlanError::ZeroLatencyFactor,
            FaultPlanError::TransientRateTooHigh {
                rate_ppm: 2_000_000,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
