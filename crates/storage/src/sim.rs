//! Top-level simulation facade and reporting.
//!
//! [`Simulator`] wires a [`PlatformConfig`] to its [`HierarchyTree`],
//! runs a [`MappedProgram`] through the event engine, and condenses the
//! raw statistics into a [`SimReport`] carrying exactly the three result
//! families Section 5.1 reports: per-level storage-cache miss rates, I/O
//! latency, and overall execution time.

use crate::config::PlatformConfig;
use crate::engine::{Engine, MappedProgram, RunStats};
use crate::topology::HierarchyTree;
use cachemap_util::stats::HitMiss;
use serde::{Deserialize, Serialize};

/// Condensed results of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Cumulative L1 (client cache) statistics.
    pub l1: HitMiss,
    /// Cumulative L2 (I/O-node cache) statistics.
    pub l2: HitMiss,
    /// Cumulative L3 (storage-node cache) statistics.
    pub l3: HitMiss,
    /// Application I/O latency: total time all clients spent performing
    /// I/O (includes storage-cache access cycles, per Section 5.1), ns.
    pub io_latency_ns: u64,
    /// Overall execution time: the latest client completion, ns.
    pub exec_time_ns: u64,
    /// Per-client completion times, ns.
    pub per_client_finish_ns: Vec<u64>,
    /// Per-client I/O time, ns.
    pub per_client_io_ns: Vec<u64>,
    /// Disk reads serviced.
    pub disk_reads: u64,
    /// Fraction of disk reads that were sequential.
    pub disk_sequential_fraction: f64,
    /// Disk write-backs serviced.
    pub disk_writes: u64,
}

impl SimReport {
    fn from_run(stats: RunStats) -> Self {
        let io_latency_ns = stats.per_client_io_ns.iter().sum();
        let exec_time_ns = stats.per_client_finish_ns.iter().copied().max().unwrap_or(0);
        let seq_frac = if stats.disk_reads == 0 {
            0.0
        } else {
            stats.disk_sequential_reads as f64 / stats.disk_reads as f64
        };
        SimReport {
            l1: stats.l1,
            l2: stats.l2,
            l3: stats.l3,
            io_latency_ns,
            exec_time_ns,
            per_client_finish_ns: stats.per_client_finish_ns,
            per_client_io_ns: stats.per_client_io_ns,
            disk_reads: stats.disk_reads,
            disk_sequential_fraction: seq_frac,
            disk_writes: stats.disk_writes,
        }
    }

    /// L1 miss rate in `[0, 1]`.
    pub fn l1_miss_rate(&self) -> f64 {
        self.l1.miss_rate()
    }

    /// L2 miss rate in `[0, 1]` (relative to L2 accesses, i.e. L1 misses).
    pub fn l2_miss_rate(&self) -> f64 {
        self.l2.miss_rate()
    }

    /// L3 miss rate in `[0, 1]` (relative to L3 accesses, i.e. L2 misses).
    pub fn l3_miss_rate(&self) -> f64 {
        self.l3.miss_rate()
    }

    /// I/O latency in milliseconds.
    pub fn io_latency_ms(&self) -> f64 {
        self.io_latency_ns as f64 / 1e6
    }

    /// Execution time in milliseconds.
    pub fn exec_time_ms(&self) -> f64 {
        self.exec_time_ns as f64 / 1e6
    }
}

/// One-platform simulator: owns the config and its hierarchy tree.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: PlatformConfig,
    tree: HierarchyTree,
}

impl Simulator {
    /// Builds a simulator for a platform configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(cfg: PlatformConfig) -> Self {
        let tree = HierarchyTree::from_config(&cfg);
        Simulator { cfg, tree }
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.cfg
    }

    /// The storage cache hierarchy tree (shared with the mapper).
    pub fn tree(&self) -> &HierarchyTree {
        &self.tree
    }

    /// Runs a mapped program on a fresh platform state (cold caches).
    pub fn run(&self, program: &MappedProgram) -> SimReport {
        let stats = Engine::new(&self.cfg, &self.tree).run(program);
        SimReport::from_run(stats)
    }

    /// Runs a mapped program and also captures the full access trace
    /// (for reuse-distance analysis and debugging).
    pub fn run_traced(&self, program: &MappedProgram) -> (SimReport, crate::trace::Trace) {
        let (stats, trace) = Engine::new(&self.cfg, &self.tree).run_traced(program);
        (SimReport::from_run(stats), trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ClientOp;

    #[test]
    fn report_rates_and_times() {
        let sim = Simulator::new(PlatformConfig::tiny());
        let mut prog = MappedProgram::new(4);
        prog.per_client[0] = vec![
            ClientOp::Access { chunk: 0, write: false },
            ClientOp::Access { chunk: 0, write: false },
            ClientOp::Compute { ns: 1000 },
        ];
        let rep = sim.run(&prog);
        assert_eq!(rep.l1.accesses(), 2);
        assert!((rep.l1_miss_rate() - 0.5).abs() < 1e-12);
        assert!(rep.io_latency_ns > 0);
        assert!(rep.exec_time_ns >= rep.per_client_finish_ns[0]);
        assert_eq!(rep.disk_reads, 1);
        assert!(rep.exec_time_ms() > 0.0);
    }

    #[test]
    fn cold_caches_between_runs() {
        let sim = Simulator::new(PlatformConfig::tiny());
        let mut prog = MappedProgram::new(4);
        prog.per_client[0] = vec![ClientOp::Access { chunk: 5, write: false }];
        let a = sim.run(&prog);
        let b = sim.run(&prog);
        assert_eq!(a.l1.misses, b.l1.misses, "runs must not share cache state");
        assert_eq!(a.io_latency_ns, b.io_latency_ns);
    }

    #[test]
    fn exec_time_is_max_over_clients() {
        let sim = Simulator::new(PlatformConfig::tiny());
        let mut prog = MappedProgram::new(4);
        prog.per_client[0] = vec![ClientOp::Compute { ns: 10 }];
        prog.per_client[3] = vec![ClientOp::Compute { ns: 99 }];
        let rep = sim.run(&prog);
        assert_eq!(rep.exec_time_ns, 99);
    }
}
