//! Top-level simulation facade and reporting.
//!
//! [`Simulator`] wires a [`PlatformConfig`] to its [`HierarchyTree`],
//! runs a [`MappedProgram`] through the event engine, and condenses the
//! raw statistics into a [`SimReport`] carrying exactly the three result
//! families Section 5.1 reports: per-level storage-cache miss rates, I/O
//! latency, and overall execution time — plus the degraded-mode counters
//! of the fault-injection subsystem when a [`FaultPlan`] is attached.

use crate::config::{ConfigError, PlatformConfig};
use crate::engine::{
    CacheSnapshot, Engine, EngineError, EvictionTally, MappedProgram, PolicyStats, RunStats,
};
use crate::faults::{FaultPlan, FaultPlanError, FaultStats};
use crate::supervisor::EpochOptions;
use crate::topology::HierarchyTree;
use cachemap_obs::Recorder;
use cachemap_util::stats::HitMiss;
use cachemap_util::{Json, ToJson};
use std::fmt;

/// Why a simulation could not be constructed or run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The platform configuration is invalid.
    Config(ConfigError),
    /// The engine rejected the program or deadlocked.
    Engine(EngineError),
    /// The fault plan does not fit the platform.
    Fault(FaultPlanError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "{e}"),
            SimError::Engine(e) => write!(f, "{e}"),
            SimError::Fault(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Engine(e) => Some(e),
            SimError::Fault(e) => Some(e),
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<FaultPlanError> for SimError {
    fn from(e: FaultPlanError) -> Self {
        SimError::Fault(e)
    }
}

impl From<EngineError> for SimError {
    fn from(e: EngineError) -> Self {
        // Collapse nested config/fault errors to the top-level variants
        // so callers match one layer.
        match e {
            EngineError::Config(c) => SimError::Config(c),
            EngineError::Fault(p) => SimError::Fault(p),
            other => SimError::Engine(other),
        }
    }
}

/// Condensed results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Cumulative L1 (client cache) statistics.
    pub l1: HitMiss,
    /// Cumulative L2 (I/O-node cache) statistics.
    pub l2: HitMiss,
    /// Cumulative L3 (storage-node cache) statistics.
    pub l3: HitMiss,
    /// L1 eviction/writeback counters.
    pub l1_evictions: EvictionTally,
    /// L2 eviction/writeback counters.
    pub l2_evictions: EvictionTally,
    /// L3 eviction/writeback counters.
    pub l3_evictions: EvictionTally,
    /// Application I/O latency: total time all clients spent performing
    /// I/O (includes storage-cache access cycles, per Section 5.1), ns.
    pub io_latency_ns: u64,
    /// Overall execution time: the latest client completion, ns.
    pub exec_time_ns: u64,
    /// Per-client completion times, ns.
    pub per_client_finish_ns: Vec<u64>,
    /// Per-client I/O time, ns.
    pub per_client_io_ns: Vec<u64>,
    /// Disk reads serviced.
    pub disk_reads: u64,
    /// Fraction of disk reads that were sequential.
    pub disk_sequential_fraction: f64,
    /// Disk write-backs serviced.
    pub disk_writes: u64,
    /// Chunks prefetched into storage caches by server read-ahead.
    pub prefetched_chunks: u64,
    /// Degraded-mode counters (all zero without a fault plan).
    pub faults: FaultStats,
    /// Request-policy counters (all zero without a request policy).
    pub policy: PolicyStats,
}

impl SimReport {
    fn from_run(stats: RunStats) -> Self {
        let io_latency_ns = stats.per_client_io_ns.iter().sum();
        let exec_time_ns = stats
            .per_client_finish_ns
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        let seq_frac = if stats.disk_reads == 0 {
            0.0
        } else {
            stats.disk_sequential_reads as f64 / stats.disk_reads as f64
        };
        SimReport {
            l1: stats.l1,
            l2: stats.l2,
            l3: stats.l3,
            l1_evictions: stats.l1_evictions,
            l2_evictions: stats.l2_evictions,
            l3_evictions: stats.l3_evictions,
            io_latency_ns,
            exec_time_ns,
            per_client_finish_ns: stats.per_client_finish_ns,
            per_client_io_ns: stats.per_client_io_ns,
            disk_reads: stats.disk_reads,
            disk_sequential_fraction: seq_frac,
            disk_writes: stats.disk_writes,
            prefetched_chunks: stats.prefetched_chunks,
            faults: stats.faults,
            policy: stats.policy,
        }
    }

    /// L1 miss rate in `[0, 1]`.
    pub fn l1_miss_rate(&self) -> f64 {
        self.l1.miss_rate()
    }

    /// L2 miss rate in `[0, 1]` (relative to L2 accesses, i.e. L1 misses).
    pub fn l2_miss_rate(&self) -> f64 {
        self.l2.miss_rate()
    }

    /// L3 miss rate in `[0, 1]` (relative to L3 accesses, i.e. L2 misses).
    pub fn l3_miss_rate(&self) -> f64 {
        self.l3.miss_rate()
    }

    /// I/O latency in milliseconds.
    pub fn io_latency_ms(&self) -> f64 {
        self.io_latency_ns as f64 / 1e6
    }

    /// Execution time in milliseconds.
    pub fn exec_time_ms(&self) -> f64 {
        self.exec_time_ns as f64 / 1e6
    }
}

fn hitmiss_json(hm: &HitMiss) -> Json {
    Json::object(vec![
        ("hits", Json::UInt(hm.hits)),
        ("misses", Json::UInt(hm.misses)),
    ])
}

fn evictions_json(t: &EvictionTally) -> Json {
    Json::object(vec![
        ("evictions", Json::UInt(t.evictions)),
        ("writebacks", Json::UInt(t.writebacks)),
    ])
}

impl ToJson for SimReport {
    /// Deterministic serialization: two byte-identical reports describe
    /// byte-identical runs, which is how the reproducibility property
    /// tests compare faulty runs.
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("l1", hitmiss_json(&self.l1)),
            ("l2", hitmiss_json(&self.l2)),
            ("l3", hitmiss_json(&self.l3)),
            ("io_latency_ns", Json::UInt(self.io_latency_ns)),
            ("exec_time_ns", Json::UInt(self.exec_time_ns)),
            (
                "per_client_finish_ns",
                Json::Array(
                    self.per_client_finish_ns
                        .iter()
                        .map(|&t| Json::UInt(t))
                        .collect(),
                ),
            ),
            (
                "per_client_io_ns",
                Json::Array(
                    self.per_client_io_ns
                        .iter()
                        .map(|&t| Json::UInt(t))
                        .collect(),
                ),
            ),
            ("disk_reads", Json::UInt(self.disk_reads)),
            (
                "disk_sequential_fraction",
                Json::Float(self.disk_sequential_fraction),
            ),
            ("disk_writes", Json::UInt(self.disk_writes)),
            (
                "evictions",
                Json::object(vec![
                    ("l1", evictions_json(&self.l1_evictions)),
                    ("l2", evictions_json(&self.l2_evictions)),
                    ("l3", evictions_json(&self.l3_evictions)),
                ]),
            ),
            ("prefetched_chunks", Json::UInt(self.prefetched_chunks)),
            ("faults", self.faults.to_json()),
            (
                "policy",
                Json::object(vec![
                    (
                        "deadline_violations",
                        Json::UInt(self.policy.deadline_violations),
                    ),
                    ("hedges", Json::UInt(self.policy.hedges)),
                    ("hedge_wins", Json::UInt(self.policy.hedge_wins)),
                    ("sheds", Json::UInt(self.policy.sheds)),
                ]),
            ),
        ])
    }
}

/// One-platform simulator: owns the config, its hierarchy tree, and an
/// optional fault plan applied to every run.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: PlatformConfig,
    tree: HierarchyTree,
    faults: Option<FaultPlan>,
}

impl Simulator {
    /// Builds a simulator for a platform configuration.
    pub fn new(cfg: PlatformConfig) -> Result<Self, SimError> {
        let tree = HierarchyTree::from_config(&cfg)?;
        Ok(Simulator {
            cfg,
            tree,
            faults: None,
        })
    }

    /// Attaches a fault plan (validated against the platform) that every
    /// subsequent [`Simulator::run`] will inject.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Result<Self, SimError> {
        plan.validate(&self.cfg)?;
        self.faults = Some(plan);
        Ok(self)
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.cfg
    }

    /// The storage cache hierarchy tree (shared with the mapper).
    pub fn tree(&self) -> &HierarchyTree {
        &self.tree
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    fn engine(&self) -> Result<Engine<'_>, SimError> {
        let engine = Engine::new(&self.cfg, &self.tree)?;
        match &self.faults {
            Some(plan) => Ok(engine.with_fault_plan(plan)?),
            None => Ok(engine),
        }
    }

    /// Shared run path: builds the engine (with the attached fault
    /// plan), applies the optional recorder and epoch options, and runs
    /// the program. Every public run flavour — and the supervisor's
    /// epoch loop — funnels through here.
    fn run_inner(
        &self,
        program: &MappedProgram,
        rec: Option<&mut Recorder>,
        epoch: Option<&EpochOptions>,
    ) -> Result<(SimReport, Option<CacheSnapshot>), SimError> {
        let mut engine = self.engine()?;
        if let Some(rec) = rec {
            engine = engine.with_recorder(rec);
        }
        let snapshot_wanted = epoch.is_some();
        if let Some(ep) = epoch {
            engine = engine.with_policy(ep.policy);
            if let Some(clocks) = &ep.start_clocks {
                engine = engine.with_start_clocks(clocks.clone());
            }
            if let Some(caches) = &ep.resume_caches {
                engine = engine.with_cache_snapshot(caches.clone());
            }
        }
        if snapshot_wanted {
            let (stats, snapshot) = engine.run_with_snapshot(program)?;
            Ok((SimReport::from_run(stats), Some(snapshot)))
        } else {
            let stats = engine.run(program)?;
            Ok((SimReport::from_run(stats), None))
        }
    }

    /// Runs a mapped program on a fresh platform state (cold caches).
    pub fn run(&self, program: &MappedProgram) -> Result<SimReport, SimError> {
        Ok(self.run_inner(program, None, None)?.0)
    }

    /// Like [`Simulator::run`] but feeds observations into `rec`. With a
    /// disabled recorder this is exactly [`Simulator::run`]: the engine
    /// drops the recorder reference up front, so the run (and the
    /// resulting report) is bit-identical to an unobserved one.
    pub fn run_observed(
        &self,
        program: &MappedProgram,
        rec: &mut Recorder,
    ) -> Result<SimReport, SimError> {
        Ok(self.run_inner(program, Some(rec), None)?.0)
    }

    /// One supervised epoch: runs an epoch slice of a program with a
    /// request policy and per-client starting clocks, feeding the
    /// detector's observations into `rec`. The epoch boundary has
    /// checkpoint-flush semantics: dirty lines count as written back
    /// (lost ones are replayed from storage on first use), while clean
    /// residency survives — pass the previous epoch's returned
    /// [`CacheSnapshot`] via [`EpochOptions::resume_caches`] to carry it
    /// over; without it caches start cold.
    pub fn run_epoch(
        &self,
        program: &MappedProgram,
        rec: &mut Recorder,
        options: &EpochOptions,
    ) -> Result<(SimReport, CacheSnapshot), SimError> {
        let (report, snapshot) = self.run_inner(program, Some(rec), Some(options))?;
        Ok((report, snapshot.unwrap_or_default()))
    }

    /// Runs a mapped program and also captures the full access trace
    /// (for reuse-distance analysis and debugging).
    pub fn run_traced(
        &self,
        program: &MappedProgram,
    ) -> Result<(SimReport, crate::trace::Trace), SimError> {
        let (stats, trace) = self.engine()?.run_traced(program)?;
        Ok((SimReport::from_run(stats), trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ClientOp;
    use crate::faults::FaultEvent;

    fn sim() -> Simulator {
        Simulator::new(PlatformConfig::tiny()).unwrap()
    }

    #[test]
    fn report_rates_and_times() {
        let sim = sim();
        let mut prog = MappedProgram::new(4);
        prog.per_client[0] = vec![
            ClientOp::Access {
                chunk: 0,
                write: false,
            },
            ClientOp::Access {
                chunk: 0,
                write: false,
            },
            ClientOp::Compute { ns: 1000 },
        ];
        let rep = sim.run(&prog).unwrap();
        assert_eq!(rep.l1.accesses(), 2);
        assert!((rep.l1_miss_rate() - 0.5).abs() < 1e-12);
        assert!(rep.io_latency_ns > 0);
        assert!(rep.exec_time_ns >= rep.per_client_finish_ns[0]);
        assert_eq!(rep.disk_reads, 1);
        assert!(rep.exec_time_ms() > 0.0);
        assert_eq!(rep.faults, FaultStats::default());
    }

    #[test]
    fn cold_caches_between_runs() {
        let sim = sim();
        let mut prog = MappedProgram::new(4);
        prog.per_client[0] = vec![ClientOp::Access {
            chunk: 5,
            write: false,
        }];
        let a = sim.run(&prog).unwrap();
        let b = sim.run(&prog).unwrap();
        assert_eq!(a.l1.misses, b.l1.misses, "runs must not share cache state");
        assert_eq!(a.io_latency_ns, b.io_latency_ns);
    }

    #[test]
    fn exec_time_is_max_over_clients() {
        let sim = sim();
        let mut prog = MappedProgram::new(4);
        prog.per_client[0] = vec![ClientOp::Compute { ns: 10 }];
        prog.per_client[3] = vec![ClientOp::Compute { ns: 99 }];
        let rep = sim.run(&prog).unwrap();
        assert_eq!(rep.exec_time_ns, 99);
    }

    #[test]
    fn invalid_config_is_reported_not_panicked() {
        let mut cfg = PlatformConfig::tiny();
        cfg.chunk_bytes = 0;
        let err = Simulator::new(cfg).unwrap_err();
        assert!(matches!(err, SimError::Config(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn fault_plan_threads_through_to_the_report() {
        let sim = sim()
            .with_fault_plan(
                FaultPlan::new().with_event(FaultEvent::IoNodeCrash { io: 0, at_ns: 0 }),
            )
            .unwrap();
        let mut prog = MappedProgram::new(4);
        prog.per_client[0] = vec![ClientOp::Access {
            chunk: 0,
            write: false,
        }];
        let rep = sim.run(&prog).unwrap();
        assert_eq!(rep.faults.crashed_io_nodes, 1);
        assert!(rep.faults.failovers > 0);
    }

    #[test]
    fn invalid_fault_plan_is_rejected() {
        let err = sim()
            .with_fault_plan(FaultPlan::new().with_event(FaultEvent::StorageNodeCrash {
                storage: 9,
                at_ns: 0,
            }))
            .unwrap_err();
        assert!(matches!(err, SimError::Fault(_)));
    }

    #[test]
    fn report_json_is_deterministic() {
        let sim = sim();
        let mut prog = MappedProgram::new(4);
        prog.per_client[0] = (0..10)
            .map(|i| ClientOp::Access {
                chunk: i % 3,
                write: i % 2 == 0,
            })
            .collect();
        let a = sim.run(&prog).unwrap().to_json().to_string_compact();
        let b = sim.run(&prog).unwrap().to_json().to_string_compact();
        assert_eq!(a, b);
        assert!(a.contains("\"exec_time_ns\""));
        assert!(a.contains("\"faults\""));
    }
}
