//! Platform configuration (the paper's Table 1).
//!
//! | Parameter | Paper default |
//! |---|---|
//! | Number of client nodes | 64 |
//! | Number of I/O nodes | 32 |
//! | Number of storage nodes | 16 |
//! | Data striping | all 16 storage nodes |
//! | Stripe size | 64 KB |
//! | Storage capacity/disk | 40 GB |
//! | RPM | 10 000 |
//! | Data chunk size | 64 KB |
//! | Cache capacity/node (client, I/O, storage) | (2 GB, 2 GB, 2 GB) |
//!
//! A full-size run would need hundreds of GB of simulated data, so the
//! simulator keeps the node counts and all latency parameters but scales
//! *capacities* (cache sizes in chunks, dataset sizes) down together,
//! preserving the cache-pressure regime. [`PlatformConfig::paper_default`]
//! encodes Table 1 at the default scale used throughout the harness.

/// A structural problem with a [`PlatformConfig`], found by
/// [`PlatformConfig::validate`].
///
/// Every simulation entry point ([`crate::Simulator::new`],
/// [`crate::HierarchyTree::from_config`]) validates and surfaces this
/// typed error rather than trusting callers or panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// One of the `w`/`x`/`y` node counts is zero.
    ZeroNodeCount,
    /// `num_clients` is not a multiple of `num_io_nodes`, so clients
    /// cannot be divided contiguously over I/O nodes.
    ClientsNotDivisible {
        /// Configured number of clients.
        clients: usize,
        /// Configured number of I/O nodes.
        io_nodes: usize,
    },
    /// `num_io_nodes` is not a multiple of `num_storage_nodes`.
    IoNodesNotDivisible {
        /// Configured number of I/O nodes.
        io_nodes: usize,
        /// Configured number of storage nodes.
        storage_nodes: usize,
    },
    /// `chunk_bytes` is zero.
    ZeroChunkSize,
    /// One of the per-level cache capacities (in chunks) is zero.
    ZeroCacheCapacity,
    /// One of the physical rates (`rpm`, disk bandwidth, network
    /// bandwidth) is zero, which would make service times undefined.
    ZeroRate,
    /// `disks_per_node` is zero.
    ZeroDisksPerNode,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroNodeCount => write!(f, "node counts must be positive"),
            ConfigError::ClientsNotDivisible { clients, io_nodes } => write!(
                f,
                "clients ({clients}) must divide evenly over I/O nodes ({io_nodes})"
            ),
            ConfigError::IoNodesNotDivisible {
                io_nodes,
                storage_nodes,
            } => write!(
                f,
                "I/O nodes ({io_nodes}) must divide evenly over storage nodes ({storage_nodes})"
            ),
            ConfigError::ZeroChunkSize => write!(f, "chunk size must be positive"),
            ConfigError::ZeroCacheCapacity => write!(f, "cache capacities must be positive"),
            ConfigError::ZeroRate => write!(f, "rates must be positive"),
            ConfigError::ZeroDisksPerNode => write!(f, "disks per node must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Replacement policy selector for the storage caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least-recently-used (the paper's policy).
    Lru,
    /// First-in-first-out (ablation).
    Fifo,
    /// Least-frequently-used with aging (ablation).
    Lfu,
    /// Segmented LRU: a probationary segment absorbs single-use lines
    /// (sequential scans) while re-referenced lines are promoted into a
    /// protected segment — scan-resistant.
    Slru,
    /// LFU with dynamic aging: eviction priority is access count plus a
    /// cache age that ratchets to each victim's priority, so stale
    /// once-popular lines eventually age out.
    Lfuda,
    /// Greedy-Dual-Size-Frequency: priority is age + frequency scaled by
    /// the line's footprint, favouring small popular lines. Chunks are
    /// uniform-footprint in this simulator, but the footprint hook is
    /// exercised by tests and future multi-granularity work.
    Gdsf,
}

impl PolicyKind {
    /// Every policy, in the canonical sweep order used by ablations and
    /// the advisor.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Lfu,
        PolicyKind::Slru,
        PolicyKind::Lfuda,
        PolicyKind::Gdsf,
    ];

    /// Stable lower-case label, also the wire name (see `storage::wire`).
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Fifo => "fifo",
            PolicyKind::Lfu => "lfu",
            PolicyKind::Slru => "slru",
            PolicyKind::Lfuda => "lfuda",
            PolicyKind::Gdsf => "gdsf",
        }
    }
}

/// Full platform description consumed by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformConfig {
    /// Number of client (compute) nodes `w`.
    pub num_clients: usize,
    /// Number of I/O nodes `x`.
    pub num_io_nodes: usize,
    /// Number of storage nodes `y`.
    pub num_storage_nodes: usize,

    /// Data chunk size in bytes (= stripe size; 64 KB in Table 1).
    pub chunk_bytes: u64,

    /// L1 (client) cache capacity per node, in chunks.
    pub client_cache_chunks: usize,
    /// L2 (I/O node) cache capacity per node, in chunks.
    pub io_cache_chunks: usize,
    /// L3 (storage node) cache capacity per node, in chunks.
    pub storage_cache_chunks: usize,

    /// Replacement policy per cache level, indexed `[L1, L2, L3]`
    /// (client, I/O node, storage node). The paper runs LRU everywhere;
    /// the policy zoo sweeps levels independently.
    pub policies: [PolicyKind; 3],

    /// Spindles per storage node (PVFS stripes node-local data across
    /// them round-robin; Table 1's "40 GB per disk" with several disks
    /// per node).
    pub disks_per_node: usize,
    /// Disk rotational speed (10 000 RPM in Table 1).
    pub rpm: u32,
    /// Average seek time in nanoseconds.
    pub seek_ns: u64,
    /// Disk sustained transfer bandwidth in bytes per second.
    pub disk_bw_bytes_per_s: u64,

    /// One-way network latency per hop in nanoseconds (client↔I/O and
    /// I/O↔storage hops).
    pub net_hop_ns: u64,
    /// Network bandwidth per link in bytes per second (10 GigE in the
    /// Blue Gene/P configuration the paper describes).
    pub net_bw_bytes_per_s: u64,

    /// Storage-node read-ahead: on a disk read, this many following
    /// sequential chunks of the same spindle are pulled into the L3
    /// cache asynchronously (0 disables; PVFS-style server read-ahead).
    pub readahead_chunks: usize,

    /// Local (same-node) cache access time in nanoseconds.
    pub cache_access_ns: u64,
    /// Inter-client synchronization overhead in nanoseconds (used by the
    /// dependence extension of Section 5.4).
    pub sync_ns: u64,
}

impl PlatformConfig {
    /// The paper's Table 1 configuration at the harness's default scale.
    ///
    /// Node counts, chunk size, RPM, and all latency parameters match the
    /// paper. Cache capacities are expressed in chunks and scaled so that
    /// the per-node-cache : dataset ratio matches the paper's
    /// 2 GB : ~300 GB ≈ 0.6% when used with the default workload scale
    /// (datasets of roughly 2-5 Ki chunks): 32 chunks per node ≈ 0.6-1.5%
    /// of a workload's data, and the cumulative L1 (64 × 32 = 2048
    /// chunks) covers roughly a third to a half of a dataset, as in the
    /// paper (128 GB of cumulative L1 vs. 190-423 GB datasets).
    pub fn paper_default() -> Self {
        PlatformConfig {
            num_clients: 64,
            num_io_nodes: 32,
            num_storage_nodes: 16,
            chunk_bytes: 64 * 1024,
            client_cache_chunks: 32,
            io_cache_chunks: 128,
            storage_cache_chunks: 384,
            policies: [PolicyKind::Lru; 3],
            disks_per_node: 4,
            rpm: 10_000,
            seek_ns: 4_000_000,            // 4 ms average seek
            disk_bw_bytes_per_s: 80 << 20, // 80 MB/s sustained (2010-era disk)
            net_hop_ns: 30_000,            // 30 µs per hop
            net_bw_bytes_per_s: 1 << 30,   // ~10 GigE effective
            readahead_chunks: 0,           // server read-ahead off by default
            cache_access_ns: 2_000,        // 2 µs DRAM-cache lookup
            sync_ns: 50_000,               // 50 µs barrier/signal cost
        }
    }

    /// A small configuration for unit tests: 4 clients, 2 I/O nodes,
    /// 1 storage node (the Figure 7 example topology), tiny caches.
    pub fn tiny() -> Self {
        PlatformConfig {
            num_clients: 4,
            num_io_nodes: 2,
            num_storage_nodes: 1,
            chunk_bytes: 1024,
            client_cache_chunks: 4,
            io_cache_chunks: 8,
            storage_cache_chunks: 16,
            ..Self::paper_default()
        }
    }

    /// Returns a copy with a different `(w, x, y)` topology (the Figure 12
    /// sensitivity axis).
    pub fn with_topology(mut self, w: usize, x: usize, y: usize) -> Self {
        self.num_clients = w;
        self.num_io_nodes = x;
        self.num_storage_nodes = y;
        self
    }

    /// Returns a copy with different per-node cache capacities in chunks
    /// (the Figure 13 sensitivity axis).
    pub fn with_cache_chunks(mut self, l1: usize, l2: usize, l3: usize) -> Self {
        self.client_cache_chunks = l1;
        self.io_cache_chunks = l2;
        self.storage_cache_chunks = l3;
        self
    }

    /// Returns a copy with server read-ahead enabled (prefetch ablation).
    pub fn with_readahead(mut self, chunks: usize) -> Self {
        self.readahead_chunks = chunks;
        self
    }

    /// Returns a copy running one replacement policy at every level (the
    /// uniform-policy ablation axis).
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policies = [policy; 3];
        self
    }

    /// Returns a copy with independent per-level replacement policies
    /// `(L1, L2, L3)` — the policy-zoo / advisor axis.
    pub fn with_level_policies(mut self, l1: PolicyKind, l2: PolicyKind, l3: PolicyKind) -> Self {
        self.policies = [l1, l2, l3];
        self
    }

    /// The single policy shared by all levels, or `None` when levels
    /// differ. The wire codec uses this to keep the uniform encoding
    /// byte-identical to the pre-zoo format.
    pub fn uniform_policy(&self) -> Option<PolicyKind> {
        if self.policies[1] == self.policies[0] && self.policies[2] == self.policies[0] {
            Some(self.policies[0])
        } else {
            None
        }
    }

    /// Returns a copy with a different chunk size in bytes (the Figure 14
    /// sensitivity axis). Cache capacities are in chunks, so halving the
    /// chunk size with fixed chunk counts also halves byte capacity; the
    /// harness compensates by scaling chunk counts to keep byte capacity
    /// constant, as the paper does.
    pub fn with_chunk_bytes(mut self, bytes: u64) -> Self {
        self.chunk_bytes = bytes;
        self
    }

    /// Validates internal consistency (divisibility of the tree fan-outs,
    /// non-zero capacities).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_clients == 0 || self.num_io_nodes == 0 || self.num_storage_nodes == 0 {
            return Err(ConfigError::ZeroNodeCount);
        }
        if !self.num_clients.is_multiple_of(self.num_io_nodes) {
            return Err(ConfigError::ClientsNotDivisible {
                clients: self.num_clients,
                io_nodes: self.num_io_nodes,
            });
        }
        if !self.num_io_nodes.is_multiple_of(self.num_storage_nodes) {
            return Err(ConfigError::IoNodesNotDivisible {
                io_nodes: self.num_io_nodes,
                storage_nodes: self.num_storage_nodes,
            });
        }
        if self.chunk_bytes == 0 {
            return Err(ConfigError::ZeroChunkSize);
        }
        if self.client_cache_chunks == 0
            || self.io_cache_chunks == 0
            || self.storage_cache_chunks == 0
        {
            return Err(ConfigError::ZeroCacheCapacity);
        }
        if self.rpm == 0 || self.disk_bw_bytes_per_s == 0 || self.net_bw_bytes_per_s == 0 {
            return Err(ConfigError::ZeroRate);
        }
        if self.disks_per_node == 0 {
            return Err(ConfigError::ZeroDisksPerNode);
        }
        Ok(())
    }

    /// Clients served by each I/O node (`w/x`).
    pub fn clients_per_io(&self) -> usize {
        self.num_clients / self.num_io_nodes
    }

    /// I/O nodes served by each storage node (`x/y`).
    pub fn ios_per_storage(&self) -> usize {
        self.num_io_nodes / self.num_storage_nodes
    }

    /// Clients ultimately served by each storage node (`w/y`).
    pub fn clients_per_storage(&self) -> usize {
        self.num_clients / self.num_storage_nodes
    }

    /// Half-rotation latency in nanoseconds (average rotational delay).
    pub fn rotational_ns(&self) -> u64 {
        // Half a revolution: 60 s / rpm / 2.
        (30_000_000_000u64) / self.rpm as u64
    }

    /// Time to transfer one chunk from disk, in nanoseconds.
    pub fn disk_transfer_ns(&self) -> u64 {
        self.chunk_bytes * 1_000_000_000 / self.disk_bw_bytes_per_s
    }

    /// Time to push one chunk over one network link, in nanoseconds
    /// (latency + serialization).
    pub fn net_chunk_ns(&self) -> u64 {
        self.net_hop_ns + self.chunk_bytes * 1_000_000_000 / self.net_bw_bytes_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table1_shape() {
        let c = PlatformConfig::paper_default();
        assert_eq!(
            (c.num_clients, c.num_io_nodes, c.num_storage_nodes),
            (64, 32, 16)
        );
        assert_eq!(c.chunk_bytes, 64 * 1024);
        assert_eq!(c.rpm, 10_000);
        assert!(c.validate().is_ok());
        assert_eq!(c.clients_per_io(), 2);
        assert_eq!(c.ios_per_storage(), 2);
        assert_eq!(c.clients_per_storage(), 4);
    }

    #[test]
    fn rotational_latency_10krpm_is_3ms() {
        let c = PlatformConfig::paper_default();
        assert_eq!(c.rotational_ns(), 3_000_000);
    }

    #[test]
    fn disk_transfer_time_64kb_at_80mbs() {
        let c = PlatformConfig::paper_default();
        // 65536 B / (80 MiB/s) ≈ 781 µs.
        let t = c.disk_transfer_ns();
        assert!((700_000..900_000).contains(&t), "{t}");
    }

    #[test]
    fn invalid_fanout_rejected() {
        let c = PlatformConfig::paper_default().with_topology(64, 24, 16);
        assert_eq!(
            c.validate(),
            Err(ConfigError::ClientsNotDivisible {
                clients: 64,
                io_nodes: 24
            })
        );
        let c = PlatformConfig::paper_default().with_topology(64, 32, 12);
        assert_eq!(
            c.validate(),
            Err(ConfigError::IoNodesNotDivisible {
                io_nodes: 32,
                storage_nodes: 12
            })
        );
    }

    #[test]
    fn zero_parameters_rejected_with_typed_errors() {
        let mut c = PlatformConfig::tiny();
        c.num_clients = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroNodeCount));
        let mut c = PlatformConfig::tiny();
        c.chunk_bytes = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroChunkSize));
        let mut c = PlatformConfig::tiny();
        c.io_cache_chunks = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroCacheCapacity));
        let mut c = PlatformConfig::tiny();
        c.rpm = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroRate));
        let mut c = PlatformConfig::tiny();
        c.disks_per_node = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroDisksPerNode));
        // Errors render as readable messages.
        assert!(ConfigError::ZeroRate.to_string().contains("positive"));
    }

    #[test]
    fn sensitivity_builders() {
        let c = PlatformConfig::paper_default()
            .with_topology(128, 32, 16)
            .with_cache_chunks(48, 96, 192)
            .with_chunk_bytes(16 * 1024);
        assert!(c.validate().is_ok());
        assert_eq!(c.num_clients, 128);
        assert_eq!(c.client_cache_chunks, 48);
        assert_eq!(c.chunk_bytes, 16 * 1024);
        assert_eq!(c.clients_per_io(), 4);
    }

    #[test]
    fn policy_builders_and_uniformity() {
        let c = PlatformConfig::paper_default();
        assert_eq!(c.uniform_policy(), Some(PolicyKind::Lru));
        let c = c.with_policy(PolicyKind::Gdsf);
        assert_eq!(c.policies, [PolicyKind::Gdsf; 3]);
        assert_eq!(c.uniform_policy(), Some(PolicyKind::Gdsf));
        let c = c.with_level_policies(PolicyKind::Slru, PolicyKind::Lru, PolicyKind::Lfuda);
        assert_eq!(c.uniform_policy(), None);
        assert!(c.validate().is_ok());
        // Labels are unique and stable — they key wire names and metric
        // labels.
        let labels: std::collections::HashSet<&str> =
            PolicyKind::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), PolicyKind::ALL.len());
        assert_eq!(PolicyKind::Slru.label(), "slru");
    }

    #[test]
    fn tiny_matches_figure7() {
        let c = PlatformConfig::tiny();
        assert!(c.validate().is_ok());
        assert_eq!(
            (c.num_clients, c.num_io_nodes, c.num_storage_nodes),
            (4, 2, 1)
        );
    }
}
