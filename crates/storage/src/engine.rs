//! Deterministic discrete-event engine.
//!
//! Each client node executes an ordered stream of [`ClientOp`]s (compute,
//! chunk accesses, and the synchronization signals/waits used by the
//! dependence extension of Section 5.4). The engine interleaves clients
//! in **global simulated-time order** — a binary heap keyed by
//! `(client clock, client id)` — so shared caches observe a single,
//! reproducible access order that approximates parallel execution, and
//! shared resources (I/O-node caches, storage-node caches, disks) apply
//! back-pressure through per-resource "next free" clocks.
//!
//! The access path mirrors the platform of Section 5.1: an L1 miss is
//! forwarded by the client to its I/O node (L2); an L2 miss is forwarded
//! to the storage node on the client's tree path (L3); an L3 miss goes to
//! the disk of the *striping owner* of the chunk, with a peer-forwarding
//! hop when the owner differs from the tree-route storage node. Caches
//! are write-allocate / write-back, and dirty evictions cascade one level
//! down with their costs charged to the access that triggered them.

use crate::cache::{build_cache, Chunk, ChunkCache, InsertOutcome};
use crate::config::PlatformConfig;
use crate::disk::{disk_index, owner_of_chunk, striping_stride, total_disks, Disk};
use crate::net::{chunk_transfer_ns, control_ns, Hop};
use crate::topology::HierarchyTree;
use crate::trace::{ServedBy, Trace, TraceEvent};
use cachemap_util::stats::HitMiss;
use cachemap_util::FxHashMap;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One operation in a client's instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClientOp {
    /// Pure computation for the given simulated nanoseconds.
    Compute {
        /// Duration in ns.
        ns: u64,
    },
    /// Access one data chunk (read or write) through the cache hierarchy.
    Access {
        /// Global chunk id.
        chunk: Chunk,
        /// True for writes (write-allocate, mark dirty in L1).
        write: bool,
    },
    /// Signal a synchronization token (dependence source side).
    Signal {
        /// Token identity; must be signalled at most once.
        token: u32,
    },
    /// Wait until a token is signalled (dependence sink side).
    Wait {
        /// Token identity.
        token: u32,
    },
}

/// A fully mapped program: one operation stream per client node.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappedProgram {
    /// `per_client[c]` is the ordered op stream of client `c`.
    pub per_client: Vec<Vec<ClientOp>>,
}

impl MappedProgram {
    /// Creates an empty program for `num_clients` clients.
    pub fn new(num_clients: usize) -> Self {
        MappedProgram {
            per_client: vec![Vec::new(); num_clients],
        }
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.per_client.len()
    }

    /// Total `Access` operations across all clients.
    pub fn total_accesses(&self) -> u64 {
        self.per_client
            .iter()
            .flatten()
            .filter(|op| matches!(op, ClientOp::Access { .. }))
            .count() as u64
    }

    /// Per-client count of `Access` operations (the "iteration balance"
    /// the load-balancing step cares about, at access granularity).
    pub fn accesses_per_client(&self) -> Vec<u64> {
        self.per_client
            .iter()
            .map(|ops| {
                ops.iter()
                    .filter(|op| matches!(op, ClientOp::Access { .. }))
                    .count() as u64
            })
            .collect()
    }
}

/// Aggregated outcome of one simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Cumulative client-cache statistics (all L1 caches merged).
    pub l1: HitMiss,
    /// Cumulative I/O-node cache statistics.
    pub l2: HitMiss,
    /// Cumulative storage-node cache statistics.
    pub l3: HitMiss,
    /// Per-client time spent inside `Access` operations, ns.
    pub per_client_io_ns: Vec<u64>,
    /// Per-client time spent inside `Compute` operations, ns.
    pub per_client_compute_ns: Vec<u64>,
    /// Per-client completion time, ns.
    pub per_client_finish_ns: Vec<u64>,
    /// Disk reads serviced.
    pub disk_reads: u64,
    /// Disk reads that were sequential on their disk.
    pub disk_sequential_reads: u64,
    /// Disk write-backs serviced.
    pub disk_writes: u64,
    /// Chunks prefetched into storage-node caches by server read-ahead.
    pub prefetched_chunks: u64,
}

struct Resources {
    l1: Vec<Box<dyn ChunkCache + Send>>,
    l2: Vec<Box<dyn ChunkCache + Send>>,
    l3: Vec<Box<dyn ChunkCache + Send>>,
    l2_free: Vec<u64>,
    l3_free: Vec<u64>,
    disks: Vec<Disk>,
    disk_free: Vec<u64>,
}

/// The discrete-event engine. Construct with [`Engine::new`], then call
/// [`Engine::run`] once.
pub struct Engine<'a> {
    cfg: &'a PlatformConfig,
    tree: &'a HierarchyTree,
    res: Resources,
    trace: Option<Vec<TraceEvent>>,
    /// Highest chunk id referenced by the program (read-ahead never
    /// prefetches beyond it).
    max_chunk: Chunk,
    prefetched: u64,
}

impl<'a> Engine<'a> {
    /// Builds the engine's cache/disk state for a platform.
    ///
    /// # Panics
    /// Panics if the config is invalid or the tree does not match it.
    pub fn new(cfg: &'a PlatformConfig, tree: &'a HierarchyTree) -> Self {
        cfg.validate().expect("invalid platform config");
        assert_eq!(
            tree.num_clients(),
            cfg.num_clients,
            "hierarchy tree does not match config"
        );
        let res = Resources {
            l1: (0..cfg.num_clients)
                .map(|_| build_cache(cfg.policy, cfg.client_cache_chunks))
                .collect(),
            l2: (0..cfg.num_io_nodes)
                .map(|_| build_cache(cfg.policy, cfg.io_cache_chunks))
                .collect(),
            l3: (0..cfg.num_storage_nodes)
                .map(|_| build_cache(cfg.policy, cfg.storage_cache_chunks))
                .collect(),
            l2_free: vec![0; cfg.num_io_nodes],
            l3_free: vec![0; cfg.num_storage_nodes],
            disks: (0..total_disks(cfg)).map(|_| Disk::new()).collect(),
            disk_free: vec![0; total_disks(cfg)],
        };
        Engine {
            cfg,
            tree,
            res,
            trace: None,
            max_chunk: 0,
            prefetched: 0,
        }
    }

    /// Like [`Engine::run`] but also records every access into a
    /// [`Trace`].
    pub fn run_traced(mut self, program: &MappedProgram) -> (RunStats, Trace) {
        self.trace = Some(Vec::new());
        let (stats, trace) = self.run_impl(program);
        (stats, trace.expect("trace capture was enabled"))
    }

    /// Runs a mapped program to completion and returns the statistics.
    ///
    /// # Panics
    /// Panics if the program's client count mismatches the platform, if a
    /// token is signalled twice, or if the run deadlocks on a `Wait`
    /// whose `Signal` never arrives.
    pub fn run(self, program: &MappedProgram) -> RunStats {
        self.run_impl(program).0
    }

    fn run_impl(mut self, program: &MappedProgram) -> (RunStats, Option<Trace>) {
        let n = self.cfg.num_clients;
        assert_eq!(
            program.num_clients(),
            n,
            "program has {} clients, platform has {n}",
            program.num_clients()
        );
        self.max_chunk = program
            .per_client
            .iter()
            .flatten()
            .filter_map(|op| match op {
                ClientOp::Access { chunk, .. } => Some(*chunk),
                _ => None,
            })
            .max()
            .unwrap_or(0);

        let mut clock = vec![0u64; n];
        let mut pc = vec![0usize; n];
        let mut io_ns = vec![0u64; n];
        let mut compute_ns = vec![0u64; n];
        let mut signals: FxHashMap<u32, u64> = FxHashMap::default();
        let mut parked: FxHashMap<u32, Vec<usize>> = FxHashMap::default();

        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..n)
            .filter(|&c| !program.per_client[c].is_empty())
            .map(|c| Reverse((0u64, c)))
            .collect();

        while let Some(Reverse((t, c))) = heap.pop() {
            debug_assert_eq!(t, clock[c]);
            let op = program.per_client[c][pc[c]];
            pc[c] += 1;
            let mut park = false;
            match op {
                ClientOp::Compute { ns } => {
                    clock[c] += ns;
                    compute_ns[c] += ns;
                }
                ClientOp::Access { chunk, write } => {
                    let start = clock[c];
                    let (end, served_by) = self.access(c, chunk, write, start);
                    io_ns[c] += end - start;
                    clock[c] = end;
                    if let Some(tr) = &mut self.trace {
                        tr.push(TraceEvent {
                            time_ns: start,
                            client: c,
                            chunk,
                            write,
                            served_by,
                        });
                    }
                }
                ClientOp::Signal { token } => {
                    clock[c] += self.cfg.sync_ns;
                    let prev = signals.insert(token, clock[c]);
                    assert!(prev.is_none(), "token {token} signalled twice");
                    if let Some(waiters) = parked.remove(&token) {
                        for w in waiters {
                            clock[w] = clock[w].max(clock[c]) + self.cfg.sync_ns;
                            heap.push(Reverse((clock[w], w)));
                        }
                    }
                }
                ClientOp::Wait { token } => {
                    if let Some(&ts) = signals.get(&token) {
                        clock[c] = clock[c].max(ts) + self.cfg.sync_ns;
                    } else {
                        // Park: will be re-queued by the matching Signal.
                        parked.entry(token).or_default().push(c);
                        park = true;
                    }
                }
            }
            if !park && pc[c] < program.per_client[c].len() {
                heap.push(Reverse((clock[c], c)));
            }
        }

        assert!(
            parked.is_empty(),
            "deadlock: clients {:?} waiting on tokens that were never signalled",
            parked.values().flatten().collect::<Vec<_>>()
        );

        let mut stats = RunStats {
            per_client_io_ns: io_ns,
            per_client_compute_ns: compute_ns,
            per_client_finish_ns: clock,
            ..RunStats::default()
        };
        for c in &self.res.l1 {
            stats.l1.merge(&c.stats());
        }
        for c in &self.res.l2 {
            stats.l2.merge(&c.stats());
        }
        for c in &self.res.l3 {
            stats.l3.merge(&c.stats());
        }
        for d in &self.res.disks {
            stats.disk_reads += d.reads;
            stats.disk_writes += d.writes;
            stats.disk_sequential_reads += d.sequential_reads;
        }
        stats.prefetched_chunks = self.prefetched;
        let trace = self.trace.take().map(|mut events| {
            events.sort_by_key(|e| (e.time_ns, e.client));
            Trace { events }
        });
        (stats, trace)
    }

    /// Executes one chunk access for client `c` starting at time `t`;
    /// returns the completion time and the level that served the data.
    fn access(&mut self, c: usize, chunk: Chunk, write: bool, t: u64) -> (u64, ServedBy) {
        let cfg = self.cfg;
        let mut t = t + cfg.cache_access_ns; // L1 lookup
        if self.res.l1[c].access(chunk, write) {
            return (t, ServedBy::L1);
        }
        let mut served_by = ServedBy::L2;

        // L1 miss → request to the I/O node on this client's tree path.
        let io = self.tree.io_of_client(c);
        t += control_ns(Hop::ClientIo, cfg);
        t = self.serve_l2(io, t);
        let l2_hit = self.res.l2[io].access(chunk, false);

        if !l2_hit {
            // L2 miss → storage node on the tree path.
            let s = self.tree.storage_of_client(c);
            t += control_ns(Hop::IoStorage, cfg);
            t = self.serve_l3(s, t);
            let l3_hit = self.res.l3[s].access(chunk, false);
            served_by = ServedBy::L3;

            if !l3_hit {
                served_by = ServedBy::Disk;
                // L3 miss → disk of the striping owner.
                let owner = owner_of_chunk(chunk, cfg);
                if owner != s {
                    t += control_ns(Hop::StoragePeer, cfg);
                }
                let di = disk_index(chunk, cfg);
                let start = t.max(self.res.disk_free[di]);
                let service = self.res.disks[di].read(chunk, cfg);
                t = start + service;
                self.res.disk_free[di] = t;
                if owner != s {
                    t += chunk_transfer_ns(Hop::StoragePeer, cfg);
                }
                // Fill L3 (write-back any dirty victim to its disk).
                t = self.fill_l3(s, chunk, false, t);
                // Server read-ahead: pull the next sequential chunks of
                // this spindle into L3 asynchronously — the disk stays
                // busy (streaming at transfer rate) but the client does
                // not wait.
                if cfg.readahead_chunks > 0 {
                    self.readahead(s, chunk, t);
                }
            }
            t += chunk_transfer_ns(Hop::IoStorage, cfg);
            // Fill L2 (dirty victim cascades into L3).
            t = self.fill_l2(io, chunk, false, t);
        }
        t += chunk_transfer_ns(Hop::ClientIo, cfg);

        // Fill L1; dirty victim is written back to L2.
        match self.res.l1[c].insert(chunk, write) {
            InsertOutcome::Inserted | InsertOutcome::EvictedClean(_) => {}
            InsertOutcome::EvictedDirty(victim) => {
                t += chunk_transfer_ns(Hop::ClientIo, cfg);
                t = self.serve_l2(io, t);
                t = self.fill_l2(io, victim, true, t);
            }
        }
        (t, served_by)
    }

    /// PVFS-style server read-ahead after a demand read of `chunk`.
    fn readahead(&mut self, s: usize, chunk: Chunk, t: u64) {
        let cfg = self.cfg;
        let stride = striping_stride(cfg);
        let di = disk_index(chunk, cfg);
        for k in 1..=cfg.readahead_chunks {
            let next = chunk + k * stride;
            if next > self.max_chunk || self.res.l3[s].contains(next) {
                break;
            }
            // Sequential transfer keeps the spindle busy; the requesting
            // client does not wait for it.
            let start = t.max(self.res.disk_free[di]);
            let service = self.res.disks[di].read(next, cfg);
            self.res.disk_free[di] = start + service;
            self.fill_l3(s, next, false, start + service);
            self.prefetched += 1;
        }
    }

    /// Waits for and occupies the L2 cache controller of I/O node `io`.
    fn serve_l2(&mut self, io: usize, t: u64) -> u64 {
        let start = t.max(self.res.l2_free[io]);
        let end = start + self.cfg.cache_access_ns;
        self.res.l2_free[io] = end;
        end
    }

    /// Waits for and occupies the L3 cache controller of storage node `s`.
    fn serve_l3(&mut self, s: usize, t: u64) -> u64 {
        let start = t.max(self.res.l3_free[s]);
        let end = start + self.cfg.cache_access_ns;
        self.res.l3_free[s] = end;
        end
    }

    /// Inserts into L2, cascading a dirty victim into L3.
    fn fill_l2(&mut self, io: usize, chunk: Chunk, dirty: bool, mut t: u64) -> u64 {
        match self.res.l2[io].insert(chunk, dirty) {
            InsertOutcome::Inserted | InsertOutcome::EvictedClean(_) => t,
            InsertOutcome::EvictedDirty(victim) => {
                let s = {
                    // The L2's parent storage node in the tree.
                    let io_id = self.tree.io_node(io);
                    let parent = self.tree.node(io_id).parent.expect("io has parent");
                    self.tree.node(parent).layer_index
                };
                t += chunk_transfer_ns(Hop::IoStorage, self.cfg);
                t = self.serve_l3(s, t);
                self.fill_l3(s, victim, true, t)
            }
        }
    }

    /// Inserts into L3, writing a dirty victim back to its disk.
    fn fill_l3(&mut self, s: usize, chunk: Chunk, dirty: bool, mut t: u64) -> u64 {
        match self.res.l3[s].insert(chunk, dirty) {
            InsertOutcome::Inserted | InsertOutcome::EvictedClean(_) => t,
            InsertOutcome::EvictedDirty(victim) => {
                let di = disk_index(victim, self.cfg);
                let start = t.max(self.res.disk_free[di]);
                let service = self.res.disks[di].write(victim, self.cfg);
                t = start + service;
                self.res.disk_free[di] = t;
                t
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (PlatformConfig, HierarchyTree) {
        let cfg = PlatformConfig::tiny();
        let tree = HierarchyTree::from_config(&cfg);
        (cfg, tree)
    }

    fn run(cfg: &PlatformConfig, tree: &HierarchyTree, prog: &MappedProgram) -> RunStats {
        Engine::new(cfg, tree).run(prog)
    }

    #[test]
    fn empty_program_finishes_at_zero() {
        let (cfg, tree) = tiny();
        let prog = MappedProgram::new(cfg.num_clients);
        let stats = run(&cfg, &tree, &prog);
        assert!(stats.per_client_finish_ns.iter().all(|&t| t == 0));
        assert_eq!(stats.l1.accesses(), 0);
    }

    #[test]
    fn compute_only_advances_clock() {
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![ClientOp::Compute { ns: 500 }, ClientOp::Compute { ns: 250 }];
        let stats = run(&cfg, &tree, &prog);
        assert_eq!(stats.per_client_finish_ns[0], 750);
        assert_eq!(stats.per_client_compute_ns[0], 750);
        assert_eq!(stats.per_client_io_ns[0], 0);
    }

    #[test]
    fn first_access_misses_all_levels_then_hits_l1() {
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![
            ClientOp::Access { chunk: 3, write: false },
            ClientOp::Access { chunk: 3, write: false },
        ];
        let stats = run(&cfg, &tree, &prog);
        assert_eq!(stats.l1.hits, 1);
        assert_eq!(stats.l1.misses, 1);
        assert_eq!(stats.l2.misses, 1);
        assert_eq!(stats.l2.hits, 0);
        assert_eq!(stats.l3.misses, 1);
        assert_eq!(stats.disk_reads, 1);
        // Second access is far cheaper than the first.
        assert!(stats.per_client_io_ns[0] > cfg.seek_ns);
    }

    #[test]
    fn sharing_through_l2_gives_second_client_a_hit() {
        let (cfg, tree) = tiny();
        // Clients 0 and 1 share I/O node 0 in the tiny topology.
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![ClientOp::Access { chunk: 9, write: false }];
        prog.per_client[1] = vec![
            ClientOp::Compute { ns: 60_000_000 }, // let client 0 finish first
            ClientOp::Access { chunk: 9, write: false },
        ];
        let stats = run(&cfg, &tree, &prog);
        assert_eq!(stats.l1.misses, 2); // each client misses its private L1
        assert_eq!(stats.l2.hits, 1); // client 1 hits in the shared L2
        assert_eq!(stats.l2.misses, 1);
        assert_eq!(stats.disk_reads, 1);
    }

    #[test]
    fn no_sharing_when_clients_use_different_io_nodes() {
        let (cfg, tree) = tiny();
        // Clients 0 and 2 are under different I/O nodes but the same
        // (only) storage node: the reuse shows up at L3, not L2.
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![ClientOp::Access { chunk: 9, write: false }];
        prog.per_client[2] = vec![
            ClientOp::Compute { ns: 60_000_000 },
            ClientOp::Access { chunk: 9, write: false },
        ];
        let stats = run(&cfg, &tree, &prog);
        assert_eq!(stats.l2.hits, 0);
        assert_eq!(stats.l3.hits, 1);
        assert_eq!(stats.disk_reads, 1);
    }

    #[test]
    fn capacity_eviction_causes_refetch() {
        let (cfg, tree) = tiny(); // L1 holds 4 chunks
        let mut ops = Vec::new();
        for chunk in 0..5 {
            ops.push(ClientOp::Access { chunk, write: false });
        }
        ops.push(ClientOp::Access { chunk: 0, write: false }); // evicted by now
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = ops;
        let stats = run(&cfg, &tree, &prog);
        assert_eq!(stats.l1.hits, 0);
        assert_eq!(stats.l1.misses, 6);
        // Chunk 0 is still in the bigger L2 → refetch hits L2.
        assert_eq!(stats.l2.hits, 1);
    }

    #[test]
    fn dirty_writeback_reaches_disk() {
        let (mut cfg, _) = tiny();
        // Shrink every level to 1 chunk so a dirty chunk is forced all
        // the way to disk.
        cfg.client_cache_chunks = 1;
        cfg.io_cache_chunks = 1;
        cfg.storage_cache_chunks = 1;
        let tree = HierarchyTree::from_config(&cfg);
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![
            ClientOp::Access { chunk: 0, write: true },
            ClientOp::Access { chunk: 1, write: true },
            ClientOp::Access { chunk: 2, write: true },
            ClientOp::Access { chunk: 3, write: true },
        ];
        let stats = run(&cfg, &tree, &prog);
        assert!(stats.disk_writes >= 1, "dirty evictions must reach disk");
    }

    #[test]
    fn signal_wait_orders_clients() {
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![
            ClientOp::Compute { ns: 1_000_000 },
            ClientOp::Signal { token: 7 },
        ];
        prog.per_client[1] = vec![ClientOp::Wait { token: 7 }, ClientOp::Compute { ns: 10 }];
        let stats = run(&cfg, &tree, &prog);
        // Client 1 cannot finish before client 0's signal at 1ms+sync.
        assert!(stats.per_client_finish_ns[1] >= 1_000_000 + cfg.sync_ns);
    }

    #[test]
    fn wait_after_signal_does_not_park() {
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![ClientOp::Signal { token: 1 }];
        prog.per_client[1] = vec![
            ClientOp::Compute { ns: 5_000_000 },
            ClientOp::Wait { token: 1 },
        ];
        let stats = run(&cfg, &tree, &prog);
        assert!(stats.per_client_finish_ns[1] >= 5_000_000);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn missing_signal_is_a_deadlock() {
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![ClientOp::Wait { token: 99 }];
        run(&cfg, &tree, &prog);
    }

    #[test]
    fn deterministic_across_runs() {
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        for c in 0..cfg.num_clients {
            let ops: Vec<ClientOp> = (0..50)
                .map(|i| ClientOp::Access {
                    chunk: (c * 13 + i * 7) % 40,
                    write: i % 4 == 0,
                })
                .collect();
            prog.per_client[c] = ops;
        }
        let s1 = run(&cfg, &tree, &prog);
        let s2 = run(&cfg, &tree, &prog);
        assert_eq!(s1.per_client_finish_ns, s2.per_client_finish_ns);
        assert_eq!(s1.l1, s2.l1);
        assert_eq!(s1.l2, s2.l2);
        assert_eq!(s1.l3, s2.l3);
        assert_eq!(s1.disk_reads, s2.disk_reads);
    }

    #[test]
    fn contention_serializes_shared_l2() {
        let (cfg, tree) = tiny();
        // Both clients hammer the same I/O node simultaneously; their
        // L2 service must serialize, so at least one finishes later than
        // it would alone.
        let mk = |chunks: std::ops::Range<usize>| -> Vec<ClientOp> {
            chunks
                .map(|chunk| ClientOp::Access { chunk, write: false })
                .collect()
        };
        let mut solo = MappedProgram::new(cfg.num_clients);
        solo.per_client[0] = mk(0..20);
        let solo_stats = run(&cfg, &tree, &solo);

        let mut both = MappedProgram::new(cfg.num_clients);
        both.per_client[0] = mk(0..20);
        both.per_client[1] = mk(100..120);
        let both_stats = run(&cfg, &tree, &both);

        assert!(
            both_stats.per_client_finish_ns[0] >= solo_stats.per_client_finish_ns[0],
            "contention should never speed a client up"
        );
    }

    #[test]
    fn accesses_per_client_counts() {
        let mut prog = MappedProgram::new(2);
        prog.per_client[0] = vec![
            ClientOp::Compute { ns: 5 },
            ClientOp::Access { chunk: 0, write: false },
        ];
        prog.per_client[1] = vec![ClientOp::Access { chunk: 1, write: true }];
        assert_eq!(prog.total_accesses(), 2);
        assert_eq!(prog.accesses_per_client(), vec![1, 1]);
    }
}

#[cfg(test)]
mod trace_prefetch_tests {
    use super::*;
    use crate::trace::ServedBy;

    fn tiny() -> (PlatformConfig, HierarchyTree) {
        let cfg = PlatformConfig::tiny();
        let tree = HierarchyTree::from_config(&cfg);
        (cfg, tree)
    }

    #[test]
    fn traced_run_matches_untraced_and_labels_levels() {
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![
            ClientOp::Access { chunk: 1, write: false }, // disk
            ClientOp::Access { chunk: 1, write: false }, // L1 hit
        ];
        let plain = Engine::new(&cfg, &tree).run(&prog);
        let (stats, trace) = Engine::new(&cfg, &tree).run_traced(&prog);
        assert_eq!(plain.per_client_finish_ns, stats.per_client_finish_ns);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.events[0].served_by, ServedBy::Disk);
        assert_eq!(trace.events[1].served_by, ServedBy::L1);
        assert!(trace.events[0].time_ns <= trace.events[1].time_ns);
    }

    #[test]
    fn trace_reuse_profile_connects_to_hits() {
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = (0..20)
            .map(|i| ClientOp::Access { chunk: i % 5, write: false })
            .collect();
        let (stats, trace) = Engine::new(&cfg, &tree).run_traced(&prog);
        let profile = trace.client_reuse_profile(0);
        // L1 holds 4 chunks; Mattson predicts its hits exactly for a
        // single-client run.
        assert_eq!(
            profile.hits_at_capacity(cfg.client_cache_chunks),
            stats.l1.hits
        );
    }

    #[test]
    fn readahead_prefetches_sequential_spindle_chunks() {
        let (mut cfg, _) = tiny();
        cfg.readahead_chunks = 2;
        let tree = HierarchyTree::from_config(&cfg);
        // tiny(): 1 storage node × 4 spindles → stride 4. Touch chunk 0,
        // then its spindle successors 4 and 8 should be L3 hits.
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![
            ClientOp::Access { chunk: 0, write: false },
            ClientOp::Access { chunk: 4, write: false },
            ClientOp::Access { chunk: 8, write: false },
        ];
        let stats = Engine::new(&cfg, &tree).run(&prog);
        assert_eq!(stats.prefetched_chunks, 2);
        assert_eq!(stats.l3.hits, 2, "prefetched chunks must hit in L3");
        assert_eq!(stats.disk_reads, 3, "demand read + two prefetch reads");
    }

    #[test]
    fn readahead_stops_at_program_footprint() {
        let (mut cfg, _) = tiny();
        cfg.readahead_chunks = 8;
        let tree = HierarchyTree::from_config(&cfg);
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![ClientOp::Access { chunk: 0, write: false }];
        let stats = Engine::new(&cfg, &tree).run(&prog);
        assert_eq!(
            stats.prefetched_chunks, 0,
            "nothing beyond the program's highest chunk may be prefetched"
        );
    }

    #[test]
    fn readahead_off_by_default() {
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![ClientOp::Access { chunk: 0, write: false }];
        let stats = Engine::new(&cfg, &tree).run(&prog);
        assert_eq!(stats.prefetched_chunks, 0);
    }
}
