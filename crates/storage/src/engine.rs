//! Deterministic discrete-event engine.
//!
//! Each client node executes an ordered stream of [`ClientOp`]s (compute,
//! chunk accesses, and the synchronization signals/waits used by the
//! dependence extension of Section 5.4). The engine interleaves clients
//! in **global simulated-time order** — a binary heap keyed by
//! `(client clock, client id)` — so shared caches observe a single,
//! reproducible access order that approximates parallel execution, and
//! shared resources (I/O-node caches, storage-node caches, disks) apply
//! back-pressure through per-resource "next free" clocks.
//!
//! The access path mirrors the platform of Section 5.1: an L1 miss is
//! forwarded by the client to its I/O node (L2); an L2 miss is forwarded
//! to the storage node on the client's tree path (L3); an L3 miss goes to
//! the disk of the *striping owner* of the chunk, with a peer-forwarding
//! hop when the owner differs from the tree-route storage node. Caches
//! are write-allocate / write-back, and dirty evictions cascade one level
//! down with their costs charged to the access that triggered them.
//!
//! Fault injection ([`crate::faults`]) threads through the same global
//! clock: scheduled events are applied lazily when the heap reaches their
//! time, failover routing replaces crashed nodes on the access path, and
//! transient errors draw from a seeded generator in heap order — so a
//! faulty run is exactly as reproducible as a clean one, and a run with
//! an empty [`FaultPlan`] is bit-identical to a fault-free run.

use crate::cache::{build_cache, Chunk, ChunkCache, InsertOutcome};
use crate::config::{ConfigError, PlatformConfig};
use crate::disk::{disk_index, owner_of_chunk, striping_stride, total_disks, Disk};
use crate::faults::{DegradeLevel, FaultEvent, FaultPlan, FaultPlanError, FaultStats};
use crate::net::{chunk_transfer_ns, control_ns, Hop};
use crate::topology::HierarchyTree;
use crate::trace::{ServedBy, Trace, TraceEvent};
use cachemap_obs::{Level as ObsLevel, LinkHop, Recorder};
use cachemap_util::stats::HitMiss;
use cachemap_util::{Backoff, FxHashMap, XorShift64};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Retry attempts per access before a transient error is forced to
/// succeed (a termination backstop; with validated rates the loop exits
/// almost immediately).
const MAX_TRANSIENT_RETRIES: u32 = 32;
/// Cap on the exponential backoff, as a multiple of the base delay.
const MAX_BACKOFF_FACTOR: u64 = 16;

/// One operation in a client's instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientOp {
    /// Pure computation for the given simulated nanoseconds.
    Compute {
        /// Duration in ns.
        ns: u64,
    },
    /// Access one data chunk (read or write) through the cache hierarchy.
    Access {
        /// Global chunk id.
        chunk: Chunk,
        /// True for writes (write-allocate, mark dirty in L1).
        write: bool,
    },
    /// Signal a synchronization token (dependence source side).
    Signal {
        /// Token identity; must be signalled at most once.
        token: u32,
    },
    /// Wait until a token is signalled (dependence sink side).
    Wait {
        /// Token identity.
        token: u32,
    },
}

/// A fully mapped program: one operation stream per client node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MappedProgram {
    /// `per_client[c]` is the ordered op stream of client `c`.
    pub per_client: Vec<Vec<ClientOp>>,
}

impl MappedProgram {
    /// Creates an empty program for `num_clients` clients.
    pub fn new(num_clients: usize) -> Self {
        MappedProgram {
            per_client: vec![Vec::new(); num_clients],
        }
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.per_client.len()
    }

    /// Total `Access` operations across all clients.
    pub fn total_accesses(&self) -> u64 {
        self.per_client
            .iter()
            .flatten()
            .filter(|op| matches!(op, ClientOp::Access { .. }))
            .count() as u64
    }

    /// Per-client count of `Access` operations (the "iteration balance"
    /// the load-balancing step cares about, at access granularity).
    pub fn accesses_per_client(&self) -> Vec<u64> {
        self.per_client
            .iter()
            .map(|ops| {
                ops.iter()
                    .filter(|op| matches!(op, ClientOp::Access { .. }))
                    .count() as u64
            })
            .collect()
    }
}

/// Why a simulation could not be built or run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The platform configuration is invalid.
    Config(ConfigError),
    /// The hierarchy tree was built for a different client count.
    TreeMismatch {
        /// Clients in the tree.
        tree_clients: usize,
        /// Clients in the configuration.
        config_clients: usize,
    },
    /// The program was mapped for a different client count.
    ProgramMismatch {
        /// Clients in the program.
        program_clients: usize,
        /// Clients in the configuration.
        config_clients: usize,
    },
    /// Start clocks were supplied for a different client count.
    StartClockMismatch {
        /// Clocks supplied.
        given: usize,
        /// Clients in the configuration.
        config_clients: usize,
    },
    /// A synchronization token was signalled twice.
    DuplicateSignal {
        /// The offending token.
        token: u32,
    },
    /// The run ended with clients parked on tokens that were never
    /// signalled.
    Deadlock {
        /// The waiting clients, in ascending order.
        waiting: Vec<usize>,
    },
    /// The fault plan does not fit the platform.
    Fault(FaultPlanError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Config(e) => write!(f, "invalid platform config: {e}"),
            EngineError::TreeMismatch {
                tree_clients,
                config_clients,
            } => write!(
                f,
                "hierarchy tree has {tree_clients} clients, config has {config_clients}"
            ),
            EngineError::ProgramMismatch {
                program_clients,
                config_clients,
            } => write!(
                f,
                "program has {program_clients} clients, platform has {config_clients}"
            ),
            EngineError::StartClockMismatch {
                given,
                config_clients,
            } => write!(
                f,
                "{given} start clocks supplied, platform has {config_clients} clients"
            ),
            EngineError::DuplicateSignal { token } => {
                write!(f, "token {token} signalled twice")
            }
            EngineError::Deadlock { waiting } => write!(
                f,
                "deadlock: clients {waiting:?} waiting on tokens that were never signalled"
            ),
            EngineError::Fault(e) => write!(f, "invalid fault plan: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Config(e) => Some(e),
            EngineError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for EngineError {
    fn from(e: ConfigError) -> Self {
        EngineError::Config(e)
    }
}

impl From<FaultPlanError> for EngineError {
    fn from(e: FaultPlanError) -> Self {
        EngineError::Fault(e)
    }
}

/// Opt-in request-level robustness policy (all thresholds in simulated
/// nanoseconds). The default (all zeros) disables every mechanism and
/// leaves the engine on the unpoliced fast path, bit-identical to a run
/// without a policy.
///
/// The three mechanisms act on an L1 miss, before the request is
/// committed to an I/O node, using only state a client-side RPC layer
/// could observe (the target's queue backlog):
///
/// 1. **Deadline** — if the L2 queue backlog alone already exceeds
///    `deadline_ns`, the request is declared late.
/// 2. **Hedged retries** — a late request is duplicated to up to
///    `max_hedges` surviving sibling I/O nodes (one extra control hop
///    each); the replica with the shortest queue wins.
/// 3. **Admission shed** — if the winner's backlog still exceeds
///    `shed_queue_ns`, the request sheds to the direct-to-storage path
///    instead of queueing behind the overloaded cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestPolicy {
    /// Per-request deadline; queue backlog beyond it triggers hedging.
    /// Zero disables deadlines (and with them hedging).
    pub deadline_ns: u64,
    /// Maximum hedged replicas per late request.
    pub max_hedges: u32,
    /// Backlog beyond which the request sheds to direct-to-storage.
    /// Zero disables shedding.
    pub shed_queue_ns: u64,
}

impl RequestPolicy {
    /// True when at least one mechanism is active.
    pub fn is_enabled(&self) -> bool {
        self.deadline_ns > 0 || self.shed_queue_ns > 0
    }
}

/// Counters for [`RequestPolicy`] decisions during one run (all zero
/// when no policy is attached).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// Requests whose queue backlog exceeded the deadline.
    pub deadline_violations: u64,
    /// Hedged replicas sent to sibling I/O nodes.
    pub hedges: u64,
    /// Hedges that won (the replica's queue beat the original's).
    pub hedge_wins: u64,
    /// Requests shed to the direct-to-storage path.
    pub sheds: u64,
}

/// Resident cache lines at an epoch boundary, per level and node, in
/// eviction order (least-recently-used first).
///
/// Epoch boundaries have checkpoint-flush semantics: dirty lines are
/// written back at the boundary, but the (now clean) data stays
/// resident — a checkpoint does not wipe caches. Restoring a snapshot
/// reinserts the lines clean, oldest first, so LRU recency is
/// preserved exactly; FIFO keeps its queue order, and LFU restarts
/// every line at frequency one (the boundary forgets hotness, not
/// residency).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Per-client L1 residents.
    pub l1: Vec<Vec<Chunk>>,
    /// Per-I/O-node L2 residents.
    pub l2: Vec<Vec<Chunk>>,
    /// Per-storage-node L3 residents.
    pub l3: Vec<Vec<Chunk>>,
}

impl CacheSnapshot {
    /// Total resident lines across all levels.
    pub fn resident_lines(&self) -> usize {
        self.l1
            .iter()
            .chain(self.l2.iter())
            .chain(self.l3.iter())
            .map(Vec::len)
            .sum()
    }
}

/// Eviction counters for one cache level, aggregated over a run.
/// Dirty evictions additionally count as writebacks (the victim is
/// pushed one level down, or to disk).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictionTally {
    /// Total evictions, clean and dirty.
    pub evictions: u64,
    /// Dirty evictions that triggered a writeback.
    pub writebacks: u64,
}

impl EvictionTally {
    fn bump(&mut self, dirty: bool) {
        self.evictions += 1;
        if dirty {
            self.writebacks += 1;
        }
    }
}

/// Aggregated outcome of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Cumulative client-cache statistics (all L1 caches merged).
    pub l1: HitMiss,
    /// Cumulative I/O-node cache statistics.
    pub l2: HitMiss,
    /// Cumulative storage-node cache statistics.
    pub l3: HitMiss,
    /// Client-cache evictions/writebacks (all L1 caches merged).
    pub l1_evictions: EvictionTally,
    /// I/O-node cache evictions/writebacks.
    pub l2_evictions: EvictionTally,
    /// Storage-node cache evictions/writebacks.
    pub l3_evictions: EvictionTally,
    /// Per-client time spent inside `Access` operations, ns.
    pub per_client_io_ns: Vec<u64>,
    /// Per-client time spent inside `Compute` operations, ns.
    pub per_client_compute_ns: Vec<u64>,
    /// Per-client completion time, ns.
    pub per_client_finish_ns: Vec<u64>,
    /// Disk reads serviced.
    pub disk_reads: u64,
    /// Disk reads that were sequential on their disk.
    pub disk_sequential_reads: u64,
    /// Disk write-backs serviced.
    pub disk_writes: u64,
    /// Chunks prefetched into storage-node caches by server read-ahead.
    pub prefetched_chunks: u64,
    /// Degraded-mode counters (all zero on a fault-free run).
    pub faults: FaultStats,
    /// Request-policy counters (all zero without a [`RequestPolicy`]).
    pub policy: PolicyStats,
}

struct Resources {
    l1: Vec<Box<dyn ChunkCache + Send>>,
    l2: Vec<Box<dyn ChunkCache + Send>>,
    l3: Vec<Box<dyn ChunkCache + Send>>,
    l2_free: Vec<u64>,
    l3_free: Vec<u64>,
    disks: Vec<Disk>,
    disk_free: Vec<u64>,
    /// Aggregate eviction/writeback tallies `[l1, l2, l3]`. Lives here
    /// (not on the engine) so the degrade-time write-back free functions
    /// can update it while `FaultState` is borrowed.
    tally: [EvictionTally; 3],
}

/// Mutable fault-injection state derived from a [`FaultPlan`].
struct FaultState {
    /// Events sorted by `(at_ns, plan order)`; applied lazily.
    events: Vec<FaultEvent>,
    next_event: usize,
    io_alive: Vec<bool>,
    storage_alive: Vec<bool>,
    /// Per-storage-node disk service-time multiplier (starts at 1).
    disk_factor: Vec<u64>,
    transient_rng: Option<XorShift64>,
    transient_rate_ppm: u64,
    stats: FaultStats,
    first_crash_ns: Option<u64>,
    recovery_ns: Option<u64>,
}

impl FaultState {
    fn from_plan(plan: &FaultPlan, cfg: &PlatformConfig) -> Option<FaultState> {
        if plan.is_empty() {
            // No state at all: the fault-free fast path stays untouched,
            // which is what makes the empty plan bit-identical to a run
            // without any plan.
            return None;
        }
        let mut events = plan.events.clone();
        events.sort_by_key(|e| e.at_ns()); // stable: plan order breaks ties
        Some(FaultState {
            events,
            next_event: 0,
            io_alive: vec![true; cfg.num_io_nodes],
            storage_alive: vec![true; cfg.num_storage_nodes],
            disk_factor: vec![1; cfg.num_storage_nodes],
            transient_rng: plan.transient.map(|t| XorShift64::new(t.seed)),
            transient_rate_ppm: plan.transient.map_or(0, |t| t.rate_ppm as u64),
            stats: FaultStats::default(),
            first_crash_ns: None,
            recovery_ns: None,
        })
    }
}

/// The discrete-event engine. Construct with [`Engine::new`], then call
/// [`Engine::run`] once.
pub struct Engine<'a> {
    cfg: &'a PlatformConfig,
    tree: &'a HierarchyTree,
    res: Resources,
    faults: Option<FaultState>,
    /// Metric recorder; `Some` only when the caller attached an *enabled*
    /// recorder, so the disabled path stays structurally identical to a
    /// run without observability (mirrors the empty-`FaultPlan` fast
    /// path).
    obs: Option<&'a mut Recorder>,
    trace: Option<Vec<TraceEvent>>,
    /// Highest chunk id referenced by the program (read-ahead never
    /// prefetches beyond it).
    max_chunk: Chunk,
    prefetched: u64,
    /// Request-level robustness policy; `Some` only when enabled, so the
    /// unpoliced path stays structurally identical.
    policy: Option<RequestPolicy>,
    policy_stats: PolicyStats,
    /// Per-client starting clocks (epoch resume); `None` starts everyone
    /// at zero.
    start_clocks: Option<Vec<u64>>,
    /// Cache residents carried over from the previous epoch.
    resume_caches: Option<CacheSnapshot>,
    /// Capture the final cache residents when the run ends.
    want_snapshot: bool,
}

impl<'a> Engine<'a> {
    /// Builds the engine's cache/disk state for a platform.
    pub fn new(cfg: &'a PlatformConfig, tree: &'a HierarchyTree) -> Result<Self, EngineError> {
        cfg.validate()?;
        if tree.num_clients() != cfg.num_clients {
            return Err(EngineError::TreeMismatch {
                tree_clients: tree.num_clients(),
                config_clients: cfg.num_clients,
            });
        }
        let res = Resources {
            l1: (0..cfg.num_clients)
                .map(|_| build_cache(cfg.policies[0], cfg.client_cache_chunks))
                .collect(),
            l2: (0..cfg.num_io_nodes)
                .map(|_| build_cache(cfg.policies[1], cfg.io_cache_chunks))
                .collect(),
            l3: (0..cfg.num_storage_nodes)
                .map(|_| build_cache(cfg.policies[2], cfg.storage_cache_chunks))
                .collect(),
            l2_free: vec![0; cfg.num_io_nodes],
            l3_free: vec![0; cfg.num_storage_nodes],
            disks: (0..total_disks(cfg)).map(|_| Disk::new()).collect(),
            disk_free: vec![0; total_disks(cfg)],
            tally: [EvictionTally::default(); 3],
        };
        Ok(Engine {
            cfg,
            tree,
            res,
            faults: None,
            obs: None,
            trace: None,
            max_chunk: 0,
            prefetched: 0,
            policy: None,
            policy_stats: PolicyStats::default(),
            start_clocks: None,
            resume_caches: None,
            want_snapshot: false,
        })
    }

    /// Attaches a metric recorder. A disabled recorder is ignored,
    /// keeping the uninstrumented fast path byte-identical.
    pub fn with_recorder(mut self, rec: &'a mut Recorder) -> Self {
        if rec.is_enabled() {
            self.obs = Some(rec);
        }
        self
    }

    /// Attaches a fault plan (validated against the platform). An empty
    /// plan leaves the engine on the fault-free fast path.
    pub fn with_fault_plan(mut self, plan: &FaultPlan) -> Result<Self, EngineError> {
        plan.validate(self.cfg)?;
        self.faults = FaultState::from_plan(plan, self.cfg);
        Ok(self)
    }

    /// Attaches a request-level robustness policy. A disabled policy
    /// (all thresholds zero) is ignored, keeping the unpoliced fast
    /// path byte-identical.
    pub fn with_policy(mut self, policy: RequestPolicy) -> Self {
        if policy.is_enabled() {
            self.policy = Some(policy);
        }
        self
    }

    /// Starts each client at the given simulated-time clock instead of
    /// zero (the supervisor's epoch loop uses this to keep absolute time
    /// continuous across epochs). Length is validated at run time.
    pub fn with_start_clocks(mut self, clocks: Vec<u64>) -> Self {
        self.start_clocks = Some(clocks);
        self
    }

    /// Seeds the caches with the resident lines of a previous epoch's
    /// snapshot (all clean) before the run starts. Crash events that
    /// re-fire at the first tick still drain the seeded state, so a
    /// node that died in an earlier epoch stays cold.
    pub fn with_cache_snapshot(mut self, snapshot: CacheSnapshot) -> Self {
        self.resume_caches = Some(snapshot);
        self
    }

    /// Like [`Engine::run`] but also records every access into a
    /// [`Trace`].
    pub fn run_traced(mut self, program: &MappedProgram) -> Result<(RunStats, Trace), EngineError> {
        self.trace = Some(Vec::new());
        let (stats, trace, _) = self.run_impl(program)?;
        // Invariant: run_impl returns the trace whenever capture was
        // primed above; fall back to an empty trace defensively.
        debug_assert!(trace.is_some(), "trace capture was enabled");
        Ok((stats, trace.unwrap_or(Trace { events: Vec::new() })))
    }

    /// Runs a mapped program to completion and returns the statistics.
    pub fn run(self, program: &MappedProgram) -> Result<RunStats, EngineError> {
        Ok(self.run_impl(program)?.0)
    }

    /// Like [`Engine::run`] but also returns the final cache residents
    /// (dirty lines flushed to clean) for the next epoch to resume from.
    pub fn run_with_snapshot(
        mut self,
        program: &MappedProgram,
    ) -> Result<(RunStats, CacheSnapshot), EngineError> {
        self.want_snapshot = true;
        let (stats, _, snapshot) = self.run_impl(program)?;
        debug_assert!(snapshot.is_some(), "snapshot capture was enabled");
        Ok((stats, snapshot.unwrap_or_default()))
    }

    fn run_impl(
        mut self,
        program: &MappedProgram,
    ) -> Result<(RunStats, Option<Trace>, Option<CacheSnapshot>), EngineError> {
        let n = self.cfg.num_clients;
        if program.num_clients() != n {
            return Err(EngineError::ProgramMismatch {
                program_clients: program.num_clients(),
                config_clients: n,
            });
        }
        self.max_chunk = program
            .per_client
            .iter()
            .flatten()
            .filter_map(|op| match op {
                ClientOp::Access { chunk, .. } => Some(*chunk),
                _ => None,
            })
            .max()
            .unwrap_or(0);

        let mut clock = match self.start_clocks.take() {
            Some(clocks) if clocks.len() == n => clocks,
            Some(clocks) => {
                return Err(EngineError::StartClockMismatch {
                    given: clocks.len(),
                    config_clients: n,
                })
            }
            None => vec![0u64; n],
        };
        if let Some(snap) = self.resume_caches.take() {
            // Reinsert carried-over residents clean, oldest first, so
            // replacement order survives the boundary. `insert` does not
            // touch hit/miss statistics, so seeded lines cost nothing.
            let levels = [
                (&mut self.res.l1, &snap.l1),
                (&mut self.res.l2, &snap.l2),
                (&mut self.res.l3, &snap.l3),
            ];
            for (caches, lines) in levels {
                for (cache, resident) in caches.iter_mut().zip(lines) {
                    for &chunk in resident {
                        cache.insert(chunk, false);
                    }
                }
            }
        }

        let mut pc = vec![0usize; n];
        let mut io_ns = vec![0u64; n];
        let mut compute_ns = vec![0u64; n];
        let mut signals: FxHashMap<u32, u64> = FxHashMap::default();
        let mut parked: FxHashMap<u32, Vec<usize>> = FxHashMap::default();

        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..n)
            .filter(|&c| !program.per_client[c].is_empty())
            .map(|c| Reverse((clock[c], c)))
            .collect();

        while let Some(Reverse((t, c))) = heap.pop() {
            debug_assert_eq!(t, clock[c]);
            self.apply_due_faults(t);
            let op = program.per_client[c][pc[c]];
            pc[c] += 1;
            let mut park = false;
            match op {
                ClientOp::Compute { ns } => {
                    clock[c] += ns;
                    compute_ns[c] += ns;
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.client_compute(c, t, ns);
                    }
                }
                ClientOp::Access { chunk, write } => {
                    let start = clock[c];
                    let (end, served_by) = self.access(c, chunk, write, start);
                    io_ns[c] += end - start;
                    clock[c] = end;
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.client_io(c, start, end - start);
                        o.chunk_access(chunk as u64);
                    }
                    if let Some(tr) = &mut self.trace {
                        tr.push(TraceEvent {
                            time_ns: start,
                            client: c,
                            chunk,
                            write,
                            served_by,
                        });
                    }
                }
                ClientOp::Signal { token } => {
                    clock[c] += self.cfg.sync_ns;
                    let prev = signals.insert(token, clock[c]);
                    if prev.is_some() {
                        return Err(EngineError::DuplicateSignal { token });
                    }
                    if let Some(waiters) = parked.remove(&token) {
                        for w in waiters {
                            clock[w] = clock[w].max(clock[c]) + self.cfg.sync_ns;
                            heap.push(Reverse((clock[w], w)));
                        }
                    }
                }
                ClientOp::Wait { token } => {
                    if let Some(&ts) = signals.get(&token) {
                        clock[c] = clock[c].max(ts) + self.cfg.sync_ns;
                    } else {
                        // Park: will be re-queued by the matching Signal.
                        parked.entry(token).or_default().push(c);
                        park = true;
                    }
                }
            }
            if !park && pc[c] < program.per_client[c].len() {
                heap.push(Reverse((clock[c], c)));
            }
        }

        if !parked.is_empty() {
            let mut waiting: Vec<usize> = parked.values().flatten().copied().collect();
            waiting.sort_unstable();
            return Err(EngineError::Deadlock { waiting });
        }

        let mut stats = RunStats {
            per_client_io_ns: io_ns,
            per_client_compute_ns: compute_ns,
            per_client_finish_ns: clock,
            ..RunStats::default()
        };
        for c in &self.res.l1 {
            stats.l1.merge(&c.stats());
        }
        for c in &self.res.l2 {
            stats.l2.merge(&c.stats());
        }
        for c in &self.res.l3 {
            stats.l3.merge(&c.stats());
        }
        for d in &self.res.disks {
            stats.disk_reads += d.reads;
            stats.disk_writes += d.writes;
            stats.disk_sequential_reads += d.sequential_reads;
        }
        stats.l1_evictions = self.res.tally[0];
        stats.l2_evictions = self.res.tally[1];
        stats.l3_evictions = self.res.tally[2];
        stats.prefetched_chunks = self.prefetched;
        stats.policy = self.policy_stats;
        if let Some(f) = &self.faults {
            stats.faults = f.stats;
            stats.faults.recovery_ns = f.recovery_ns.unwrap_or(0);
        }
        let trace = self.trace.take().map(|mut events| {
            events.sort_by_key(|e| (e.time_ns, e.client));
            Trace { events }
        });
        // Snapshot after statistics: `drain` keeps stats intact and
        // returns residents in eviction order. The dirty flag is
        // dropped — the boundary flushes those lines.
        let snapshot = if self.want_snapshot {
            let take = |caches: &mut Vec<Box<dyn ChunkCache + Send>>| -> Vec<Vec<Chunk>> {
                caches
                    .iter_mut()
                    .map(|c| c.drain().into_iter().map(|(chunk, _)| chunk).collect())
                    .collect()
            };
            Some(CacheSnapshot {
                l1: take(&mut self.res.l1),
                l2: take(&mut self.res.l2),
                l3: take(&mut self.res.l3),
            })
        } else {
            None
        };
        Ok((stats, trace, snapshot))
    }

    /// Applies every scheduled fault event whose time has been reached.
    /// Runs at each heap pop, so events fire in global-time order.
    fn apply_due_faults(&mut self, now: u64) {
        let Some(f) = self.faults.as_mut() else {
            return;
        };
        while f.next_event < f.events.len() {
            let ev = f.events[f.next_event];
            if ev.at_ns() > now {
                break;
            }
            f.next_event += 1;
            match ev {
                FaultEvent::IoNodeCrash { io, at_ns } => {
                    if f.io_alive[io] {
                        f.io_alive[io] = false;
                        f.stats.crashed_io_nodes += 1;
                        f.first_crash_ns.get_or_insert(at_ns);
                        let lost = self.res.l2[io]
                            .drain()
                            .iter()
                            .filter(|(_, dirty)| *dirty)
                            .count();
                        f.stats.lost_dirty_chunks += lost as u64;
                        if let Some(o) = self.obs.as_deref_mut() {
                            o.event(at_ns, "io_crash", io as i64);
                        }
                    }
                }
                FaultEvent::StorageNodeCrash { storage, at_ns } => {
                    if f.storage_alive[storage] {
                        f.storage_alive[storage] = false;
                        f.stats.crashed_storage_nodes += 1;
                        f.first_crash_ns.get_or_insert(at_ns);
                        let lost = self.res.l3[storage]
                            .drain()
                            .iter()
                            .filter(|(_, dirty)| *dirty)
                            .count();
                        f.stats.lost_dirty_chunks += lost as u64;
                        if let Some(o) = self.obs.as_deref_mut() {
                            o.event(at_ns, "storage_crash", storage as i64);
                        }
                    }
                }
                FaultEvent::DiskDegrade {
                    storage,
                    latency_factor,
                    at_ns,
                } => {
                    f.disk_factor[storage] = latency_factor as u64;
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.event(at_ns, "disk_degrade", storage as i64);
                    }
                }
                FaultEvent::CacheDegrade {
                    level,
                    node,
                    at_ns,
                    capacity_chunks,
                } => {
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.event(at_ns, "cache_degrade", node as i64);
                    }
                    // Evicted dirty chunks are written back to the next
                    // level asynchronously: the lower-level resource
                    // clocks advance but no client waits.
                    match level {
                        DegradeLevel::Client => {
                            let evicted = self.res.l1[node].set_capacity(capacity_chunks);
                            let io = self.tree.io_of_client(node);
                            for (victim, dirty) in evicted {
                                self.res.tally[0].bump(dirty);
                                if let Some(o) = self.obs.as_deref_mut() {
                                    o.eviction(ObsLevel::L1, node, at_ns, dirty);
                                }
                                if dirty && f.io_alive[io] {
                                    let t = at_ns.max(self.res.l2_free[io]);
                                    write_back_l2(
                                        &mut self.res,
                                        f,
                                        self.cfg,
                                        self.tree,
                                        self.obs.as_deref_mut(),
                                        io,
                                        victim,
                                        t,
                                    );
                                }
                            }
                        }
                        DegradeLevel::Io => {
                            let evicted = self.res.l2[node].set_capacity(capacity_chunks);
                            let s = self.tree.storage_of_io(node);
                            for (victim, dirty) in evicted {
                                self.res.tally[1].bump(dirty);
                                if let Some(o) = self.obs.as_deref_mut() {
                                    o.eviction(ObsLevel::L2, node, at_ns, dirty);
                                }
                                if dirty {
                                    let t = at_ns.max(self.res.l3_free[s]);
                                    write_back_l3(
                                        &mut self.res,
                                        f,
                                        self.cfg,
                                        self.obs.as_deref_mut(),
                                        s,
                                        victim,
                                        t,
                                    );
                                }
                            }
                        }
                        DegradeLevel::Storage => {
                            let evicted = self.res.l3[node].set_capacity(capacity_chunks);
                            for (victim, dirty) in evicted {
                                self.res.tally[2].bump(dirty);
                                if let Some(o) = self.obs.as_deref_mut() {
                                    o.eviction(ObsLevel::L3, node, at_ns, dirty);
                                }
                                if dirty {
                                    write_back_disk(&mut self.res, f, self.cfg, victim, at_ns);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// True unless fault injection has crashed storage node `s`.
    fn storage_is_alive(&self, s: usize) -> bool {
        match &self.faults {
            Some(f) => f.storage_alive[s],
            None => true,
        }
    }

    /// True unless fault injection has crashed I/O node `io`.
    fn io_is_alive(&self, io: usize) -> bool {
        match &self.faults {
            Some(f) => f.io_alive[io],
            None => true,
        }
    }

    /// Resolves the I/O node an access should use. Returns the node (or
    /// `None` for direct-to-storage when every candidate is dead) and
    /// whether a failover happened.
    fn route_io(&self, io: usize) -> (Option<usize>, bool) {
        match &self.faults {
            None => (Some(io), false),
            Some(f) if f.io_alive[io] => (Some(io), false),
            Some(f) => {
                // Fail over to the lowest-indexed surviving sibling
                // under the same storage parent.
                let sibling = self
                    .tree
                    .io_siblings(io)
                    .into_iter()
                    .find(|&x| f.io_alive[x]);
                (sibling, true)
            }
        }
    }

    /// Draws transient errors for one remote access by client `c` and
    /// charges the capped exponential backoff to simulated time.
    fn transient_retries(&mut self, c: usize, mut t: u64) -> u64 {
        let base = self.cfg.net_hop_ns.max(1);
        let Some(f) = self.faults.as_mut() else {
            return t;
        };
        let Some(rng) = f.transient_rng.as_mut() else {
            return t;
        };
        // Deterministic (un-jittered) schedule: the delays are charged
        // to simulated time, so jitter would only blur reproducibility.
        let mut schedule = Backoff::exponential(base, base * MAX_BACKOFF_FACTOR);
        for _ in 0..MAX_TRANSIENT_RETRIES {
            if !rng.chance(f.transient_rate_ppm, 1_000_000) {
                break;
            }
            let backoff = schedule.next().unwrap_or(base);
            f.stats.transient_errors += 1;
            f.stats.retries += 1;
            f.stats.retry_backoff_ns += backoff;
            if let Some(o) = self.obs.as_deref_mut() {
                o.event(t, "retry", c as i64);
            }
            t += backoff;
        }
        t
    }

    /// Disk read service time including any degradation factor.
    fn disk_read_service(&mut self, di: usize, chunk: Chunk) -> u64 {
        let base = self.res.disks[di].read(chunk, self.cfg);
        base * self.disk_factor(di)
    }

    fn disk_factor(&self, di: usize) -> u64 {
        match &self.faults {
            Some(f) => f.disk_factor[di / self.cfg.disks_per_node],
            None => 1,
        }
    }

    /// Writes a dirty chunk straight to its disk (used when the caches
    /// below the victim's level are dead); returns the completion time.
    fn disk_writeback(&mut self, victim: Chunk, t: u64) -> u64 {
        let di = disk_index(victim, self.cfg);
        let start = t.max(self.res.disk_free[di]);
        let service = self.res.disks[di].write(victim, self.cfg) * self.disk_factor(di);
        self.res.disk_free[di] = start + service;
        start + service
    }

    /// Executes one chunk access for client `c` starting at time `t`;
    /// returns the completion time and the level that served the data.
    fn access(&mut self, c: usize, chunk: Chunk, write: bool, t: u64) -> (u64, ServedBy) {
        let cfg = self.cfg;
        let mut t = t + cfg.cache_access_ns; // L1 lookup
        let l1_hit = self.res.l1[c].access(chunk, write);
        if let Some(o) = self.obs.as_deref_mut() {
            o.cache_access(ObsLevel::L1, c, t, l1_hit);
        }
        if l1_hit {
            return (t, ServedBy::L1);
        }
        // The access leaves the client: transient errors may hit the
        // request and are retried with backoff before it proceeds.
        t = self.transient_retries(c, t);

        let mut served_by = ServedBy::L2;
        let io_home = self.tree.io_of_client(c);
        t += control_ns(Hop::ClientIo, cfg);
        let (mut io_route, mut failed_over) = self.route_io(io_home);
        // Request policy: deadline check, hedged retries against sibling
        // I/O nodes, and admission shedding — all driven by queue
        // backlog, the one signal a client-side RPC layer can observe.
        if let (Some(pol), Some(io)) = (self.policy, io_route) {
            let mut chosen = io;
            let mut backlog = self.res.l2_free[io].saturating_sub(t);
            if pol.deadline_ns > 0 && backlog > pol.deadline_ns {
                self.policy_stats.deadline_violations += 1;
                if let Some(o) = self.obs.as_deref_mut() {
                    o.event(t, "deadline", c as i64);
                }
                let mut hedges = 0u32;
                for sib in self.tree.io_siblings(io) {
                    if hedges >= pol.max_hedges {
                        break;
                    }
                    if !self.io_is_alive(sib) {
                        continue;
                    }
                    hedges += 1;
                    self.policy_stats.hedges += 1;
                    // Each hedge costs one extra control hop before the
                    // replica's queue position is known.
                    t += control_ns(Hop::ClientIo, cfg);
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.event(t, "hedge", c as i64);
                    }
                    let sib_backlog = self.res.l2_free[sib].saturating_sub(t);
                    if sib_backlog < backlog {
                        chosen = sib;
                        backlog = sib_backlog;
                        self.policy_stats.hedge_wins += 1;
                    }
                }
            }
            if pol.shed_queue_ns > 0 && backlog > pol.shed_queue_ns {
                self.policy_stats.sheds += 1;
                if let Some(o) = self.obs.as_deref_mut() {
                    o.event(t, "shed", c as i64);
                }
                io_route = None;
            } else {
                io_route = Some(chosen);
            }
        }
        // Transfers on the client⇄io and io⇄storage paths are attributed
        // to the home I/O node even when failover bypassed it, so link
        // tallies stay comparable across faulty and clean runs.
        let io_link = io_route.unwrap_or(io_home);

        let mut l2_hit = false;
        if let Some(io) = io_route {
            if io != io_home {
                // Redirect hop to the failover sibling.
                t += control_ns(Hop::ClientIo, cfg);
            }
            t = self.serve_l2(io, t);
            l2_hit = self.res.l2[io].access(chunk, false);
            if let Some(o) = self.obs.as_deref_mut() {
                o.cache_access(ObsLevel::L2, io, t, l2_hit);
            }
        }
        if !l2_hit {
            // L2 miss (or no surviving L2) → storage node on the path.
            let s = self.tree.storage_of_client(c);
            t += control_ns(Hop::IoStorage, cfg);
            let storage_alive = self.storage_is_alive(s);
            let mut l3_hit = false;
            if storage_alive {
                t = self.serve_l3(s, t);
                l3_hit = self.res.l3[s].access(chunk, false);
                if let Some(o) = self.obs.as_deref_mut() {
                    o.cache_access(ObsLevel::L3, s, t, l3_hit);
                }
                served_by = ServedBy::L3;
            } else {
                failed_over = true;
                served_by = ServedBy::Disk;
            }

            if !l3_hit {
                served_by = ServedBy::Disk;
                // L3 miss → disk of the striping owner.
                let owner = owner_of_chunk(chunk, cfg);
                if owner != s {
                    t += control_ns(Hop::StoragePeer, cfg);
                }
                let di = disk_index(chunk, cfg);
                let start = t.max(self.res.disk_free[di]);
                let service = self.disk_read_service(di, chunk);
                t = start + service;
                self.res.disk_free[di] = t;
                if owner != s {
                    t += chunk_transfer_ns(Hop::StoragePeer, cfg);
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.link_transfer(LinkHop::StoragePeer, owner, s, cfg.chunk_bytes);
                    }
                }
                if storage_alive {
                    // Fill L3 (write-back any dirty victim to its disk).
                    t = self.fill_l3(s, chunk, false, t);
                    // Server read-ahead: pull the next sequential chunks
                    // of this spindle into L3 asynchronously — the disk
                    // stays busy (streaming at transfer rate) but the
                    // client does not wait.
                    if cfg.readahead_chunks > 0 {
                        self.readahead(s, chunk, t);
                    }
                }
            }
            t += chunk_transfer_ns(Hop::IoStorage, cfg);
            if let Some(o) = self.obs.as_deref_mut() {
                o.link_transfer(LinkHop::IoStorage, s, io_link, cfg.chunk_bytes);
            }
            if let Some(io) = io_route {
                // Fill L2 (dirty victim cascades into L3).
                t = self.fill_l2(io, chunk, false, t);
            }
        }
        t += chunk_transfer_ns(Hop::ClientIo, cfg);
        if let Some(o) = self.obs.as_deref_mut() {
            o.link_transfer(LinkHop::ClientIo, io_link, c, cfg.chunk_bytes);
        }

        // Fill L1; dirty victim is written back to L2 (or past it when
        // the surviving route has no L2).
        match self.res.l1[c].insert(chunk, write) {
            InsertOutcome::Inserted => {}
            InsertOutcome::EvictedClean(_) => {
                self.res.tally[0].bump(false);
                if let Some(o) = self.obs.as_deref_mut() {
                    o.eviction(ObsLevel::L1, c, t, false);
                }
            }
            InsertOutcome::EvictedDirty(victim) => {
                self.res.tally[0].bump(true);
                if let Some(o) = self.obs.as_deref_mut() {
                    o.eviction(ObsLevel::L1, c, t, true);
                }
                t += chunk_transfer_ns(Hop::ClientIo, cfg);
                if let Some(o) = self.obs.as_deref_mut() {
                    o.link_transfer(LinkHop::ClientIo, c, io_link, cfg.chunk_bytes);
                }
                if let Some(io) = io_route {
                    t = self.serve_l2(io, t);
                    t = self.fill_l2(io, victim, true, t);
                } else {
                    let s = self.tree.storage_of_client(c);
                    t += chunk_transfer_ns(Hop::IoStorage, cfg);
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.link_transfer(LinkHop::IoStorage, io_link, s, cfg.chunk_bytes);
                    }
                    if self.storage_is_alive(s) {
                        t = self.serve_l3(s, t);
                        t = self.fill_l3(s, victim, true, t);
                    } else {
                        t = self.disk_writeback(victim, t);
                    }
                }
            }
        }
        if failed_over {
            if let Some(f) = self.faults.as_mut() {
                f.stats.failovers += 1;
                if f.recovery_ns.is_none() {
                    if let Some(crash) = f.first_crash_ns {
                        f.recovery_ns = Some(t.saturating_sub(crash));
                    }
                }
            }
            if let Some(o) = self.obs.as_deref_mut() {
                o.event(t, "failover", c as i64);
            }
        }
        (t, served_by)
    }

    /// PVFS-style server read-ahead after a demand read of `chunk`.
    fn readahead(&mut self, s: usize, chunk: Chunk, t: u64) {
        let cfg = self.cfg;
        let stride = striping_stride(cfg);
        let di = disk_index(chunk, cfg);
        for k in 1..=cfg.readahead_chunks {
            let next = chunk + k * stride;
            if next > self.max_chunk || self.res.l3[s].contains(next) {
                break;
            }
            // Sequential transfer keeps the spindle busy; the requesting
            // client does not wait for it.
            let start = t.max(self.res.disk_free[di]);
            let service = self.disk_read_service(di, next);
            self.res.disk_free[di] = start + service;
            self.fill_l3(s, next, false, start + service);
            self.prefetched += 1;
        }
    }

    /// Waits for and occupies the L2 cache controller of I/O node `io`.
    fn serve_l2(&mut self, io: usize, t: u64) -> u64 {
        let start = t.max(self.res.l2_free[io]);
        if let Some(o) = self.obs.as_deref_mut() {
            o.queue_wait(ObsLevel::L2, io, t, start - t);
        }
        let end = start + self.cfg.cache_access_ns;
        self.res.l2_free[io] = end;
        end
    }

    /// Waits for and occupies the L3 cache controller of storage node `s`.
    fn serve_l3(&mut self, s: usize, t: u64) -> u64 {
        let start = t.max(self.res.l3_free[s]);
        if let Some(o) = self.obs.as_deref_mut() {
            o.queue_wait(ObsLevel::L3, s, t, start - t);
        }
        let end = start + self.cfg.cache_access_ns;
        self.res.l3_free[s] = end;
        end
    }

    /// Inserts into L2, cascading a dirty victim into L3 (or straight to
    /// disk when the parent storage node is dead).
    fn fill_l2(&mut self, io: usize, chunk: Chunk, dirty: bool, mut t: u64) -> u64 {
        match self.res.l2[io].insert(chunk, dirty) {
            InsertOutcome::Inserted => t,
            InsertOutcome::EvictedClean(_) => {
                self.res.tally[1].bump(false);
                if let Some(o) = self.obs.as_deref_mut() {
                    o.eviction(ObsLevel::L2, io, t, false);
                }
                t
            }
            InsertOutcome::EvictedDirty(victim) => {
                self.res.tally[1].bump(true);
                if let Some(o) = self.obs.as_deref_mut() {
                    o.eviction(ObsLevel::L2, io, t, true);
                }
                let s = self.tree.storage_of_io(io);
                t += chunk_transfer_ns(Hop::IoStorage, self.cfg);
                if let Some(o) = self.obs.as_deref_mut() {
                    o.link_transfer(LinkHop::IoStorage, io, s, self.cfg.chunk_bytes);
                }
                if self.storage_is_alive(s) {
                    t = self.serve_l3(s, t);
                    self.fill_l3(s, victim, true, t)
                } else {
                    self.disk_writeback(victim, t)
                }
            }
        }
    }

    /// Inserts into L3, writing a dirty victim back to its disk.
    fn fill_l3(&mut self, s: usize, chunk: Chunk, dirty: bool, mut t: u64) -> u64 {
        match self.res.l3[s].insert(chunk, dirty) {
            InsertOutcome::Inserted => t,
            InsertOutcome::EvictedClean(_) => {
                self.res.tally[2].bump(false);
                if let Some(o) = self.obs.as_deref_mut() {
                    o.eviction(ObsLevel::L3, s, t, false);
                }
                t
            }
            InsertOutcome::EvictedDirty(victim) => {
                self.res.tally[2].bump(true);
                if let Some(o) = self.obs.as_deref_mut() {
                    o.eviction(ObsLevel::L3, s, t, true);
                }
                t = self.disk_writeback(victim, t);
                t
            }
        }
    }
}

/// Asynchronous degrade-time write-back into an L2 cache (free function
/// so [`Engine::apply_due_faults`] can borrow `FaultState` alongside the
/// resources). Cascades a dirty victim toward L3/disk like
/// [`Engine::fill_l2`], without charging any client.
#[allow(clippy::too_many_arguments)]
fn write_back_l2(
    res: &mut Resources,
    f: &FaultState,
    cfg: &PlatformConfig,
    tree: &HierarchyTree,
    mut obs: Option<&mut Recorder>,
    io: usize,
    chunk: Chunk,
    t: u64,
) {
    res.l2_free[io] = res.l2_free[io].max(t) + cfg.cache_access_ns;
    match res.l2[io].insert(chunk, true) {
        InsertOutcome::Inserted => {}
        InsertOutcome::EvictedClean(_) => {
            res.tally[1].bump(false);
            if let Some(o) = obs.as_deref_mut() {
                o.eviction(ObsLevel::L2, io, t, false);
            }
        }
        InsertOutcome::EvictedDirty(victim) => {
            res.tally[1].bump(true);
            if let Some(o) = obs.as_deref_mut() {
                o.eviction(ObsLevel::L2, io, t, true);
            }
            let s = tree.storage_of_io(io);
            let free = res.l2_free[io];
            write_back_l3(res, f, cfg, obs, s, victim, free);
        }
    }
}

/// Asynchronous degrade-time write-back into an L3 cache.
fn write_back_l3(
    res: &mut Resources,
    f: &FaultState,
    cfg: &PlatformConfig,
    mut obs: Option<&mut Recorder>,
    s: usize,
    chunk: Chunk,
    t: u64,
) {
    if !f.storage_alive[s] {
        write_back_disk(res, f, cfg, chunk, t);
        return;
    }
    res.l3_free[s] = res.l3_free[s].max(t) + cfg.cache_access_ns;
    match res.l3[s].insert(chunk, true) {
        InsertOutcome::Inserted => {}
        InsertOutcome::EvictedClean(_) => {
            res.tally[2].bump(false);
            if let Some(o) = obs.as_deref_mut() {
                o.eviction(ObsLevel::L3, s, t, false);
            }
        }
        InsertOutcome::EvictedDirty(victim) => {
            res.tally[2].bump(true);
            if let Some(o) = obs {
                o.eviction(ObsLevel::L3, s, t, true);
            }
            let free = res.l3_free[s];
            write_back_disk(res, f, cfg, victim, free);
        }
    }
}

/// Asynchronous degrade-time write-back straight to disk.
fn write_back_disk(
    res: &mut Resources,
    f: &FaultState,
    cfg: &PlatformConfig,
    chunk: Chunk,
    t: u64,
) {
    let di = disk_index(chunk, cfg);
    let start = t.max(res.disk_free[di]);
    let service = res.disks[di].write(chunk, cfg) * f.disk_factor[di / cfg.disks_per_node];
    res.disk_free[di] = start + service;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (PlatformConfig, HierarchyTree) {
        let cfg = PlatformConfig::tiny();
        let tree = HierarchyTree::from_config(&cfg).unwrap();
        (cfg, tree)
    }

    fn run(cfg: &PlatformConfig, tree: &HierarchyTree, prog: &MappedProgram) -> RunStats {
        Engine::new(cfg, tree).unwrap().run(prog).unwrap()
    }

    #[test]
    fn empty_program_finishes_at_zero() {
        let (cfg, tree) = tiny();
        let prog = MappedProgram::new(cfg.num_clients);
        let stats = run(&cfg, &tree, &prog);
        assert!(stats.per_client_finish_ns.iter().all(|&t| t == 0));
        assert_eq!(stats.l1.accesses(), 0);
        assert_eq!(stats.faults, FaultStats::default());
    }

    #[test]
    fn compute_only_advances_clock() {
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![ClientOp::Compute { ns: 500 }, ClientOp::Compute { ns: 250 }];
        let stats = run(&cfg, &tree, &prog);
        assert_eq!(stats.per_client_finish_ns[0], 750);
        assert_eq!(stats.per_client_compute_ns[0], 750);
        assert_eq!(stats.per_client_io_ns[0], 0);
    }

    #[test]
    fn first_access_misses_all_levels_then_hits_l1() {
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![
            ClientOp::Access {
                chunk: 3,
                write: false,
            },
            ClientOp::Access {
                chunk: 3,
                write: false,
            },
        ];
        let stats = run(&cfg, &tree, &prog);
        assert_eq!(stats.l1.hits, 1);
        assert_eq!(stats.l1.misses, 1);
        assert_eq!(stats.l2.misses, 1);
        assert_eq!(stats.l2.hits, 0);
        assert_eq!(stats.l3.misses, 1);
        assert_eq!(stats.disk_reads, 1);
        // Second access is far cheaper than the first.
        assert!(stats.per_client_io_ns[0] > cfg.seek_ns);
    }

    #[test]
    fn sharing_through_l2_gives_second_client_a_hit() {
        let (cfg, tree) = tiny();
        // Clients 0 and 1 share I/O node 0 in the tiny topology.
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![ClientOp::Access {
            chunk: 9,
            write: false,
        }];
        prog.per_client[1] = vec![
            ClientOp::Compute { ns: 60_000_000 }, // let client 0 finish first
            ClientOp::Access {
                chunk: 9,
                write: false,
            },
        ];
        let stats = run(&cfg, &tree, &prog);
        assert_eq!(stats.l1.misses, 2); // each client misses its private L1
        assert_eq!(stats.l2.hits, 1); // client 1 hits in the shared L2
        assert_eq!(stats.l2.misses, 1);
        assert_eq!(stats.disk_reads, 1);
    }

    #[test]
    fn no_sharing_when_clients_use_different_io_nodes() {
        let (cfg, tree) = tiny();
        // Clients 0 and 2 are under different I/O nodes but the same
        // (only) storage node: the reuse shows up at L3, not L2.
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![ClientOp::Access {
            chunk: 9,
            write: false,
        }];
        prog.per_client[2] = vec![
            ClientOp::Compute { ns: 60_000_000 },
            ClientOp::Access {
                chunk: 9,
                write: false,
            },
        ];
        let stats = run(&cfg, &tree, &prog);
        assert_eq!(stats.l2.hits, 0);
        assert_eq!(stats.l3.hits, 1);
        assert_eq!(stats.disk_reads, 1);
    }

    #[test]
    fn capacity_eviction_causes_refetch() {
        let (cfg, tree) = tiny(); // L1 holds 4 chunks
        let mut ops = Vec::new();
        for chunk in 0..5 {
            ops.push(ClientOp::Access {
                chunk,
                write: false,
            });
        }
        ops.push(ClientOp::Access {
            chunk: 0,
            write: false,
        }); // evicted by now
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = ops;
        let stats = run(&cfg, &tree, &prog);
        assert_eq!(stats.l1.hits, 0);
        assert_eq!(stats.l1.misses, 6);
        // Chunk 0 is still in the bigger L2 → refetch hits L2.
        assert_eq!(stats.l2.hits, 1);
    }

    #[test]
    fn dirty_writeback_reaches_disk() {
        let (mut cfg, _) = tiny();
        // Shrink every level to 1 chunk so a dirty chunk is forced all
        // the way to disk.
        cfg.client_cache_chunks = 1;
        cfg.io_cache_chunks = 1;
        cfg.storage_cache_chunks = 1;
        let tree = HierarchyTree::from_config(&cfg).unwrap();
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![
            ClientOp::Access {
                chunk: 0,
                write: true,
            },
            ClientOp::Access {
                chunk: 1,
                write: true,
            },
            ClientOp::Access {
                chunk: 2,
                write: true,
            },
            ClientOp::Access {
                chunk: 3,
                write: true,
            },
        ];
        let stats = run(&cfg, &tree, &prog);
        assert!(stats.disk_writes >= 1, "dirty evictions must reach disk");
    }

    #[test]
    fn signal_wait_orders_clients() {
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![
            ClientOp::Compute { ns: 1_000_000 },
            ClientOp::Signal { token: 7 },
        ];
        prog.per_client[1] = vec![ClientOp::Wait { token: 7 }, ClientOp::Compute { ns: 10 }];
        let stats = run(&cfg, &tree, &prog);
        // Client 1 cannot finish before client 0's signal at 1ms+sync.
        assert!(stats.per_client_finish_ns[1] >= 1_000_000 + cfg.sync_ns);
    }

    #[test]
    fn wait_after_signal_does_not_park() {
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![ClientOp::Signal { token: 1 }];
        prog.per_client[1] = vec![
            ClientOp::Compute { ns: 5_000_000 },
            ClientOp::Wait { token: 1 },
        ];
        let stats = run(&cfg, &tree, &prog);
        assert!(stats.per_client_finish_ns[1] >= 5_000_000);
    }

    #[test]
    fn missing_signal_is_a_deadlock_error() {
        // Changed from a `should_panic` test: the engine now reports the
        // deadlock as a typed error instead of panicking.
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![ClientOp::Wait { token: 99 }];
        let err = Engine::new(&cfg, &tree).unwrap().run(&prog).unwrap_err();
        assert_eq!(err, EngineError::Deadlock { waiting: vec![0] });
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn duplicate_signal_is_an_error() {
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![ClientOp::Signal { token: 3 }, ClientOp::Signal { token: 3 }];
        let err = Engine::new(&cfg, &tree).unwrap().run(&prog).unwrap_err();
        assert_eq!(err, EngineError::DuplicateSignal { token: 3 });
    }

    #[test]
    fn program_size_mismatch_is_an_error() {
        let (cfg, tree) = tiny();
        let prog = MappedProgram::new(cfg.num_clients + 1);
        let err = Engine::new(&cfg, &tree).unwrap().run(&prog).unwrap_err();
        assert!(matches!(err, EngineError::ProgramMismatch { .. }));
    }

    #[test]
    fn deterministic_across_runs() {
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        for c in 0..cfg.num_clients {
            let ops: Vec<ClientOp> = (0..50)
                .map(|i| ClientOp::Access {
                    chunk: (c * 13 + i * 7) % 40,
                    write: i % 4 == 0,
                })
                .collect();
            prog.per_client[c] = ops;
        }
        let s1 = run(&cfg, &tree, &prog);
        let s2 = run(&cfg, &tree, &prog);
        assert_eq!(s1.per_client_finish_ns, s2.per_client_finish_ns);
        assert_eq!(s1.l1, s2.l1);
        assert_eq!(s1.l2, s2.l2);
        assert_eq!(s1.l3, s2.l3);
        assert_eq!(s1.disk_reads, s2.disk_reads);
    }

    #[test]
    fn contention_serializes_shared_l2() {
        let (cfg, tree) = tiny();
        // Both clients hammer the same I/O node simultaneously; their
        // L2 service must serialize, so at least one finishes later than
        // it would alone.
        let mk = |chunks: std::ops::Range<usize>| -> Vec<ClientOp> {
            chunks
                .map(|chunk| ClientOp::Access {
                    chunk,
                    write: false,
                })
                .collect()
        };
        let mut solo = MappedProgram::new(cfg.num_clients);
        solo.per_client[0] = mk(0..20);
        let solo_stats = run(&cfg, &tree, &solo);

        let mut both = MappedProgram::new(cfg.num_clients);
        both.per_client[0] = mk(0..20);
        both.per_client[1] = mk(100..120);
        let both_stats = run(&cfg, &tree, &both);

        assert!(
            both_stats.per_client_finish_ns[0] >= solo_stats.per_client_finish_ns[0],
            "contention should never speed a client up"
        );
    }

    #[test]
    fn accesses_per_client_counts() {
        let mut prog = MappedProgram::new(2);
        prog.per_client[0] = vec![
            ClientOp::Compute { ns: 5 },
            ClientOp::Access {
                chunk: 0,
                write: false,
            },
        ];
        prog.per_client[1] = vec![ClientOp::Access {
            chunk: 1,
            write: true,
        }];
        assert_eq!(prog.total_accesses(), 2);
        assert_eq!(prog.accesses_per_client(), vec![1, 1]);
    }

    #[test]
    fn snapshot_round_trip_makes_the_next_run_warm() {
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![ClientOp::Access {
            chunk: 3,
            write: true,
        }];
        let (cold, snap) = Engine::new(&cfg, &tree)
            .unwrap()
            .run_with_snapshot(&prog)
            .unwrap();
        assert_eq!(cold.l1.misses, 1);
        assert_eq!(cold.disk_reads, 1);
        assert!(snap.resident_lines() >= 3, "line resident at every level");
        assert!(snap.l1[0].contains(&3));

        // Resuming from the snapshot hits in L1 immediately: the dirty
        // flag was flushed at the boundary but residency survived.
        let (warm, again) = Engine::new(&cfg, &tree)
            .unwrap()
            .with_cache_snapshot(snap.clone())
            .run_with_snapshot(&prog)
            .unwrap();
        assert_eq!(warm.l1.hits, 1);
        assert_eq!(warm.l1.misses, 0);
        assert_eq!(warm.disk_reads, 0);
        assert!(warm.per_client_finish_ns[0] < cold.per_client_finish_ns[0]);
        assert_eq!(again, snap, "residency is stable across a warm replay");
    }

    #[test]
    fn snapshot_seeding_leaves_stats_untouched() {
        let (cfg, tree) = tiny();
        let snap = CacheSnapshot {
            l2: vec![vec![1, 2, 3], vec![]],
            ..Default::default()
        };
        let prog = MappedProgram::new(cfg.num_clients);
        let (stats, out) = Engine::new(&cfg, &tree)
            .unwrap()
            .with_cache_snapshot(snap)
            .run_with_snapshot(&prog)
            .unwrap();
        assert_eq!(stats.l2.accesses(), 0, "seeding is not an access");
        assert_eq!(out.l2[0], vec![1, 2, 3]);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::faults::TransientFaults;

    fn tiny() -> (PlatformConfig, HierarchyTree) {
        let cfg = PlatformConfig::tiny();
        let tree = HierarchyTree::from_config(&cfg).unwrap();
        (cfg, tree)
    }

    /// A 4-client workload with enough misses to exercise every level.
    fn workload(cfg: &PlatformConfig) -> MappedProgram {
        let mut prog = MappedProgram::new(cfg.num_clients);
        for c in 0..cfg.num_clients {
            prog.per_client[c] = (0..60)
                .map(|i| ClientOp::Access {
                    chunk: (c * 17 + i * 5) % 48,
                    write: i % 3 == 0,
                })
                .collect();
        }
        prog
    }

    fn run_with(
        cfg: &PlatformConfig,
        tree: &HierarchyTree,
        prog: &MappedProgram,
        plan: &FaultPlan,
    ) -> RunStats {
        Engine::new(cfg, tree)
            .unwrap()
            .with_fault_plan(plan)
            .unwrap()
            .run(prog)
            .unwrap()
    }

    #[test]
    fn empty_plan_is_bit_identical_to_no_plan() {
        let (cfg, tree) = tiny();
        let prog = workload(&cfg);
        let clean = Engine::new(&cfg, &tree).unwrap().run(&prog).unwrap();
        let with_empty = run_with(&cfg, &tree, &prog, &FaultPlan::new());
        assert_eq!(clean.per_client_finish_ns, with_empty.per_client_finish_ns);
        assert_eq!(clean.per_client_io_ns, with_empty.per_client_io_ns);
        assert_eq!(clean.l1, with_empty.l1);
        assert_eq!(clean.l2, with_empty.l2);
        assert_eq!(clean.l3, with_empty.l3);
        assert_eq!(clean.disk_reads, with_empty.disk_reads);
        assert_eq!(clean.faults, with_empty.faults);
    }

    #[test]
    fn io_crash_mid_run_fails_over_and_completes() {
        let (cfg, tree) = tiny();
        let prog = workload(&cfg);
        let clean = Engine::new(&cfg, &tree).unwrap().run(&prog).unwrap();
        // Crash I/O node 0 halfway through the clean run.
        let mid = clean.per_client_finish_ns.iter().max().copied().unwrap() / 2;
        let plan = FaultPlan::new().with_event(FaultEvent::IoNodeCrash { io: 0, at_ns: mid });
        let faulty = run_with(&cfg, &tree, &prog, &plan);
        assert_eq!(faulty.faults.crashed_io_nodes, 1);
        assert!(faulty.faults.failovers > 0, "clients 0/1 must fail over");
        assert!(faulty.faults.recovery_ns > 0);
        // Failover routing costs time: the run must not get faster.
        let clean_end = clean.per_client_finish_ns.iter().max().unwrap();
        let faulty_end = faulty.per_client_finish_ns.iter().max().unwrap();
        assert!(faulty_end >= clean_end);
        // All accesses still complete.
        assert_eq!(faulty.l1.accesses(), clean.l1.accesses());
    }

    #[test]
    fn io_crash_with_no_sibling_goes_direct_to_storage() {
        // tiny() has 2 I/O nodes under 1 storage node: crash both and
        // every post-crash miss must go direct-to-storage.
        let (cfg, tree) = tiny();
        let prog = workload(&cfg);
        let plan = FaultPlan::new()
            .with_event(FaultEvent::IoNodeCrash { io: 0, at_ns: 0 })
            .with_event(FaultEvent::IoNodeCrash { io: 1, at_ns: 0 });
        let faulty = run_with(&cfg, &tree, &prog, &plan);
        assert_eq!(faulty.faults.crashed_io_nodes, 2);
        assert_eq!(faulty.l2.accesses(), 0, "no surviving L2 to access");
        assert!(faulty.faults.failovers > 0);
        assert_eq!(
            faulty.l1.accesses(),
            prog.total_accesses(),
            "the run must still complete every access"
        );
    }

    #[test]
    fn storage_crash_loses_dirty_chunks_and_streams_from_disk() {
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        // Fill L3 with dirty chunks (small L1/L2 push dirty data down),
        // then crash the storage node and read more.
        prog.per_client[0] = (0..32)
            .map(|i| ClientOp::Access {
                chunk: i,
                write: true,
            })
            .collect();
        prog.per_client[1] = vec![
            ClientOp::Compute { ns: u64::MAX / 2 }, // after the crash below
            ClientOp::Access {
                chunk: 40,
                write: false,
            },
        ];
        let plan = FaultPlan::new().with_event(FaultEvent::StorageNodeCrash {
            storage: 0,
            at_ns: u64::MAX / 4,
        });
        let faulty = run_with(&cfg, &tree, &prog, &plan);
        assert_eq!(faulty.faults.crashed_storage_nodes, 1);
        assert!(
            faulty.faults.lost_dirty_chunks > 0,
            "dirty L3 residents must be counted as lost"
        );
        assert!(faulty.faults.failovers > 0, "post-crash reads bypass L3");
    }

    #[test]
    fn property_lost_dirty_l2_lines_refetched_from_storage_exactly_once() {
        // Randomized property: after an I/O-node crash and sibling
        // failover, every dirty L2 line lost in the crash is re-fetched
        // from the storage level exactly once (the refetch re-populates
        // the survivors' caches, so later uses hit), and the counters
        // reconcile — every dirty line the client pushed into L2 either
        // left as an L2 writeback or was counted lost at the crash.
        let mut rng = XorShift64::new(0xD117_CACE);
        for round in 0..12 {
            // L1 of one chunk forces every dirty write down into L2;
            // large L2/L3 keep the lost set fully under our control.
            let cfg = PlatformConfig::tiny().with_cache_chunks(1, 64, 64);
            let tree = HierarchyTree::from_config(&cfg).unwrap();
            let k = rng.usize_in(1, 9);
            let client = rng.usize_in(0, cfg.num_clients);
            let crashed_io = tree.io_of_client(client);
            let mut ids = std::collections::BTreeSet::new();
            while ids.len() < 2 * k {
                ids.insert(rng.usize_in(0, 1000));
            }
            let ids: Vec<usize> = ids.into_iter().collect();
            let (dirty, fillers) = ids.split_at(k);

            let mut prog = MappedProgram::new(cfg.num_clients);
            let ops = &mut prog.per_client[client];
            for i in 0..k {
                // Write the dirty chunk, then read a filler: the one-line
                // L1 evicts the dirty chunk into L2 immediately.
                ops.push(ClientOp::Access {
                    chunk: dirty[i],
                    write: true,
                });
                ops.push(ClientOp::Access {
                    chunk: fillers[i],
                    write: false,
                });
            }
            // Idle past the crash, then read every lost chunk twice.
            let crash_ns = 1u64 << 39; // far beyond the write phase
            ops.push(ClientOp::Compute { ns: 1 << 40 });
            for pass in 0..2 {
                let _ = pass;
                for &d in dirty {
                    ops.push(ClientOp::Access {
                        chunk: d,
                        write: false,
                    });
                }
            }

            let plan = FaultPlan::new().with_event(FaultEvent::IoNodeCrash {
                io: crashed_io,
                at_ns: crash_ns,
            });
            let (stats, trace) = Engine::new(&cfg, &tree)
                .unwrap()
                .with_fault_plan(&plan)
                .unwrap()
                .run_traced(&prog)
                .unwrap();

            assert_eq!(stats.faults.crashed_io_nodes, 1, "round {round}");
            assert!(
                stats.faults.failovers > 0,
                "round {round}: sibling took over"
            );
            assert_eq!(
                stats.faults.lost_dirty_chunks, k as u64,
                "round {round}: exactly the {k} dirty lines are lost"
            );
            // Reconciliation: dirty lines entering L2 (L1 writebacks) ==
            // dirty lines leaving L2 (writebacks) + lines lost in the crash.
            assert_eq!(
                stats.l1_evictions.writebacks,
                stats.l2_evictions.writebacks + stats.faults.lost_dirty_chunks,
                "round {round}: dirty-line conservation at L2"
            );
            for &d in dirty {
                let post: Vec<&TraceEvent> = trace
                    .events
                    .iter()
                    .filter(|e| e.chunk == d && e.time_ns >= crash_ns)
                    .collect();
                assert_eq!(post.len(), 2, "round {round}: chunk {d} read twice");
                assert!(
                    matches!(post[0].served_by, ServedBy::L3 | ServedBy::Disk),
                    "round {round}: first post-crash use of lost chunk {d} must \
                     re-fetch from storage, got {:?}",
                    post[0].served_by
                );
                assert!(
                    matches!(post[1].served_by, ServedBy::L1 | ServedBy::L2),
                    "round {round}: second use of chunk {d} must hit a survivor \
                     cache (re-fetched once, not twice), got {:?}",
                    post[1].served_by
                );
            }
        }
    }

    #[test]
    fn disk_degrade_slows_the_run() {
        let (cfg, tree) = tiny();
        // Single client: the access order cannot re-interleave, so the
        // degraded run differs from the clean one only in timing.
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = (0..60)
            .map(|i| ClientOp::Access {
                chunk: (i * 5) % 48,
                write: i % 3 == 0,
            })
            .collect();
        let clean = Engine::new(&cfg, &tree).unwrap().run(&prog).unwrap();
        let plan = FaultPlan::new().with_event(FaultEvent::DiskDegrade {
            storage: 0,
            at_ns: 0,
            latency_factor: 8,
        });
        let slow = run_with(&cfg, &tree, &prog, &plan);
        assert!(
            slow.per_client_finish_ns.iter().max() > clean.per_client_finish_ns.iter().max(),
            "8x slower disks must lengthen the run"
        );
        assert_eq!(slow.disk_reads, clean.disk_reads, "same access pattern");
    }

    #[test]
    fn cache_degrade_shrinks_capacity_and_costs_hits() {
        let (cfg, tree) = tiny();
        let prog = workload(&cfg);
        let clean = Engine::new(&cfg, &tree).unwrap().run(&prog).unwrap();
        let plan = FaultPlan::new().with_event(FaultEvent::CacheDegrade {
            level: DegradeLevel::Storage,
            node: 0,
            at_ns: 0,
            capacity_chunks: 1,
        });
        let degraded = run_with(&cfg, &tree, &prog, &plan);
        assert!(
            degraded.l3.hits <= clean.l3.hits,
            "a 1-chunk L3 cannot hit more than the full one"
        );
        assert!(degraded.disk_reads >= clean.disk_reads);
    }

    #[test]
    fn transient_errors_retry_and_charge_time() {
        let (cfg, tree) = tiny();
        let prog = workload(&cfg);
        let clean = Engine::new(&cfg, &tree).unwrap().run(&prog).unwrap();
        let plan = FaultPlan::new().with_transient(TransientFaults {
            rate_ppm: 200_000, // 20% per remote attempt: plenty of retries
            seed: 7,
        });
        let faulty = run_with(&cfg, &tree, &prog, &plan);
        assert!(faulty.faults.transient_errors > 0);
        assert_eq!(faulty.faults.retries, faulty.faults.transient_errors);
        assert!(faulty.faults.retry_backoff_ns > 0);
        // Retries only ever add simulated time.
        assert!(
            faulty.per_client_finish_ns.iter().max() >= clean.per_client_finish_ns.iter().max()
        );
        // Hit/miss behaviour is unchanged: retries delay, they don't
        // change what is fetched.
        assert_eq!(faulty.l1, clean.l1);
        assert_eq!(faulty.disk_reads, clean.disk_reads);
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let (cfg, tree) = tiny();
        let prog = workload(&cfg);
        let plan = FaultPlan::new()
            .with_event(FaultEvent::IoNodeCrash {
                io: 0,
                at_ns: 100_000,
            })
            .with_event(FaultEvent::DiskDegrade {
                storage: 0,
                at_ns: 50_000,
                latency_factor: 3,
            })
            .with_transient(TransientFaults {
                rate_ppm: 50_000,
                seed: 99,
            });
        let a = run_with(&cfg, &tree, &prog, &plan);
        let b = run_with(&cfg, &tree, &prog, &plan);
        assert_eq!(a.per_client_finish_ns, b.per_client_finish_ns);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.l1, b.l1);
        assert_eq!(a.l2, b.l2);
        assert_eq!(a.disk_reads, b.disk_reads);
    }

    #[test]
    fn invalid_plan_is_rejected_at_attach() {
        let (cfg, tree) = tiny();
        let plan = FaultPlan::new().with_event(FaultEvent::IoNodeCrash { io: 99, at_ns: 0 });
        let err = Engine::new(&cfg, &tree)
            .unwrap()
            .with_fault_plan(&plan)
            .err()
            .expect("out-of-range io must be rejected");
        assert!(matches!(err, EngineError::Fault(_)));
    }

    #[test]
    fn crash_at_start_drains_seeded_snapshot_state() {
        // A node already dead when the epoch starts must not serve hits
        // from carried-over residency: the crash event re-fires at the
        // first tick and drains the seeded (clean) lines.
        let (cfg, tree) = tiny();
        let plan = FaultPlan::new().with_event(FaultEvent::IoNodeCrash { io: 0, at_ns: 0 });
        let snap = CacheSnapshot {
            l2: vec![vec![3], vec![]],
            ..Default::default()
        };
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![ClientOp::Access {
            chunk: 3,
            write: false,
        }];
        let stats = Engine::new(&cfg, &tree)
            .unwrap()
            .with_fault_plan(&plan)
            .unwrap()
            .with_cache_snapshot(snap)
            .run(&prog)
            .unwrap();
        assert_eq!(stats.l2.hits, 0, "dead node must not serve seeded lines");
        assert_eq!(stats.disk_reads, 1);
        assert!(stats.faults.failovers >= 1);
        assert_eq!(
            stats.faults.lost_dirty_chunks, 0,
            "seeded residency is clean, so nothing is lost"
        );
    }
}

#[cfg(test)]
mod trace_prefetch_tests {
    use super::*;
    use crate::trace::ServedBy;

    fn tiny() -> (PlatformConfig, HierarchyTree) {
        let cfg = PlatformConfig::tiny();
        let tree = HierarchyTree::from_config(&cfg).unwrap();
        (cfg, tree)
    }

    #[test]
    fn traced_run_matches_untraced_and_labels_levels() {
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![
            ClientOp::Access {
                chunk: 1,
                write: false,
            }, // disk
            ClientOp::Access {
                chunk: 1,
                write: false,
            }, // L1 hit
        ];
        let plain = Engine::new(&cfg, &tree).unwrap().run(&prog).unwrap();
        let (stats, trace) = Engine::new(&cfg, &tree).unwrap().run_traced(&prog).unwrap();
        assert_eq!(plain.per_client_finish_ns, stats.per_client_finish_ns);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.events[0].served_by, ServedBy::Disk);
        assert_eq!(trace.events[1].served_by, ServedBy::L1);
        assert!(trace.events[0].time_ns <= trace.events[1].time_ns);
    }

    #[test]
    fn trace_reuse_profile_connects_to_hits() {
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = (0..20)
            .map(|i| ClientOp::Access {
                chunk: i % 5,
                write: false,
            })
            .collect();
        let (stats, trace) = Engine::new(&cfg, &tree).unwrap().run_traced(&prog).unwrap();
        let profile = trace.client_reuse_profile(0);
        // L1 holds 4 chunks; Mattson predicts its hits exactly for a
        // single-client run.
        assert_eq!(
            profile.hits_at_capacity(cfg.client_cache_chunks),
            stats.l1.hits
        );
    }

    #[test]
    fn readahead_prefetches_sequential_spindle_chunks() {
        let (mut cfg, _) = tiny();
        cfg.readahead_chunks = 2;
        let tree = HierarchyTree::from_config(&cfg).unwrap();
        // tiny(): 1 storage node × 4 spindles → stride 4. Touch chunk 0,
        // then its spindle successors 4 and 8 should be L3 hits.
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![
            ClientOp::Access {
                chunk: 0,
                write: false,
            },
            ClientOp::Access {
                chunk: 4,
                write: false,
            },
            ClientOp::Access {
                chunk: 8,
                write: false,
            },
        ];
        let stats = Engine::new(&cfg, &tree).unwrap().run(&prog).unwrap();
        assert_eq!(stats.prefetched_chunks, 2);
        assert_eq!(stats.l3.hits, 2, "prefetched chunks must hit in L3");
        assert_eq!(stats.disk_reads, 3, "demand read + two prefetch reads");
    }

    #[test]
    fn readahead_stops_at_program_footprint() {
        let (mut cfg, _) = tiny();
        cfg.readahead_chunks = 8;
        let tree = HierarchyTree::from_config(&cfg).unwrap();
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![ClientOp::Access {
            chunk: 0,
            write: false,
        }];
        let stats = Engine::new(&cfg, &tree).unwrap().run(&prog).unwrap();
        assert_eq!(
            stats.prefetched_chunks, 0,
            "nothing beyond the program's highest chunk may be prefetched"
        );
    }

    #[test]
    fn readahead_off_by_default() {
        let (cfg, tree) = tiny();
        let mut prog = MappedProgram::new(cfg.num_clients);
        prog.per_client[0] = vec![ClientOp::Access {
            chunk: 0,
            write: false,
        }];
        let stats = Engine::new(&cfg, &tree).unwrap().run(&prog).unwrap();
        assert_eq!(stats.prefetched_chunks, 0);
    }
}
