//! Chunk-granularity storage caches with pluggable replacement.
//!
//! "These storage caches are managed using the LRU policy" (Section 5.1).
//! The unit of management is one data chunk (= stripe size). Caches are
//! write-allocate / write-back: a write to a cached chunk marks it dirty,
//! and evicting a dirty chunk surfaces it to the caller so the simulator
//! can charge the write-back to the next level.
//!
//! The paper also notes its approach "can work with any storage caching
//! policy"; FIFO and LFU variants are provided for that ablation.

use crate::config::PolicyKind;
use cachemap_util::stats::HitMiss;
use cachemap_util::FxHashMap;

/// A chunk identifier (global data-space numbering).
pub type Chunk = usize;

/// Result of inserting a chunk into a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// There was room (or the chunk was already resident).
    Inserted,
    /// A clean chunk was evicted to make room.
    EvictedClean(Chunk),
    /// A dirty chunk was evicted; the caller must write it back.
    EvictedDirty(Chunk),
}

/// A chunk cache with some replacement policy.
pub trait ChunkCache {
    /// Looks up a chunk, updating recency/frequency metadata.
    /// Returns `true` on hit. On a write hit the chunk is marked dirty.
    fn access(&mut self, chunk: Chunk, write: bool) -> bool;

    /// Inserts a chunk (after a miss was serviced), possibly evicting.
    /// `dirty` marks the newly inserted chunk (write-allocate of a write
    /// miss).
    fn insert(&mut self, chunk: Chunk, dirty: bool) -> InsertOutcome;

    /// True if the chunk is resident (no metadata update).
    fn contains(&self, chunk: Chunk) -> bool;

    /// Number of resident chunks.
    fn len(&self) -> usize;

    /// True if nothing is resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capacity in chunks.
    fn capacity(&self) -> usize;

    /// Hit/miss statistics accumulated by `access`.
    fn stats(&self) -> HitMiss;

    /// Drops all residents and statistics.
    fn reset(&mut self);

    /// Removes every resident chunk (statistics are kept), returning the
    /// former residents as `(chunk, dirty)` pairs in eviction order.
    /// Used by fault injection to model a crashed node losing its cache.
    fn drain(&mut self) -> Vec<(Chunk, bool)>;

    /// Changes the capacity, evicting in policy order until the
    /// residents fit; returns the evicted `(chunk, dirty)` pairs. A
    /// capacity of zero is clamped to one (caches are never empty by
    /// construction; see [`FaultPlan`](crate::faults::FaultPlan)
    /// validation).
    fn set_capacity(&mut self, capacity: usize) -> Vec<(Chunk, bool)>;
}

/// Builds a cache of the configured policy kind.
pub fn build_cache(policy: PolicyKind, capacity: usize) -> Box<dyn ChunkCache + Send> {
    match policy {
        PolicyKind::Lru => Box::new(LruCache::new(capacity)),
        PolicyKind::Fifo => Box::new(FifoCache::new(capacity)),
        PolicyKind::Lfu => Box::new(LfuCache::new(capacity)),
    }
}

// ---------------------------------------------------------------------------
// LRU
// ---------------------------------------------------------------------------

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct LruEntry {
    chunk: Chunk,
    dirty: bool,
    prev: usize,
    next: usize,
}

/// Least-recently-used cache: a slab of entries threaded on an intrusive
/// doubly-linked list (head = most recent, tail = LRU victim), with an
/// `FxHashMap` chunk → slot index. All operations are O(1).
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: usize,
    slots: Vec<LruEntry>,
    free: Vec<usize>,
    index: FxHashMap<Chunk, usize>,
    head: usize,
    tail: usize,
    stats: HitMiss,
}

impl LruCache {
    /// Creates an empty cache with the given capacity in chunks.
    ///
    /// # Panics
    /// Panics if capacity is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            capacity,
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            index: FxHashMap::default(),
            head: NIL,
            tail: NIL,
            stats: HitMiss::default(),
        }
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Evicts the least-recently-used entry; `None` on an empty cache.
    fn evict_lru(&mut self) -> Option<(Chunk, bool)> {
        let victim = self.tail;
        if victim == NIL {
            return None;
        }
        self.detach(victim);
        let chunk = self.slots[victim].chunk;
        let dirty = self.slots[victim].dirty;
        self.index.remove(&chunk);
        self.free.push(victim);
        Some((chunk, dirty))
    }
}

impl ChunkCache for LruCache {
    fn access(&mut self, chunk: Chunk, write: bool) -> bool {
        if let Some(&slot) = self.index.get(&chunk) {
            self.detach(slot);
            self.attach_front(slot);
            if write {
                self.slots[slot].dirty = true;
            }
            self.stats.hit();
            true
        } else {
            self.stats.miss();
            false
        }
    }

    fn insert(&mut self, chunk: Chunk, dirty: bool) -> InsertOutcome {
        if let Some(&slot) = self.index.get(&chunk) {
            // Already resident: refresh recency, merge dirty bit.
            self.detach(slot);
            self.attach_front(slot);
            self.slots[slot].dirty |= dirty;
            return InsertOutcome::Inserted;
        }
        let mut outcome = InsertOutcome::Inserted;
        if self.index.len() == self.capacity {
            // Invariant: capacity > 0, so a full cache has a victim.
            if let Some((victim, was_dirty)) = self.evict_lru() {
                outcome = if was_dirty {
                    InsertOutcome::EvictedDirty(victim)
                } else {
                    InsertOutcome::EvictedClean(victim)
                };
            }
        }
        let slot = if let Some(s) = self.free.pop() {
            self.slots[s] = LruEntry {
                chunk,
                dirty,
                prev: NIL,
                next: NIL,
            };
            s
        } else {
            self.slots.push(LruEntry {
                chunk,
                dirty,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        };
        self.index.insert(chunk, slot);
        self.attach_front(slot);
        outcome
    }

    fn contains(&self, chunk: Chunk) -> bool {
        self.index.contains_key(&chunk)
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> HitMiss {
        self.stats
    }

    fn reset(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.index.clear();
        self.head = NIL;
        self.tail = NIL;
        self.stats = HitMiss::default();
    }

    fn drain(&mut self) -> Vec<(Chunk, bool)> {
        let mut out = Vec::with_capacity(self.index.len());
        while let Some(entry) = self.evict_lru() {
            out.push(entry);
        }
        out
    }

    fn set_capacity(&mut self, capacity: usize) -> Vec<(Chunk, bool)> {
        self.capacity = capacity.max(1);
        let mut out = Vec::new();
        while self.index.len() > self.capacity {
            if let Some(entry) = self.evict_lru() {
                out.push(entry);
            } else {
                break;
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// FIFO
// ---------------------------------------------------------------------------

/// First-in-first-out cache (ablation): eviction order is insertion
/// order; `access` does not change the order.
#[derive(Debug, Clone)]
pub struct FifoCache {
    capacity: usize,
    queue: std::collections::VecDeque<Chunk>,
    dirty: FxHashMap<Chunk, bool>,
    stats: HitMiss,
}

impl FifoCache {
    /// Creates an empty FIFO cache.
    ///
    /// # Panics
    /// Panics if capacity is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        FifoCache {
            capacity,
            queue: std::collections::VecDeque::with_capacity(capacity),
            dirty: FxHashMap::default(),
            stats: HitMiss::default(),
        }
    }
}

impl ChunkCache for FifoCache {
    fn access(&mut self, chunk: Chunk, write: bool) -> bool {
        if let Some(d) = self.dirty.get_mut(&chunk) {
            *d |= write;
            self.stats.hit();
            true
        } else {
            self.stats.miss();
            false
        }
    }

    fn insert(&mut self, chunk: Chunk, dirty: bool) -> InsertOutcome {
        if let Some(d) = self.dirty.get_mut(&chunk) {
            *d |= dirty;
            return InsertOutcome::Inserted;
        }
        let mut outcome = InsertOutcome::Inserted;
        if self.dirty.len() == self.capacity {
            // Invariant: capacity > 0, so a full cache has a queued victim.
            if let Some(victim) = self.queue.pop_front() {
                let was_dirty = self.dirty.remove(&victim).unwrap_or(false);
                outcome = if was_dirty {
                    InsertOutcome::EvictedDirty(victim)
                } else {
                    InsertOutcome::EvictedClean(victim)
                };
            }
        }
        self.queue.push_back(chunk);
        self.dirty.insert(chunk, dirty);
        outcome
    }

    fn contains(&self, chunk: Chunk) -> bool {
        self.dirty.contains_key(&chunk)
    }

    fn len(&self) -> usize {
        self.dirty.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> HitMiss {
        self.stats
    }

    fn reset(&mut self) {
        self.queue.clear();
        self.dirty.clear();
        self.stats = HitMiss::default();
    }

    fn drain(&mut self) -> Vec<(Chunk, bool)> {
        let mut out = Vec::with_capacity(self.dirty.len());
        while let Some(victim) = self.queue.pop_front() {
            let was_dirty = self.dirty.remove(&victim).unwrap_or(false);
            out.push((victim, was_dirty));
        }
        out
    }

    fn set_capacity(&mut self, capacity: usize) -> Vec<(Chunk, bool)> {
        self.capacity = capacity.max(1);
        let mut out = Vec::new();
        while self.dirty.len() > self.capacity {
            match self.queue.pop_front() {
                Some(victim) => {
                    let was_dirty = self.dirty.remove(&victim).unwrap_or(false);
                    out.push((victim, was_dirty));
                }
                None => break,
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// LFU
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct LfuEntry {
    freq: u64,
    seq: u64, // tie-break: lower sequence = older = evicted first
    dirty: bool,
}

/// Least-frequently-used cache (ablation) with FIFO tie-breaking.
/// Eviction is O(n) in capacity, which is fine for the simulator's cache
/// sizes.
#[derive(Debug, Clone)]
pub struct LfuCache {
    capacity: usize,
    entries: FxHashMap<Chunk, LfuEntry>,
    next_seq: u64,
    stats: HitMiss,
}

impl LfuCache {
    /// Creates an empty LFU cache.
    ///
    /// # Panics
    /// Panics if capacity is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LfuCache {
            capacity,
            entries: FxHashMap::default(),
            next_seq: 0,
            stats: HitMiss::default(),
        }
    }

    /// Evicts the least-frequently-used entry (ties broken by age,
    /// `seq` is unique so the choice is deterministic); `None` on an
    /// empty cache.
    fn evict_lfu(&mut self) -> Option<(Chunk, bool)> {
        let victim = *self
            .entries
            .iter()
            .min_by_key(|(_, e)| (e.freq, e.seq))
            .map(|(c, _)| c)?;
        let e = self.entries.remove(&victim)?;
        Some((victim, e.dirty))
    }
}

impl ChunkCache for LfuCache {
    fn access(&mut self, chunk: Chunk, write: bool) -> bool {
        if let Some(e) = self.entries.get_mut(&chunk) {
            e.freq += 1;
            e.dirty |= write;
            self.stats.hit();
            true
        } else {
            self.stats.miss();
            false
        }
    }

    fn insert(&mut self, chunk: Chunk, dirty: bool) -> InsertOutcome {
        if let Some(e) = self.entries.get_mut(&chunk) {
            e.dirty |= dirty;
            return InsertOutcome::Inserted;
        }
        let mut outcome = InsertOutcome::Inserted;
        if self.entries.len() == self.capacity {
            // Invariant: capacity > 0, so a full cache has a victim.
            if let Some((victim, was_dirty)) = self.evict_lfu() {
                outcome = if was_dirty {
                    InsertOutcome::EvictedDirty(victim)
                } else {
                    InsertOutcome::EvictedClean(victim)
                };
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(
            chunk,
            LfuEntry {
                freq: 1,
                seq,
                dirty,
            },
        );
        outcome
    }

    fn contains(&self, chunk: Chunk) -> bool {
        self.entries.contains_key(&chunk)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> HitMiss {
        self.stats
    }

    fn reset(&mut self) {
        self.entries.clear();
        self.next_seq = 0;
        self.stats = HitMiss::default();
    }

    fn drain(&mut self) -> Vec<(Chunk, bool)> {
        let mut out = Vec::with_capacity(self.entries.len());
        while let Some(entry) = self.evict_lfu() {
            out.push(entry);
        }
        out
    }

    fn set_capacity(&mut self, capacity: usize) -> Vec<(Chunk, bool)> {
        self.capacity = capacity.max(1);
        let mut out = Vec::new();
        while self.entries.len() > self.capacity {
            match self.evict_lfu() {
                Some(entry) => out.push(entry),
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_hits_and_misses() {
        let mut c = LruCache::new(2);
        assert!(!c.access(1, false));
        c.insert(1, false);
        assert!(c.access(1, false));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(2);
        c.insert(1, false);
        c.insert(2, false);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.access(1, false));
        let out = c.insert(3, false);
        assert_eq!(out, InsertOutcome::EvictedClean(2));
        assert!(c.contains(1) && c.contains(3) && !c.contains(2));
    }

    #[test]
    fn lru_dirty_eviction_surfaces_writeback() {
        let mut c = LruCache::new(1);
        c.insert(7, false);
        assert!(c.access(7, true)); // write hit marks dirty
        let out = c.insert(8, false);
        assert_eq!(out, InsertOutcome::EvictedDirty(7));
    }

    #[test]
    fn lru_insert_existing_merges_dirty() {
        let mut c = LruCache::new(2);
        c.insert(1, false);
        c.insert(1, true);
        c.insert(2, false);
        let out = c.insert(3, false); // victim should be 1 (older), dirty
        assert_eq!(out, InsertOutcome::EvictedDirty(1));
    }

    #[test]
    fn lru_never_exceeds_capacity() {
        let mut c = LruCache::new(4);
        for i in 0..100 {
            c.insert(i, i % 3 == 0);
            assert!(c.len() <= 4);
        }
        assert_eq!(c.len(), 4);
        // The last four inserted remain.
        for i in 96..100 {
            assert!(c.contains(i));
        }
    }

    #[test]
    fn lru_reset_clears_everything() {
        let mut c = LruCache::new(2);
        c.insert(1, true);
        c.access(1, false);
        c.reset();
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().accesses(), 0);
        assert!(!c.contains(1));
        // Reusable after reset.
        c.insert(5, false);
        assert!(c.contains(5));
    }

    #[test]
    fn fifo_evicts_insertion_order_despite_access() {
        let mut c = FifoCache::new(2);
        c.insert(1, false);
        c.insert(2, false);
        assert!(c.access(1, false)); // does NOT protect 1 under FIFO
        let out = c.insert(3, false);
        assert_eq!(out, InsertOutcome::EvictedClean(1));
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut c = LfuCache::new(2);
        c.insert(1, false);
        c.insert(2, false);
        c.access(1, false);
        c.access(1, false);
        c.access(2, false);
        let out = c.insert(3, false);
        // 2 has freq 2 (1 insert + 1 access), 1 has freq 3 → evict 2.
        assert_eq!(out, InsertOutcome::EvictedClean(2));
    }

    #[test]
    fn lfu_tie_breaks_by_age() {
        let mut c = LfuCache::new(2);
        c.insert(1, false);
        c.insert(2, false);
        let out = c.insert(3, false); // both freq 1 → evict older (1)
        assert_eq!(out, InsertOutcome::EvictedClean(1));
    }

    #[test]
    fn policy_factory_builds_each_kind() {
        for (kind, cap) in [
            (PolicyKind::Lru, 3),
            (PolicyKind::Fifo, 3),
            (PolicyKind::Lfu, 3),
        ] {
            let mut c = build_cache(kind, cap);
            assert_eq!(c.capacity(), cap);
            c.insert(1, false);
            assert!(c.access(1, false));
            assert!(c.stats().hits >= 1);
        }
    }

    #[test]
    fn drain_surfaces_dirty_residents_and_empties() {
        for kind in [PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::Lfu] {
            let mut c = build_cache(kind, 4);
            c.insert(1, false);
            c.insert(2, true);
            c.insert(3, false);
            let drained = c.drain();
            assert_eq!(drained.len(), 3, "{kind:?}");
            assert_eq!(
                drained.iter().filter(|(_, d)| *d).count(),
                1,
                "{kind:?} must surface the dirty chunk"
            );
            assert!(c.is_empty());
            // Statistics survive a drain (unlike reset).
            assert_eq!(c.stats().misses, 0);
            c.insert(9, false);
            assert!(c.contains(9));
        }
    }

    #[test]
    fn set_capacity_shrinks_in_policy_order() {
        let mut c = LruCache::new(4);
        for i in 0..4 {
            c.insert(i, i == 0); // chunk 0 dirty, and LRU
        }
        let evicted = c.set_capacity(2);
        assert_eq!(evicted, vec![(0, true), (1, false)]);
        assert_eq!(c.capacity(), 2);
        assert_eq!(c.len(), 2);
        assert!(c.contains(2) && c.contains(3));
        // Growing evicts nothing; zero clamps to one.
        assert!(c.set_capacity(8).is_empty());
        let evicted = c.set_capacity(0);
        assert_eq!(c.capacity(), 1);
        assert_eq!(evicted.len(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn set_capacity_all_policies_respect_new_limit() {
        for kind in [PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::Lfu] {
            let mut c = build_cache(kind, 8);
            for i in 0..8 {
                c.insert(i, i % 2 == 0);
            }
            let evicted = c.set_capacity(3);
            assert_eq!(evicted.len(), 5, "{kind:?}");
            assert_eq!(c.len(), 3, "{kind:?}");
            assert_eq!(c.capacity(), 3, "{kind:?}");
            c.insert(100, false);
            assert!(c.len() <= 3, "{kind:?}");
        }
    }

    #[test]
    fn lru_interleaved_stress_is_consistent() {
        // Cross-check the intrusive list against a reference model.
        let mut c = LruCache::new(8);
        let mut model: Vec<Chunk> = Vec::new(); // front = most recent
        for step in 0..2000usize {
            let chunk = (step * 7 + step / 3) % 23;
            let hit = c.access(chunk, false);
            let model_hit = model.contains(&chunk);
            assert_eq!(hit, model_hit, "step {step} chunk {chunk}");
            if hit {
                model.retain(|&x| x != chunk);
                model.insert(0, chunk);
            } else {
                c.insert(chunk, false);
                if model.len() == 8 {
                    model.pop();
                }
                model.insert(0, chunk);
            }
            assert_eq!(c.len(), model.len());
        }
    }
}
