//! Chunk-granularity storage caches with pluggable replacement.
//!
//! "These storage caches are managed using the LRU policy" (Section 5.1).
//! The unit of management is one data chunk (= stripe size). Caches are
//! write-allocate / write-back: a write to a cached chunk marks it dirty,
//! and evicting a dirty chunk surfaces it to the caller so the simulator
//! can charge the write-back to the next level.
//!
//! The paper also notes its approach "can work with any storage caching
//! policy"; FIFO and LFU variants are provided for that ablation.

use crate::config::PolicyKind;
use cachemap_util::stats::HitMiss;
use cachemap_util::FxHashMap;

/// A chunk identifier (global data-space numbering).
pub type Chunk = usize;

/// Result of inserting a chunk into a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// There was room (or the chunk was already resident).
    Inserted,
    /// A clean chunk was evicted to make room.
    EvictedClean(Chunk),
    /// A dirty chunk was evicted; the caller must write it back.
    EvictedDirty(Chunk),
}

/// A chunk cache with some replacement policy.
pub trait ChunkCache {
    /// Looks up a chunk, updating recency/frequency metadata.
    /// Returns `true` on hit. On a write hit the chunk is marked dirty.
    fn access(&mut self, chunk: Chunk, write: bool) -> bool;

    /// Inserts a chunk (after a miss was serviced), possibly evicting.
    /// `dirty` marks the newly inserted chunk (write-allocate of a write
    /// miss).
    fn insert(&mut self, chunk: Chunk, dirty: bool) -> InsertOutcome;

    /// True if the chunk is resident (no metadata update).
    fn contains(&self, chunk: Chunk) -> bool;

    /// Number of resident chunks.
    fn len(&self) -> usize;

    /// True if nothing is resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capacity in chunks.
    fn capacity(&self) -> usize;

    /// Hit/miss statistics accumulated by `access`.
    fn stats(&self) -> HitMiss;

    /// Drops all residents and statistics.
    fn reset(&mut self);

    /// Removes every resident chunk (statistics are kept), returning the
    /// former residents as `(chunk, dirty)` pairs in eviction order.
    /// Used by fault injection to model a crashed node losing its cache.
    fn drain(&mut self) -> Vec<(Chunk, bool)>;

    /// Changes the capacity, evicting in policy order until the
    /// residents fit; returns the evicted `(chunk, dirty)` pairs. A
    /// capacity of zero is clamped to one (caches are never empty by
    /// construction; see [`FaultPlan`](crate::faults::FaultPlan)
    /// validation).
    fn set_capacity(&mut self, capacity: usize) -> Vec<(Chunk, bool)>;
}

/// Builds a cache of the configured policy kind.
pub fn build_cache(policy: PolicyKind, capacity: usize) -> Box<dyn ChunkCache + Send> {
    match policy {
        PolicyKind::Lru => Box::new(LruCache::new(capacity)),
        PolicyKind::Fifo => Box::new(FifoCache::new(capacity)),
        PolicyKind::Lfu => Box::new(LfuCache::new(capacity)),
        PolicyKind::Slru => Box::new(SlruCache::new(capacity)),
        PolicyKind::Lfuda => Box::new(LfudaCache::new(capacity)),
        PolicyKind::Gdsf => Box::new(GdsfCache::new(capacity)),
    }
}

// ---------------------------------------------------------------------------
// LRU
// ---------------------------------------------------------------------------

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct LruEntry {
    chunk: Chunk,
    dirty: bool,
    prev: usize,
    next: usize,
}

/// Least-recently-used cache: a slab of entries threaded on an intrusive
/// doubly-linked list (head = most recent, tail = LRU victim), with an
/// `FxHashMap` chunk → slot index. All operations are O(1).
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: usize,
    slots: Vec<LruEntry>,
    free: Vec<usize>,
    index: FxHashMap<Chunk, usize>,
    head: usize,
    tail: usize,
    stats: HitMiss,
}

impl LruCache {
    /// Creates an empty cache with the given capacity in chunks.
    ///
    /// # Panics
    /// Panics if capacity is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            capacity,
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            index: FxHashMap::default(),
            head: NIL,
            tail: NIL,
            stats: HitMiss::default(),
        }
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Evicts the least-recently-used entry; `None` on an empty cache.
    fn evict_lru(&mut self) -> Option<(Chunk, bool)> {
        let victim = self.tail;
        if victim == NIL {
            return None;
        }
        self.detach(victim);
        let chunk = self.slots[victim].chunk;
        let dirty = self.slots[victim].dirty;
        self.index.remove(&chunk);
        self.free.push(victim);
        Some((chunk, dirty))
    }
}

impl ChunkCache for LruCache {
    fn access(&mut self, chunk: Chunk, write: bool) -> bool {
        if let Some(&slot) = self.index.get(&chunk) {
            self.detach(slot);
            self.attach_front(slot);
            if write {
                self.slots[slot].dirty = true;
            }
            self.stats.hit();
            true
        } else {
            self.stats.miss();
            false
        }
    }

    fn insert(&mut self, chunk: Chunk, dirty: bool) -> InsertOutcome {
        if let Some(&slot) = self.index.get(&chunk) {
            // Already resident: refresh recency, merge dirty bit.
            self.detach(slot);
            self.attach_front(slot);
            self.slots[slot].dirty |= dirty;
            return InsertOutcome::Inserted;
        }
        let mut outcome = InsertOutcome::Inserted;
        if self.index.len() == self.capacity {
            // Invariant: capacity > 0, so a full cache has a victim.
            if let Some((victim, was_dirty)) = self.evict_lru() {
                outcome = if was_dirty {
                    InsertOutcome::EvictedDirty(victim)
                } else {
                    InsertOutcome::EvictedClean(victim)
                };
            }
        }
        let slot = if let Some(s) = self.free.pop() {
            self.slots[s] = LruEntry {
                chunk,
                dirty,
                prev: NIL,
                next: NIL,
            };
            s
        } else {
            self.slots.push(LruEntry {
                chunk,
                dirty,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        };
        self.index.insert(chunk, slot);
        self.attach_front(slot);
        outcome
    }

    fn contains(&self, chunk: Chunk) -> bool {
        self.index.contains_key(&chunk)
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> HitMiss {
        self.stats
    }

    fn reset(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.index.clear();
        self.head = NIL;
        self.tail = NIL;
        self.stats = HitMiss::default();
    }

    fn drain(&mut self) -> Vec<(Chunk, bool)> {
        let mut out = Vec::with_capacity(self.index.len());
        while let Some(entry) = self.evict_lru() {
            out.push(entry);
        }
        out
    }

    fn set_capacity(&mut self, capacity: usize) -> Vec<(Chunk, bool)> {
        self.capacity = capacity.max(1);
        let mut out = Vec::new();
        while self.index.len() > self.capacity {
            if let Some(entry) = self.evict_lru() {
                out.push(entry);
            } else {
                break;
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// FIFO
// ---------------------------------------------------------------------------

/// First-in-first-out cache (ablation): eviction order is insertion
/// order; `access` does not change the order.
#[derive(Debug, Clone)]
pub struct FifoCache {
    capacity: usize,
    queue: std::collections::VecDeque<Chunk>,
    dirty: FxHashMap<Chunk, bool>,
    stats: HitMiss,
}

impl FifoCache {
    /// Creates an empty FIFO cache.
    ///
    /// # Panics
    /// Panics if capacity is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        FifoCache {
            capacity,
            queue: std::collections::VecDeque::with_capacity(capacity),
            dirty: FxHashMap::default(),
            stats: HitMiss::default(),
        }
    }
}

impl ChunkCache for FifoCache {
    fn access(&mut self, chunk: Chunk, write: bool) -> bool {
        if let Some(d) = self.dirty.get_mut(&chunk) {
            *d |= write;
            self.stats.hit();
            true
        } else {
            self.stats.miss();
            false
        }
    }

    fn insert(&mut self, chunk: Chunk, dirty: bool) -> InsertOutcome {
        if let Some(d) = self.dirty.get_mut(&chunk) {
            *d |= dirty;
            return InsertOutcome::Inserted;
        }
        let mut outcome = InsertOutcome::Inserted;
        if self.dirty.len() == self.capacity {
            // Invariant: capacity > 0, so a full cache has a queued victim.
            if let Some(victim) = self.queue.pop_front() {
                let was_dirty = self.dirty.remove(&victim).unwrap_or(false);
                outcome = if was_dirty {
                    InsertOutcome::EvictedDirty(victim)
                } else {
                    InsertOutcome::EvictedClean(victim)
                };
            }
        }
        self.queue.push_back(chunk);
        self.dirty.insert(chunk, dirty);
        outcome
    }

    fn contains(&self, chunk: Chunk) -> bool {
        self.dirty.contains_key(&chunk)
    }

    fn len(&self) -> usize {
        self.dirty.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> HitMiss {
        self.stats
    }

    fn reset(&mut self) {
        self.queue.clear();
        self.dirty.clear();
        self.stats = HitMiss::default();
    }

    fn drain(&mut self) -> Vec<(Chunk, bool)> {
        let mut out = Vec::with_capacity(self.dirty.len());
        while let Some(victim) = self.queue.pop_front() {
            let was_dirty = self.dirty.remove(&victim).unwrap_or(false);
            out.push((victim, was_dirty));
        }
        out
    }

    fn set_capacity(&mut self, capacity: usize) -> Vec<(Chunk, bool)> {
        self.capacity = capacity.max(1);
        let mut out = Vec::new();
        while self.dirty.len() > self.capacity {
            match self.queue.pop_front() {
                Some(victim) => {
                    let was_dirty = self.dirty.remove(&victim).unwrap_or(false);
                    out.push((victim, was_dirty));
                }
                None => break,
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// LFU
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct LfuEntry {
    freq: u64,
    seq: u64, // tie-break: lower sequence = older = evicted first
    dirty: bool,
}

/// Least-frequently-used cache (ablation) with FIFO tie-breaking.
/// Eviction is O(n) in capacity, which is fine for the simulator's cache
/// sizes.
#[derive(Debug, Clone)]
pub struct LfuCache {
    capacity: usize,
    entries: FxHashMap<Chunk, LfuEntry>,
    next_seq: u64,
    stats: HitMiss,
}

impl LfuCache {
    /// Creates an empty LFU cache.
    ///
    /// # Panics
    /// Panics if capacity is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LfuCache {
            capacity,
            entries: FxHashMap::default(),
            next_seq: 0,
            stats: HitMiss::default(),
        }
    }

    /// Evicts the least-frequently-used entry (ties broken by age,
    /// `seq` is unique so the choice is deterministic); `None` on an
    /// empty cache.
    fn evict_lfu(&mut self) -> Option<(Chunk, bool)> {
        let victim = *self
            .entries
            .iter()
            .min_by_key(|(_, e)| (e.freq, e.seq))
            .map(|(c, _)| c)?;
        let e = self.entries.remove(&victim)?;
        Some((victim, e.dirty))
    }
}

impl ChunkCache for LfuCache {
    fn access(&mut self, chunk: Chunk, write: bool) -> bool {
        if let Some(e) = self.entries.get_mut(&chunk) {
            e.freq += 1;
            e.dirty |= write;
            self.stats.hit();
            true
        } else {
            self.stats.miss();
            false
        }
    }

    fn insert(&mut self, chunk: Chunk, dirty: bool) -> InsertOutcome {
        if let Some(e) = self.entries.get_mut(&chunk) {
            e.dirty |= dirty;
            return InsertOutcome::Inserted;
        }
        let mut outcome = InsertOutcome::Inserted;
        if self.entries.len() == self.capacity {
            // Invariant: capacity > 0, so a full cache has a victim.
            if let Some((victim, was_dirty)) = self.evict_lfu() {
                outcome = if was_dirty {
                    InsertOutcome::EvictedDirty(victim)
                } else {
                    InsertOutcome::EvictedClean(victim)
                };
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(
            chunk,
            LfuEntry {
                freq: 1,
                seq,
                dirty,
            },
        );
        outcome
    }

    fn contains(&self, chunk: Chunk) -> bool {
        self.entries.contains_key(&chunk)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> HitMiss {
        self.stats
    }

    fn reset(&mut self) {
        self.entries.clear();
        self.next_seq = 0;
        self.stats = HitMiss::default();
    }

    fn drain(&mut self) -> Vec<(Chunk, bool)> {
        let mut out = Vec::with_capacity(self.entries.len());
        while let Some(entry) = self.evict_lfu() {
            out.push(entry);
        }
        out
    }

    fn set_capacity(&mut self, capacity: usize) -> Vec<(Chunk, bool)> {
        self.capacity = capacity.max(1);
        let mut out = Vec::new();
        while self.entries.len() > self.capacity {
            match self.evict_lfu() {
                Some(entry) => out.push(entry),
                None => break,
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// SLRU
// ---------------------------------------------------------------------------

/// Which SLRU segment a resident chunk lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Probationary,
    Protected,
}

/// Segmented LRU: new lines enter a probationary segment and only a
/// re-reference promotes them into the protected segment, so a
/// sequential scan (every line touched once) churns the probationary
/// segment while the re-used working set survives in the protected one.
/// Eviction takes the probationary LRU line first, falling back to the
/// protected LRU line only when probation is empty.
///
/// Both segments are plain recency lists (front = MRU); operations are
/// O(n) in capacity, like [`LfuCache`], which is fine at simulator cache
/// sizes.
#[derive(Debug, Clone)]
pub struct SlruCache {
    capacity: usize,
    protected_cap: usize,
    probationary: Vec<Chunk>, // front = most recent
    protected: Vec<Chunk>,    // front = most recent
    index: FxHashMap<Chunk, (Segment, bool)>,
    stats: HitMiss,
}

impl SlruCache {
    /// Protected fraction of the capacity (the classic SLRU default of
    /// roughly 80% protected / 20% probationary).
    fn protected_share(capacity: usize) -> usize {
        capacity * 4 / 5
    }

    /// Creates an empty SLRU cache.
    ///
    /// # Panics
    /// Panics if capacity is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        SlruCache {
            capacity,
            protected_cap: Self::protected_share(capacity),
            probationary: Vec::new(),
            protected: Vec::new(),
            index: FxHashMap::default(),
            stats: HitMiss::default(),
        }
    }

    fn remove_from_list(list: &mut Vec<Chunk>, chunk: Chunk) {
        if let Some(pos) = list.iter().position(|&c| c == chunk) {
            list.remove(pos);
        }
    }

    /// Moves a resident chunk to the protected MRU position, demoting
    /// the protected LRU line back to probation if the segment is over
    /// its share. Residency never changes, so no eviction can fire here.
    fn promote(&mut self, chunk: Chunk) {
        match self.index.get(&chunk).map(|&(seg, _)| seg) {
            Some(Segment::Probationary) => {
                Self::remove_from_list(&mut self.probationary, chunk);
            }
            Some(Segment::Protected) => {
                Self::remove_from_list(&mut self.protected, chunk);
            }
            None => return,
        }
        self.protected.insert(0, chunk);
        if let Some(e) = self.index.get_mut(&chunk) {
            e.0 = Segment::Protected;
        }
        while self.protected.len() > self.protected_cap.max(1) {
            // Demote, never evict: the line gets one more probationary
            // round before a scan can push it out.
            let Some(demoted) = self.protected.pop() else {
                break;
            };
            self.probationary.insert(0, demoted);
            if let Some(e) = self.index.get_mut(&demoted) {
                e.0 = Segment::Probationary;
            }
        }
    }

    /// Evicts in policy order: probationary LRU first, protected LRU
    /// when probation is empty; `None` on an empty cache.
    fn evict_one(&mut self) -> Option<(Chunk, bool)> {
        let victim = self.probationary.pop().or_else(|| self.protected.pop())?;
        let (_, dirty) = self.index.remove(&victim)?;
        Some((victim, dirty))
    }
}

impl ChunkCache for SlruCache {
    fn access(&mut self, chunk: Chunk, write: bool) -> bool {
        if self.index.contains_key(&chunk) {
            self.promote(chunk);
            if write {
                if let Some(e) = self.index.get_mut(&chunk) {
                    e.1 = true;
                }
            }
            self.stats.hit();
            true
        } else {
            self.stats.miss();
            false
        }
    }

    fn insert(&mut self, chunk: Chunk, dirty: bool) -> InsertOutcome {
        if self.index.contains_key(&chunk) {
            // Already resident: a repeat insert counts as a re-reference.
            self.promote(chunk);
            if let Some(e) = self.index.get_mut(&chunk) {
                e.1 |= dirty;
            }
            return InsertOutcome::Inserted;
        }
        let mut outcome = InsertOutcome::Inserted;
        if self.index.len() == self.capacity {
            // Invariant: capacity > 0, so a full cache has a victim.
            if let Some((victim, was_dirty)) = self.evict_one() {
                outcome = if was_dirty {
                    InsertOutcome::EvictedDirty(victim)
                } else {
                    InsertOutcome::EvictedClean(victim)
                };
            }
        }
        self.probationary.insert(0, chunk);
        self.index.insert(chunk, (Segment::Probationary, dirty));
        outcome
    }

    fn contains(&self, chunk: Chunk) -> bool {
        self.index.contains_key(&chunk)
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> HitMiss {
        self.stats
    }

    fn reset(&mut self) {
        self.probationary.clear();
        self.protected.clear();
        self.index.clear();
        self.stats = HitMiss::default();
    }

    fn drain(&mut self) -> Vec<(Chunk, bool)> {
        let mut out = Vec::with_capacity(self.index.len());
        while let Some(entry) = self.evict_one() {
            out.push(entry);
        }
        out
    }

    fn set_capacity(&mut self, capacity: usize) -> Vec<(Chunk, bool)> {
        self.capacity = capacity.max(1);
        self.protected_cap = Self::protected_share(self.capacity);
        let mut out = Vec::new();
        while self.index.len() > self.capacity {
            match self.evict_one() {
                Some(entry) => out.push(entry),
                None => break,
            }
        }
        // A shrunk protected share demotes (not evicts) the overflow.
        while self.protected.len() > self.protected_cap.max(1) && !self.protected.is_empty() {
            let Some(demoted) = self.protected.pop() else {
                break;
            };
            self.probationary.insert(0, demoted);
            if let Some(e) = self.index.get_mut(&demoted) {
                e.0 = Segment::Probationary;
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// LFUDA
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct LfudaEntry {
    hits: u64,
    key: u64, // eviction priority: cache age at last touch + hit count
    seq: u64, // tie-break: lower sequence = older = evicted first
    dirty: bool,
}

/// LFU with Dynamic Aging: each line's priority is its access count plus
/// the cache age, and the age ratchets up to every victim's priority. A
/// once-popular line that stops being touched keeps a frozen priority
/// while the age climbs past it — unlike plain [`LfuCache`], yesterday's
/// hot set cannot block today's forever. Eviction is O(n), as for LFU.
#[derive(Debug, Clone)]
pub struct LfudaCache {
    capacity: usize,
    entries: FxHashMap<Chunk, LfudaEntry>,
    age: u64,
    next_seq: u64,
    stats: HitMiss,
}

impl LfudaCache {
    /// Creates an empty LFUDA cache.
    ///
    /// # Panics
    /// Panics if capacity is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LfudaCache {
            capacity,
            entries: FxHashMap::default(),
            age: 0,
            next_seq: 0,
            stats: HitMiss::default(),
        }
    }

    /// Evicts the minimum-priority entry (ties broken by age, `seq` is
    /// unique so the choice is deterministic) and ratchets the cache age
    /// to the victim's priority; `None` on an empty cache.
    fn evict_min(&mut self) -> Option<(Chunk, bool)> {
        let victim = *self
            .entries
            .iter()
            .min_by_key(|(_, e)| (e.key, e.seq))
            .map(|(c, _)| c)?;
        let e = self.entries.remove(&victim)?;
        self.age = self.age.max(e.key);
        Some((victim, e.dirty))
    }
}

impl ChunkCache for LfudaCache {
    fn access(&mut self, chunk: Chunk, write: bool) -> bool {
        let age = self.age;
        if let Some(e) = self.entries.get_mut(&chunk) {
            e.hits += 1;
            e.key = age + e.hits;
            e.dirty |= write;
            self.stats.hit();
            true
        } else {
            self.stats.miss();
            false
        }
    }

    fn insert(&mut self, chunk: Chunk, dirty: bool) -> InsertOutcome {
        let age = self.age;
        if let Some(e) = self.entries.get_mut(&chunk) {
            e.hits += 1;
            e.key = age + e.hits;
            e.dirty |= dirty;
            return InsertOutcome::Inserted;
        }
        let mut outcome = InsertOutcome::Inserted;
        if self.entries.len() == self.capacity {
            // Invariant: capacity > 0, so a full cache has a victim.
            if let Some((victim, was_dirty)) = self.evict_min() {
                outcome = if was_dirty {
                    InsertOutcome::EvictedDirty(victim)
                } else {
                    InsertOutcome::EvictedClean(victim)
                };
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(
            chunk,
            LfudaEntry {
                hits: 1,
                key: self.age + 1,
                seq,
                dirty,
            },
        );
        outcome
    }

    fn contains(&self, chunk: Chunk) -> bool {
        self.entries.contains_key(&chunk)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> HitMiss {
        self.stats
    }

    fn reset(&mut self) {
        self.entries.clear();
        self.age = 0;
        self.next_seq = 0;
        self.stats = HitMiss::default();
    }

    fn drain(&mut self) -> Vec<(Chunk, bool)> {
        let mut out = Vec::with_capacity(self.entries.len());
        while let Some(entry) = self.evict_min() {
            out.push(entry);
        }
        out
    }

    fn set_capacity(&mut self, capacity: usize) -> Vec<(Chunk, bool)> {
        self.capacity = capacity.max(1);
        let mut out = Vec::new();
        while self.entries.len() > self.capacity {
            match self.evict_min() {
                Some(entry) => out.push(entry),
                None => break,
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// GDSF
// ---------------------------------------------------------------------------

/// Fixed-point scale for GDSF priorities, so `frequency / footprint`
/// stays in integer arithmetic (bit-deterministic across platforms).
const GDSF_PRECISION: u64 = 1024;

#[derive(Debug, Clone)]
struct GdsfEntry {
    freq: u64,
    prio: u64, // age + freq * GDSF_PRECISION / footprint
    seq: u64,  // tie-break: lower sequence = older = evicted first
    dirty: bool,
}

/// Greedy-Dual-Size-Frequency: eviction priority is
/// `age + frequency × precision / footprint`, so small popular lines
/// outlive large cold ones, and the age ratchet (as in LFUDA) retires
/// stale lines. The simulator manages uniform 1-unit chunks, where GDSF
/// reduces to greedy-dual frequency; [`GdsfCache::set_footprint`] feeds
/// non-uniform footprints (in abstract units) for tests and future
/// multi-granularity caching.
#[derive(Debug, Clone)]
pub struct GdsfCache {
    capacity: usize,
    entries: FxHashMap<Chunk, GdsfEntry>,
    footprints: FxHashMap<Chunk, u64>,
    age: u64,
    next_seq: u64,
    stats: HitMiss,
}

impl GdsfCache {
    /// Creates an empty GDSF cache with uniform 1-unit footprints.
    ///
    /// # Panics
    /// Panics if capacity is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        GdsfCache {
            capacity,
            entries: FxHashMap::default(),
            footprints: FxHashMap::default(),
            age: 0,
            next_seq: 0,
            stats: HitMiss::default(),
        }
    }

    /// Declares a chunk's footprint in abstract units (clamped to ≥ 1).
    /// Affects priorities computed from the next touch on; footprints
    /// survive eviction and reset.
    pub fn set_footprint(&mut self, chunk: Chunk, units: u64) {
        self.footprints.insert(chunk, units.max(1));
    }

    fn footprint(&self, chunk: Chunk) -> u64 {
        self.footprints.get(&chunk).copied().unwrap_or(1)
    }

    fn priority(&self, chunk: Chunk, freq: u64) -> u64 {
        self.age + freq * GDSF_PRECISION / self.footprint(chunk)
    }

    /// Evicts the minimum-priority entry (unique `seq` tie-break) and
    /// ratchets the age; `None` on an empty cache.
    fn evict_min(&mut self) -> Option<(Chunk, bool)> {
        let victim = *self
            .entries
            .iter()
            .min_by_key(|(_, e)| (e.prio, e.seq))
            .map(|(c, _)| c)?;
        let e = self.entries.remove(&victim)?;
        self.age = self.age.max(e.prio);
        Some((victim, e.dirty))
    }
}

impl ChunkCache for GdsfCache {
    fn access(&mut self, chunk: Chunk, write: bool) -> bool {
        if let Some(freq) = self.entries.get(&chunk).map(|e| e.freq + 1) {
            let prio = self.priority(chunk, freq);
            let e = self.entries.get_mut(&chunk).expect("resident");
            e.freq = freq;
            e.prio = prio;
            e.dirty |= write;
            self.stats.hit();
            true
        } else {
            self.stats.miss();
            false
        }
    }

    fn insert(&mut self, chunk: Chunk, dirty: bool) -> InsertOutcome {
        if let Some(freq) = self.entries.get(&chunk).map(|e| e.freq + 1) {
            let prio = self.priority(chunk, freq);
            let e = self.entries.get_mut(&chunk).expect("resident");
            e.freq = freq;
            e.prio = prio;
            e.dirty |= dirty;
            return InsertOutcome::Inserted;
        }
        let mut outcome = InsertOutcome::Inserted;
        if self.entries.len() == self.capacity {
            // Invariant: capacity > 0, so a full cache has a victim.
            if let Some((victim, was_dirty)) = self.evict_min() {
                outcome = if was_dirty {
                    InsertOutcome::EvictedDirty(victim)
                } else {
                    InsertOutcome::EvictedClean(victim)
                };
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let prio = self.priority(chunk, 1);
        self.entries.insert(
            chunk,
            GdsfEntry {
                freq: 1,
                prio,
                seq,
                dirty,
            },
        );
        outcome
    }

    fn contains(&self, chunk: Chunk) -> bool {
        self.entries.contains_key(&chunk)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> HitMiss {
        self.stats
    }

    fn reset(&mut self) {
        self.entries.clear();
        self.age = 0;
        self.next_seq = 0;
        self.stats = HitMiss::default();
    }

    fn drain(&mut self) -> Vec<(Chunk, bool)> {
        let mut out = Vec::with_capacity(self.entries.len());
        while let Some(entry) = self.evict_min() {
            out.push(entry);
        }
        out
    }

    fn set_capacity(&mut self, capacity: usize) -> Vec<(Chunk, bool)> {
        self.capacity = capacity.max(1);
        let mut out = Vec::new();
        while self.entries.len() > self.capacity {
            match self.evict_min() {
                Some(entry) => out.push(entry),
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_hits_and_misses() {
        let mut c = LruCache::new(2);
        assert!(!c.access(1, false));
        c.insert(1, false);
        assert!(c.access(1, false));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(2);
        c.insert(1, false);
        c.insert(2, false);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.access(1, false));
        let out = c.insert(3, false);
        assert_eq!(out, InsertOutcome::EvictedClean(2));
        assert!(c.contains(1) && c.contains(3) && !c.contains(2));
    }

    #[test]
    fn lru_dirty_eviction_surfaces_writeback() {
        let mut c = LruCache::new(1);
        c.insert(7, false);
        assert!(c.access(7, true)); // write hit marks dirty
        let out = c.insert(8, false);
        assert_eq!(out, InsertOutcome::EvictedDirty(7));
    }

    #[test]
    fn lru_insert_existing_merges_dirty() {
        let mut c = LruCache::new(2);
        c.insert(1, false);
        c.insert(1, true);
        c.insert(2, false);
        let out = c.insert(3, false); // victim should be 1 (older), dirty
        assert_eq!(out, InsertOutcome::EvictedDirty(1));
    }

    #[test]
    fn lru_never_exceeds_capacity() {
        let mut c = LruCache::new(4);
        for i in 0..100 {
            c.insert(i, i % 3 == 0);
            assert!(c.len() <= 4);
        }
        assert_eq!(c.len(), 4);
        // The last four inserted remain.
        for i in 96..100 {
            assert!(c.contains(i));
        }
    }

    #[test]
    fn lru_reset_clears_everything() {
        let mut c = LruCache::new(2);
        c.insert(1, true);
        c.access(1, false);
        c.reset();
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().accesses(), 0);
        assert!(!c.contains(1));
        // Reusable after reset.
        c.insert(5, false);
        assert!(c.contains(5));
    }

    #[test]
    fn fifo_evicts_insertion_order_despite_access() {
        let mut c = FifoCache::new(2);
        c.insert(1, false);
        c.insert(2, false);
        assert!(c.access(1, false)); // does NOT protect 1 under FIFO
        let out = c.insert(3, false);
        assert_eq!(out, InsertOutcome::EvictedClean(1));
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut c = LfuCache::new(2);
        c.insert(1, false);
        c.insert(2, false);
        c.access(1, false);
        c.access(1, false);
        c.access(2, false);
        let out = c.insert(3, false);
        // 2 has freq 2 (1 insert + 1 access), 1 has freq 3 → evict 2.
        assert_eq!(out, InsertOutcome::EvictedClean(2));
    }

    #[test]
    fn lfu_tie_breaks_by_age() {
        let mut c = LfuCache::new(2);
        c.insert(1, false);
        c.insert(2, false);
        let out = c.insert(3, false); // both freq 1 → evict older (1)
        assert_eq!(out, InsertOutcome::EvictedClean(1));
    }

    #[test]
    fn policy_factory_builds_each_kind() {
        for kind in PolicyKind::ALL {
            let cap = 3;
            let mut c = build_cache(kind, cap);
            assert_eq!(c.capacity(), cap);
            c.insert(1, false);
            assert!(c.access(1, false));
            assert!(c.stats().hits >= 1);
        }
    }

    #[test]
    fn drain_surfaces_dirty_residents_and_empties() {
        for kind in PolicyKind::ALL {
            let mut c = build_cache(kind, 4);
            c.insert(1, false);
            c.insert(2, true);
            c.insert(3, false);
            let drained = c.drain();
            assert_eq!(drained.len(), 3, "{kind:?}");
            assert_eq!(
                drained.iter().filter(|(_, d)| *d).count(),
                1,
                "{kind:?} must surface the dirty chunk"
            );
            assert!(c.is_empty());
            // Statistics survive a drain (unlike reset).
            assert_eq!(c.stats().misses, 0);
            c.insert(9, false);
            assert!(c.contains(9));
        }
    }

    #[test]
    fn set_capacity_shrinks_in_policy_order() {
        let mut c = LruCache::new(4);
        for i in 0..4 {
            c.insert(i, i == 0); // chunk 0 dirty, and LRU
        }
        let evicted = c.set_capacity(2);
        assert_eq!(evicted, vec![(0, true), (1, false)]);
        assert_eq!(c.capacity(), 2);
        assert_eq!(c.len(), 2);
        assert!(c.contains(2) && c.contains(3));
        // Growing evicts nothing; zero clamps to one.
        assert!(c.set_capacity(8).is_empty());
        let evicted = c.set_capacity(0);
        assert_eq!(c.capacity(), 1);
        assert_eq!(evicted.len(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn set_capacity_all_policies_respect_new_limit() {
        for kind in PolicyKind::ALL {
            let mut c = build_cache(kind, 8);
            for i in 0..8 {
                c.insert(i, i % 2 == 0);
            }
            let evicted = c.set_capacity(3);
            assert_eq!(evicted.len(), 5, "{kind:?}");
            assert_eq!(c.len(), 3, "{kind:?}");
            assert_eq!(c.capacity(), 3, "{kind:?}");
            c.insert(100, false);
            assert!(c.len() <= 3, "{kind:?}");
        }
    }

    #[test]
    fn slru_scan_does_not_flush_protected_lines() {
        // Working set {0..4} is re-referenced (promoted to protected),
        // then a 20-chunk scan storms through. Under LRU the scan would
        // flush everything; SLRU keeps the protected set resident.
        let mut c = SlruCache::new(10);
        for w in 0..4 {
            c.insert(w, false);
            assert!(c.access(w, false), "promote {w}");
        }
        for s in 100..120 {
            if !c.access(s, false) {
                c.insert(s, false);
            }
        }
        for w in 0..4 {
            assert!(c.contains(w), "scan must not evict protected chunk {w}");
        }
        // The same storm against LRU flushes the working set.
        let mut lru = LruCache::new(10);
        for w in 0..4 {
            lru.insert(w, false);
            lru.access(w, false);
        }
        for s in 100..120 {
            if !lru.access(s, false) {
                lru.insert(s, false);
            }
        }
        for w in 0..4 {
            assert!(!lru.contains(w), "LRU baseline loses chunk {w}");
        }
    }

    #[test]
    fn slru_single_use_lines_stay_probationary_and_evict_first() {
        let mut c = SlruCache::new(4);
        c.insert(1, false);
        c.access(1, false); // protected
        c.insert(2, false); // probationary, never re-touched
        c.insert(3, false); // probationary
        c.insert(4, false); // probationary
        let out = c.insert(5, false);
        // Probationary LRU (2) goes first, never the protected line.
        assert_eq!(out, InsertOutcome::EvictedClean(2));
        assert!(c.contains(1));
    }

    #[test]
    fn slru_protected_overflow_demotes_not_evicts() {
        let mut c = SlruCache::new(5); // protected share = 4
        for i in 0..5 {
            c.insert(i, false);
            assert!(c.access(i, false)); // promote all five
        }
        // Residency never shrinks on access: the oldest protected line
        // was demoted to probation, not dropped.
        assert_eq!(c.len(), 5);
        for i in 0..5 {
            assert!(c.contains(i), "chunk {i}");
        }
    }

    #[test]
    fn lfuda_ages_out_stale_popular_lines() {
        // Warm phase makes {1, 2} hot; then popularity inverts to
        // {3, 4}. Plain LFU lets the stale pair block the new pair
        // forever (3 and 4 evict each other at frequency 1); LFUDA's
        // age ratchet retires the stale pair and the new pair hits.
        fn run(c: &mut dyn ChunkCache) -> u64 {
            for w in [1, 2] {
                c.insert(w, false);
            }
            for _ in 0..10 {
                c.access(1, false);
                c.access(2, false);
            }
            let before = c.stats().hits;
            for _ in 0..12 {
                for n in [3, 4] {
                    if !c.access(n, false) {
                        c.insert(n, false);
                    }
                }
            }
            c.stats().hits - before
        }
        let mut lfuda = LfudaCache::new(2);
        let mut lfu = LfuCache::new(2);
        let lfuda_hits = run(&mut lfuda);
        let lfu_hits = run(&mut lfu);
        assert_eq!(lfu_hits, 0, "LFU baseline starves the new hot pair");
        assert!(
            lfuda_hits > 8,
            "LFUDA must serve the new hot pair (got {lfuda_hits} hits)"
        );
    }

    #[test]
    fn lfuda_eviction_is_deterministic_under_ties() {
        let mut c = LfudaCache::new(3);
        c.insert(10, false);
        c.insert(11, false);
        c.insert(12, false);
        // All priorities equal → oldest sequence (10) goes first.
        assert_eq!(c.insert(13, false), InsertOutcome::EvictedClean(10));
    }

    #[test]
    fn gdsf_prefers_evicting_large_cold_lines() {
        let mut c = GdsfCache::new(3);
        c.set_footprint(1, 8); // large line
        c.insert(1, false);
        c.insert(2, false); // unit footprint
        c.insert(3, false);
        // Equal frequency: the large line has the lowest
        // frequency-per-footprint priority and goes first, even though
        // line 2 is older in insertion order than line 3.
        assert_eq!(c.insert(4, false), InsertOutcome::EvictedClean(1));
    }

    #[test]
    fn gdsf_frequency_rescues_a_large_line() {
        let mut c = GdsfCache::new(3);
        c.set_footprint(1, 4);
        c.insert(1, false);
        for _ in 0..8 {
            c.access(1, false); // freq climbs: 9 * P/4 > 1 * P
        }
        c.insert(2, false);
        c.insert(3, false);
        // Now the cold unit-footprint line 2 is the victim.
        assert_eq!(c.insert(4, false), InsertOutcome::EvictedClean(2));
        assert!(c.contains(1));
    }

    #[test]
    fn gdsf_uniform_footprints_age_like_lfuda() {
        // With uniform footprints GDSF is greedy-dual frequency: the
        // age ratchet must admit a newly hot line past stale ones.
        let mut c = GdsfCache::new(2);
        for _ in 0..10 {
            c.insert(1, false);
            c.insert(2, false);
        }
        for _ in 0..12 {
            if !c.access(3, false) {
                c.insert(3, false);
            }
        }
        assert!(c.contains(3));
    }

    #[test]
    fn new_policies_reset_clears_aging_state() {
        for kind in [PolicyKind::Slru, PolicyKind::Lfuda, PolicyKind::Gdsf] {
            let mut c = build_cache(kind, 4);
            for i in 0..20 {
                if !c.access(i, i % 2 == 0) {
                    c.insert(i, i % 2 == 0);
                }
            }
            c.reset();
            assert_eq!(c.len(), 0, "{kind:?}");
            assert_eq!(c.stats().accesses(), 0, "{kind:?}");
            c.insert(5, false);
            assert!(c.contains(5), "{kind:?}");
        }
    }

    #[test]
    fn lru_interleaved_stress_is_consistent() {
        // Cross-check the intrusive list against a reference model.
        let mut c = LruCache::new(8);
        let mut model: Vec<Chunk> = Vec::new(); // front = most recent
        for step in 0..2000usize {
            let chunk = (step * 7 + step / 3) % 23;
            let hit = c.access(chunk, false);
            let model_hit = model.contains(&chunk);
            assert_eq!(hit, model_hit, "step {step} chunk {chunk}");
            if hit {
                model.retain(|&x| x != chunk);
                model.insert(0, chunk);
            } else {
                c.insert(chunk, false);
                if model.len() == 8 {
                    model.pop();
                }
                model.insert(0, chunk);
            }
            assert_eq!(c.len(), model.len());
        }
    }
}
