//! JSON wire codec for platform configurations and mapped programs.
//!
//! The mapping service receives a [`PlatformConfig`] (the hierarchy the
//! request should be mapped onto) in each request and returns the
//! resulting [`MappedProgram`] (per-client op streams). Both round-trip
//! through the workspace's deterministic [`Json`] writer, which is what
//! makes "cache hits are byte-identical to cold runs" a checkable
//! property: two equal mappings serialize to equal bytes.
//!
//! [`ClientOp`] uses a compact tagged encoding, since op streams dominate
//! response size:
//!
//! ```text
//! Compute  {"t":"c","ns":n}
//! Access   {"t":"a","ch":chunk,"w":bool}
//! Signal   {"t":"s","tok":t}
//! Wait     {"t":"w","tok":t}
//! ```

use crate::config::{PlatformConfig, PolicyKind};
use crate::engine::{ClientOp, MappedProgram};
pub use cachemap_polyhedral::wire::WireError;
use cachemap_util::{Json, ToJson};

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, WireError> {
    v.get(key)
        .ok_or_else(|| WireError::new(key, format!("missing field '{key}'")))
}

fn get_u64(v: &Json, key: &str) -> Result<u64, WireError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| WireError::new(key, "expected a non-negative integer"))
}

fn get_usize(v: &Json, key: &str) -> Result<usize, WireError> {
    Ok(get_u64(v, key)? as usize)
}

impl ToJson for PolicyKind {
    fn to_json(&self) -> Json {
        Json::Str(self.label().to_string())
    }
}

/// Parses a [`PolicyKind`] from its wire name.
pub fn policy_from_json(v: &Json) -> Result<PolicyKind, WireError> {
    match v.as_str() {
        Some("lru") => Ok(PolicyKind::Lru),
        Some("fifo") => Ok(PolicyKind::Fifo),
        Some("lfu") => Ok(PolicyKind::Lfu),
        Some("slru") => Ok(PolicyKind::Slru),
        Some("lfuda") => Ok(PolicyKind::Lfuda),
        Some("gdsf") => Ok(PolicyKind::Gdsf),
        _ => Err(WireError::new(
            "policy",
            "expected one of \"lru\", \"fifo\", \"lfu\", \"slru\", \"lfuda\", \"gdsf\"",
        )),
    }
}

/// Encodes a per-level policy vector: the single legacy string when all
/// levels agree (keeping uniform configs — notably the all-LRU default —
/// byte-identical to the pre-zoo wire format, which also keeps their
/// content fingerprints stable), a 3-element `[l1, l2, l3]` array
/// otherwise.
fn policies_to_json(policies: &[PolicyKind; 3]) -> Json {
    if policies[1] == policies[0] && policies[2] == policies[0] {
        policies[0].to_json()
    } else {
        Json::Array(policies.iter().map(ToJson::to_json).collect())
    }
}

/// Parses a per-level policy vector: either the legacy single name
/// (applied to every level) or a 3-element per-level array.
pub fn policies_from_json(v: &Json) -> Result<[PolicyKind; 3], WireError> {
    match v {
        Json::Array(levels) => {
            if levels.len() != 3 {
                return Err(WireError::new(
                    "policy",
                    format!("expected 3 per-level policies, got {}", levels.len()),
                ));
            }
            Ok([
                policy_from_json(&levels[0])?,
                policy_from_json(&levels[1])?,
                policy_from_json(&levels[2])?,
            ])
        }
        _ => Ok([policy_from_json(v)?; 3]),
    }
}

impl ToJson for PlatformConfig {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("num_clients", Json::UInt(self.num_clients as u64)),
            ("num_io_nodes", Json::UInt(self.num_io_nodes as u64)),
            (
                "num_storage_nodes",
                Json::UInt(self.num_storage_nodes as u64),
            ),
            ("chunk_bytes", Json::UInt(self.chunk_bytes)),
            (
                "client_cache_chunks",
                Json::UInt(self.client_cache_chunks as u64),
            ),
            ("io_cache_chunks", Json::UInt(self.io_cache_chunks as u64)),
            (
                "storage_cache_chunks",
                Json::UInt(self.storage_cache_chunks as u64),
            ),
            ("policy", policies_to_json(&self.policies)),
            ("disks_per_node", Json::UInt(self.disks_per_node as u64)),
            ("rpm", Json::UInt(self.rpm as u64)),
            ("seek_ns", Json::UInt(self.seek_ns)),
            ("disk_bw_bytes_per_s", Json::UInt(self.disk_bw_bytes_per_s)),
            ("net_hop_ns", Json::UInt(self.net_hop_ns)),
            ("net_bw_bytes_per_s", Json::UInt(self.net_bw_bytes_per_s)),
            ("readahead_chunks", Json::UInt(self.readahead_chunks as u64)),
            ("cache_access_ns", Json::UInt(self.cache_access_ns)),
            ("sync_ns", Json::UInt(self.sync_ns)),
        ])
    }
}

/// Parses a [`PlatformConfig`]. Structural validity (divisibility,
/// non-zero rates) is checked by [`PlatformConfig::validate`], which the
/// service runs on admission; this only checks shapes and ranges.
pub fn platform_from_json(v: &Json) -> Result<PlatformConfig, WireError> {
    if !matches!(v, Json::Object(_)) {
        return Err(WireError::new("platform", "expected an object"));
    }
    Ok(PlatformConfig {
        num_clients: get_usize(v, "num_clients")?,
        num_io_nodes: get_usize(v, "num_io_nodes")?,
        num_storage_nodes: get_usize(v, "num_storage_nodes")?,
        chunk_bytes: get_u64(v, "chunk_bytes")?,
        client_cache_chunks: get_usize(v, "client_cache_chunks")?,
        io_cache_chunks: get_usize(v, "io_cache_chunks")?,
        storage_cache_chunks: get_usize(v, "storage_cache_chunks")?,
        policies: policies_from_json(field(v, "policy")?)?,
        disks_per_node: get_usize(v, "disks_per_node")?,
        rpm: u32::try_from(get_u64(v, "rpm")?)
            .map_err(|_| WireError::new("rpm", "rpm out of range"))?,
        seek_ns: get_u64(v, "seek_ns")?,
        disk_bw_bytes_per_s: get_u64(v, "disk_bw_bytes_per_s")?,
        net_hop_ns: get_u64(v, "net_hop_ns")?,
        net_bw_bytes_per_s: get_u64(v, "net_bw_bytes_per_s")?,
        readahead_chunks: get_usize(v, "readahead_chunks")?,
        cache_access_ns: get_u64(v, "cache_access_ns")?,
        sync_ns: get_u64(v, "sync_ns")?,
    })
}

impl ToJson for ClientOp {
    fn to_json(&self) -> Json {
        match *self {
            ClientOp::Compute { ns } => {
                Json::object(vec![("t", Json::Str("c".into())), ("ns", Json::UInt(ns))])
            }
            ClientOp::Access { chunk, write } => Json::object(vec![
                ("t", Json::Str("a".into())),
                ("ch", Json::UInt(chunk as u64)),
                ("w", Json::Bool(write)),
            ]),
            ClientOp::Signal { token } => Json::object(vec![
                ("t", Json::Str("s".into())),
                ("tok", Json::UInt(token as u64)),
            ]),
            ClientOp::Wait { token } => Json::object(vec![
                ("t", Json::Str("w".into())),
                ("tok", Json::UInt(token as u64)),
            ]),
        }
    }
}

/// Parses a [`ClientOp`].
pub fn client_op_from_json(v: &Json) -> Result<ClientOp, WireError> {
    let tag = field(v, "t")?
        .as_str()
        .ok_or_else(|| WireError::new("t", "expected a string tag"))?;
    match tag {
        "c" => Ok(ClientOp::Compute {
            ns: get_u64(v, "ns")?,
        }),
        "a" => Ok(ClientOp::Access {
            chunk: get_usize(v, "ch")?,
            write: match field(v, "w")? {
                Json::Bool(b) => *b,
                _ => return Err(WireError::new("w", "expected a boolean")),
            },
        }),
        "s" => Ok(ClientOp::Signal {
            token: u32::try_from(get_u64(v, "tok")?)
                .map_err(|_| WireError::new("tok", "token out of range"))?,
        }),
        "w" => Ok(ClientOp::Wait {
            token: u32::try_from(get_u64(v, "tok")?)
                .map_err(|_| WireError::new("tok", "token out of range"))?,
        }),
        other => Err(WireError::new("t", format!("unknown op tag '{other}'"))),
    }
}

impl ToJson for MappedProgram {
    fn to_json(&self) -> Json {
        Json::object(vec![(
            "per_client",
            Json::Array(
                self.per_client
                    .iter()
                    .map(|ops| Json::Array(ops.iter().map(ToJson::to_json).collect()))
                    .collect(),
            ),
        )])
    }
}

/// Parses a [`MappedProgram`].
pub fn mapped_program_from_json(v: &Json) -> Result<MappedProgram, WireError> {
    let per_client = field(v, "per_client")?
        .as_array()
        .ok_or_else(|| WireError::new("per_client", "expected an array"))?
        .iter()
        .enumerate()
        .map(|(c, ops)| {
            ops.as_array()
                .ok_or_else(|| WireError::new(format!("per_client[{c}]"), "expected an array"))?
                .iter()
                .enumerate()
                .map(|(i, op)| {
                    client_op_from_json(op).map_err(|e| {
                        WireError::new(format!("per_client[{c}][{i}].{}", e.path), e.message)
                    })
                })
                .collect::<Result<Vec<ClientOp>, _>>()
        })
        .collect::<Result<Vec<Vec<ClientOp>>, _>>()?;
    Ok(MappedProgram { per_client })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_round_trips() {
        for cfg in [PlatformConfig::tiny(), PlatformConfig::paper_default()] {
            let back = platform_from_json(&cfg.to_json()).unwrap();
            assert_eq!(back, cfg);
            let reparsed = cachemap_util::json::parse(&cfg.to_json().to_string_compact()).unwrap();
            assert_eq!(platform_from_json(&reparsed).unwrap(), cfg);
        }
    }

    #[test]
    fn mapped_program_round_trips() {
        let mut mp = MappedProgram::new(2);
        mp.per_client[0] = vec![
            ClientOp::Compute { ns: 5 },
            ClientOp::Access {
                chunk: 7,
                write: true,
            },
            ClientOp::Signal { token: 3 },
        ];
        mp.per_client[1] = vec![
            ClientOp::Wait { token: 3 },
            ClientOp::Access {
                chunk: 7,
                write: false,
            },
        ];
        let j = mp.to_json();
        assert_eq!(mapped_program_from_json(&j).unwrap(), mp);
        // Byte-determinism: equal programs serialize to equal bytes.
        assert_eq!(
            j.to_string_compact(),
            mp.clone().to_json().to_string_compact()
        );
    }

    #[test]
    fn bad_policy_and_bad_op_are_typed_errors() {
        assert!(policy_from_json(&Json::Str("mru".into())).is_err());
        let bad = Json::object(vec![("t", Json::Str("x".into()))]);
        assert!(client_op_from_json(&bad).is_err());
    }

    #[test]
    fn every_policy_kind_round_trips() {
        use crate::config::PolicyKind;
        for kind in PolicyKind::ALL {
            assert_eq!(policy_from_json(&kind.to_json()).unwrap(), kind);
        }
    }

    #[test]
    fn uniform_policy_keeps_the_legacy_string_encoding() {
        // The all-LRU default must serialize exactly as before the
        // per-level zoo existed — the content fingerprint hashes these
        // bytes, so service cache keys for existing configs must not
        // move.
        let cfg = PlatformConfig::paper_default();
        let text = cfg.to_json().to_string_compact();
        assert!(text.contains("\"policy\":\"lru\""), "{text}");
        assert!(!text.contains("\"policy\":["), "{text}");
        // Uniform non-default policies keep the string form too.
        let cfg = cfg.with_policy(crate::config::PolicyKind::Gdsf);
        assert!(cfg
            .to_json()
            .to_string_compact()
            .contains("\"policy\":\"gdsf\""));
    }

    #[test]
    fn per_level_policy_vectors_round_trip() {
        use crate::config::PolicyKind;
        let cfg = PlatformConfig::tiny().with_level_policies(
            PolicyKind::Slru,
            PolicyKind::Lru,
            PolicyKind::Lfuda,
        );
        let j = cfg.to_json();
        assert!(j
            .to_string_compact()
            .contains("\"policy\":[\"slru\",\"lru\",\"lfuda\"]"));
        let back = platform_from_json(&j).unwrap();
        assert_eq!(back, cfg);
        // And through actual bytes.
        let reparsed = cachemap_util::json::parse(&j.to_string_compact()).unwrap();
        assert_eq!(platform_from_json(&reparsed).unwrap(), cfg);
    }

    #[test]
    fn legacy_single_policy_string_parses_to_all_levels() {
        use crate::config::PolicyKind;
        let mut j = PlatformConfig::tiny().to_json();
        if let Json::Object(pairs) = &mut j {
            pairs
                .iter_mut()
                .find(|(k, _)| k == "policy")
                .expect("policy field")
                .1 = Json::Str("fifo".into());
        }
        let back = platform_from_json(&j).unwrap();
        assert_eq!(back.policies, [PolicyKind::Fifo; 3]);
    }

    #[test]
    fn wrong_arity_policy_vector_is_a_typed_error() {
        let two = Json::Array(vec![Json::Str("lru".into()), Json::Str("lfu".into())]);
        assert!(policies_from_json(&two).is_err());
    }
}
