//! Disk and striping model.
//!
//! Each storage node owns one disk. File data is striped across all
//! storage nodes at stripe-size (= chunk-size) granularity, PVFS-style
//! (Table 1: "Data Striping uses all 16 storage nodes"). A chunk read
//! costs average seek + average rotational delay + transfer, unless the
//! request is sequential on that disk (the immediately following chunk),
//! in which case positioning is skipped — this is what makes the
//! lexicographic "original" mapping stream reasonably well and gives the
//! locality schemes something real to beat.

use crate::cache::Chunk;
use crate::config::PlatformConfig;

/// State of one storage-node disk.
#[derive(Debug, Clone)]
pub struct Disk {
    /// Chunk that the head is positioned right after, if any.
    last_chunk: Option<Chunk>,
    /// Total reads serviced.
    pub reads: u64,
    /// Total writes serviced.
    pub writes: u64,
    /// Reads that were sequential (no positioning cost).
    pub sequential_reads: u64,
}

impl Disk {
    /// A disk with an unpositioned head.
    pub fn new() -> Self {
        Disk {
            last_chunk: None,
            reads: 0,
            writes: 0,
            sequential_reads: 0,
        }
    }

    /// Services a read of `chunk`; returns the service time in ns.
    pub fn read(&mut self, chunk: Chunk, cfg: &PlatformConfig) -> u64 {
        self.reads += 1;
        let sequential = self.last_chunk == Some(chunk.wrapping_sub(striping_stride(cfg)));
        self.last_chunk = Some(chunk);
        if sequential {
            self.sequential_reads += 1;
            cfg.disk_transfer_ns()
        } else {
            cfg.seek_ns + cfg.rotational_ns() + cfg.disk_transfer_ns()
        }
    }

    /// Services a write-back of `chunk`; returns the service time in ns.
    /// Writes always pay positioning (they interrupt a read stream).
    pub fn write(&mut self, chunk: Chunk, cfg: &PlatformConfig) -> u64 {
        self.writes += 1;
        self.last_chunk = Some(chunk);
        cfg.seek_ns + cfg.rotational_ns() + cfg.disk_transfer_ns()
    }
}

impl Default for Disk {
    fn default() -> Self {
        Self::new()
    }
}

/// The storage node that owns a chunk under round-robin striping across
/// all storage nodes.
pub fn owner_of_chunk(chunk: Chunk, cfg: &PlatformConfig) -> usize {
    chunk % cfg.num_storage_nodes
}

/// The spindle within the owning storage node that holds a chunk:
/// node-local data is striped round-robin over the node's disks.
pub fn spindle_of_chunk(chunk: Chunk, cfg: &PlatformConfig) -> usize {
    (chunk / cfg.num_storage_nodes) % cfg.disks_per_node
}

/// Flat disk index (node-major) for the engine's disk table.
pub fn disk_index(chunk: Chunk, cfg: &PlatformConfig) -> usize {
    owner_of_chunk(chunk, cfg) * cfg.disks_per_node + spindle_of_chunk(chunk, cfg)
}

/// Total spindles in the system.
pub fn total_disks(cfg: &PlatformConfig) -> usize {
    cfg.num_storage_nodes * cfg.disks_per_node
}

/// The global-chunk-id stride between consecutive chunks on the same
/// spindle: with two-level round-robin striping, chunk `c` and
/// `c + num_storage_nodes · disks_per_node` are adjacent on disk.
pub fn striping_stride(cfg: &PlatformConfig) -> usize {
    cfg.num_storage_nodes * cfg.disks_per_node
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PlatformConfig {
        PlatformConfig::paper_default()
    }

    #[test]
    fn striping_round_robin() {
        let c = cfg();
        assert_eq!(owner_of_chunk(0, &c), 0);
        assert_eq!(owner_of_chunk(15, &c), 15);
        assert_eq!(owner_of_chunk(16, &c), 0);
        assert_eq!(owner_of_chunk(17, &c), 1);
        // Node-local spindle striping: chunks 0, 16, 32, 48 live on node
        // 0's spindles 0, 1, 2, 3; chunk 64 wraps back to spindle 0.
        assert_eq!(spindle_of_chunk(0, &c), 0);
        assert_eq!(spindle_of_chunk(16, &c), 1);
        assert_eq!(spindle_of_chunk(48, &c), 3);
        assert_eq!(spindle_of_chunk(64, &c), 0);
        assert_eq!(disk_index(17, &c), c.disks_per_node + 1);
        assert_eq!(total_disks(&c), 64);
    }

    #[test]
    fn random_read_pays_positioning() {
        let c = cfg();
        let mut d = Disk::new();
        let t = d.read(5, &c);
        assert_eq!(t, c.seek_ns + c.rotational_ns() + c.disk_transfer_ns());
        assert_eq!(d.reads, 1);
        assert_eq!(d.sequential_reads, 0);
    }

    #[test]
    fn sequential_read_skips_positioning() {
        let c = cfg();
        let mut d = Disk::new();
        // Spindle (0,0) holds chunks 0, 64, 128, … — reading them in
        // order is sequential after the first.
        d.read(0, &c);
        let t = d.read(64, &c);
        assert_eq!(t, c.disk_transfer_ns());
        assert_eq!(d.sequential_reads, 1);
        let t2 = d.read(192, &c); // skipped 128 → not sequential
        assert!(t2 > c.disk_transfer_ns());
    }

    #[test]
    fn write_pays_positioning_and_disturbs_stream() {
        let c = cfg();
        let mut d = Disk::new();
        d.read(0, &c);
        let tw = d.write(100, &c);
        assert_eq!(tw, c.seek_ns + c.rotational_ns() + c.disk_transfer_ns());
        assert_eq!(d.writes, 1);
        // Next read of 64 is no longer sequential (head moved).
        let t = d.read(64, &c);
        assert!(t > c.disk_transfer_ns());
    }
}
