//! Loop transformations: permutation and tiling traversals.
//!
//! The "intra-processor" baseline of the paper's evaluation (Section 5.1)
//! applies well-known data-locality transformations — loop permutation
//! and iteration-space tiling/blocking — before block-distributing
//! iterations across clients. This module supplies those mechanics as
//! *traversals*: alternative enumeration orders over the original
//! iteration space. Points are always yielded in original coordinates,
//! so array references evaluate unchanged; only the execution order
//! differs.

use crate::deps::{permutation_is_legal, Dependence};
use crate::space::{IterationSpace, Point};

/// An execution order over an iteration space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Traversal {
    /// Original lexicographic order.
    Identity,
    /// Loop permutation: position `j` of the new nest runs old loop
    /// `perm[j]`. `perm` must be a permutation of `0..depth`.
    Permuted(Vec<usize>),
    /// Rectangular tiling with the given tile size per loop (outermost
    /// first). Tiles are visited lexicographically; points within a tile
    /// are visited lexicographically.
    Tiled(Vec<i64>),
    /// Tiling where the *tile loops* are permuted by `perm` (intra-tile
    /// order stays lexicographic). This is the classic blocked traversal
    /// used to improve temporal reuse in outer positions.
    TiledPermuted {
        /// Tile size per loop.
        tiles: Vec<i64>,
        /// Permutation applied to the inter-tile loops.
        perm: Vec<usize>,
    },
}

impl Traversal {
    /// True if applying this traversal preserves all dependences.
    ///
    /// * `Identity` is always legal.
    /// * `Permuted` is legal iff every direction vector stays
    ///   lexicographically positive under the permutation.
    /// * `Tiled`/`TiledPermuted` follow the classical condition: tiling is
    ///   legal when the tiled loops are *fully permutable*, i.e. every
    ///   dependence distance is non-negative in every tiled dimension
    ///   (and, for `TiledPermuted`, the tile-loop permutation must also be
    ///   legal).
    pub fn is_legal(&self, deps: &[Dependence]) -> bool {
        match self {
            Traversal::Identity => true,
            Traversal::Permuted(perm) => permutation_is_legal(deps, perm),
            Traversal::Tiled(_) => fully_permutable(deps),
            Traversal::TiledPermuted { perm, .. } => {
                fully_permutable(deps) && permutation_is_legal(deps, perm)
            }
        }
    }

    /// Enumerates the points of `space` in this traversal's order.
    ///
    /// Rectangular spaces are enumerated directly. Non-rectangular spaces
    /// are supported only for `Identity` and `Permuted` (the latter by
    /// materialize-and-sort, acceptable at mapping time).
    ///
    /// # Panics
    /// Panics on a malformed permutation/tile vector, or when tiling a
    /// non-rectangular space.
    pub fn enumerate(&self, space: &IterationSpace) -> Vec<Point> {
        match self {
            Traversal::Identity => space.iter().collect(),
            Traversal::Permuted(perm) => {
                check_perm(perm, space.depth());
                let mut pts: Vec<Point> = space.iter().collect();
                pts.sort_by(|a, b| {
                    for &old in perm {
                        match a[old].cmp(&b[old]) {
                            std::cmp::Ordering::Equal => {}
                            o => return o,
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                pts
            }
            Traversal::Tiled(tiles) => {
                tiled_enumeration(space, tiles, &(0..space.depth()).collect::<Vec<_>>())
            }
            Traversal::TiledPermuted { tiles, perm } => {
                check_perm(perm, space.depth());
                tiled_enumeration(space, tiles, perm)
            }
        }
    }
}

fn check_perm(perm: &[usize], depth: usize) {
    assert_eq!(
        perm.len(),
        depth,
        "permutation length must equal nest depth"
    );
    let mut seen = vec![false; depth];
    for &p in perm {
        assert!(p < depth && !seen[p], "invalid permutation {perm:?}");
        seen[p] = true;
    }
}

/// All dependence distances non-negative in every dimension.
fn fully_permutable(deps: &[Dependence]) -> bool {
    deps.iter().all(|d| d.distance.iter().all(|&x| x >= 0))
}

/// Enumerates a rectangular space tile-by-tile. `perm` orders the
/// inter-tile loops; intra-tile order is lexicographic in original loop
/// order.
fn tiled_enumeration(space: &IterationSpace, tiles: &[i64], perm: &[usize]) -> Vec<Point> {
    assert!(
        space.is_rectangular(),
        "tiling requires a rectangular iteration space"
    );
    let bounds = space.rectangular_bounds();
    assert_eq!(tiles.len(), bounds.len(), "one tile size per loop required");
    for &t in tiles {
        assert!(t > 0, "tile sizes must be positive, got {t}");
    }

    // Number of tiles per dimension.
    let ntiles: Vec<i64> = bounds
        .iter()
        .zip(tiles)
        .map(|(&(lo, hi), &t)| {
            if hi < lo {
                0
            } else {
                (hi - lo + 1 + t - 1) / t
            }
        })
        .collect();
    if ntiles.contains(&0) {
        return Vec::new();
    }

    let depth = bounds.len();
    let total: u64 = space.size();
    let mut out = Vec::with_capacity(total as usize);

    // Odometer over tile coordinates in `perm` order.
    let mut tc = vec![0i64; depth];
    loop {
        // Emit the tile's points in lexicographic original order.
        let tile_bounds: Vec<(i64, i64)> = (0..depth)
            .map(|k| {
                let (lo, hi) = bounds[k];
                let start = lo + tc[k] * tiles[k];
                (start, (start + tiles[k] - 1).min(hi))
            })
            .collect();
        let tile_space = IterationSpace::new(
            tile_bounds
                .iter()
                .map(|&(lo, hi)| crate::space::Loop::constant(lo, hi))
                .collect(),
        );
        out.extend(tile_space.iter());

        // Advance tile odometer: innermost position of `perm` fastest.
        let mut j = depth;
        loop {
            if j == 0 {
                return out;
            }
            j -= 1;
            let dim = perm[j];
            tc[dim] += 1;
            if tc[dim] < ntiles[dim] {
                break;
            }
            tc[dim] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::DependenceKind;

    fn square(n: i64) -> IterationSpace {
        IterationSpace::rectangular(&[n, n])
    }

    #[test]
    fn identity_matches_space_iter() {
        let s = square(3);
        let t = Traversal::Identity.enumerate(&s);
        let direct: Vec<Point> = s.iter().collect();
        assert_eq!(t, direct);
    }

    #[test]
    fn permuted_is_column_major() {
        let s = square(2);
        let t = Traversal::Permuted(vec![1, 0]).enumerate(&s);
        assert_eq!(t, vec![vec![0, 0], vec![1, 0], vec![0, 1], vec![1, 1]]);
    }

    #[test]
    fn permutation_is_a_permutation_of_points() {
        let s = square(4);
        let mut t = Traversal::Permuted(vec![1, 0]).enumerate(&s);
        let mut direct: Vec<Point> = s.iter().collect();
        t.sort();
        direct.sort();
        assert_eq!(t, direct);
    }

    #[test]
    fn tiled_visits_tiles_in_order() {
        let s = square(4);
        let t = Traversal::Tiled(vec![2, 2]).enumerate(&s);
        assert_eq!(t.len(), 16);
        // First tile: (0..2)×(0..2).
        assert_eq!(&t[..4], &[vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
        // Second tile: (0..2)×(2..4).
        assert_eq!(t[4], vec![0, 2]);
    }

    #[test]
    fn tiled_handles_partial_tiles() {
        let s = IterationSpace::rectangular(&[3, 5]);
        let t = Traversal::Tiled(vec![2, 2]).enumerate(&s);
        assert_eq!(t.len(), 15);
        // Every original point appears exactly once.
        let mut sorted = t.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 15);
    }

    #[test]
    fn tiled_permuted_orders_tiles_by_perm() {
        let s = square(4);
        let t = Traversal::TiledPermuted {
            tiles: vec![2, 2],
            perm: vec![1, 0],
        }
        .enumerate(&s);
        assert_eq!(t.len(), 16);
        // Tile order column-major: after tile (0,0) comes tile (1,0),
        // whose first point is (2,0).
        assert_eq!(t[4], vec![2, 0]);
    }

    #[test]
    fn legality_checks() {
        let flow_pos = Dependence {
            distance: vec![1, 0],
            kind: DependenceKind::Flow,
        };
        let flow_mixed = Dependence {
            distance: vec![1, -1],
            kind: DependenceKind::Flow,
        };
        assert!(Traversal::Identity.is_legal(std::slice::from_ref(&flow_mixed)));
        assert!(Traversal::Permuted(vec![0, 1]).is_legal(std::slice::from_ref(&flow_mixed)));
        assert!(!Traversal::Permuted(vec![1, 0]).is_legal(std::slice::from_ref(&flow_mixed)));
        assert!(Traversal::Tiled(vec![2, 2]).is_legal(std::slice::from_ref(&flow_pos)));
        assert!(!Traversal::Tiled(vec![2, 2]).is_legal(&[flow_mixed]));
        assert!(Traversal::TiledPermuted {
            tiles: vec![2, 2],
            perm: vec![1, 0]
        }
        .is_legal(&[flow_pos]));
    }

    #[test]
    #[should_panic(expected = "invalid permutation")]
    fn malformed_permutation_rejected() {
        Traversal::Permuted(vec![0, 0]).enumerate(&square(2));
    }

    #[test]
    #[should_panic(expected = "rectangular")]
    fn tiling_nonrectangular_rejected() {
        use crate::affine::AffineExpr;
        let s = IterationSpace::new(vec![
            crate::space::Loop::constant(0, 3),
            crate::space::Loop::new(AffineExpr::constant(0), AffineExpr::var(0)),
        ]);
        Traversal::Tiled(vec![2, 2]).enumerate(&s);
    }

    #[test]
    fn permuted_nonrectangular_supported() {
        use crate::affine::AffineExpr;
        let s = IterationSpace::new(vec![
            crate::space::Loop::constant(0, 2),
            crate::space::Loop::new(AffineExpr::constant(0), AffineExpr::var(0)),
        ]);
        let t = Traversal::Permuted(vec![1, 0]).enumerate(&s);
        assert_eq!(t.len(), s.size() as usize);
        // Sorted by (i1, i0): first point has smallest i1.
        assert_eq!(t[0], vec![0, 0]);
        assert_eq!(t[1], vec![1, 0]);
        assert_eq!(t[2], vec![2, 0]);
    }
}
