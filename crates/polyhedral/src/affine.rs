//! Affine expressions over loop iterators.
//!
//! An affine expression `c0·i0 + c1·i1 + … + c(n-1)·i(n-1) + k` is the
//! basic building block of the polyhedral model: loop bounds, the rows of
//! an access matrix `Q`, and the offset vector `q̄` are all affine in the
//! surrounding iterators.

use std::fmt;

/// An affine expression over the iterators of an `n`-deep loop nest,
/// optionally reduced modulo a constant.
///
/// `coeffs[j]` multiplies iterator `i_j` (outermost first); `constant` is
/// the additive term. Expressions are evaluated against iteration points
/// (`&[i64]`) whose length must be at least the number of coefficients.
///
/// The optional `modulus` supports quasi-affine subscripts like the
/// `A[i % d]` of the paper's Figure 6 example and the periodic-boundary
/// accesses of lattice codes — the "irregular data access patterns" the
/// paper's conclusion names as the next extension. A modular expression
/// evaluates to the mathematical (non-negative) remainder.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AffineExpr {
    coeffs: Vec<i64>,
    constant: i64,
    modulus: Option<i64>,
}

impl AffineExpr {
    /// A constant expression `k` (no iterator terms).
    pub fn constant(k: i64) -> Self {
        AffineExpr {
            coeffs: Vec::new(),
            constant: k,
            modulus: None,
        }
    }

    /// The expression `i_j` (single iterator, unit coefficient).
    pub fn var(j: usize) -> Self {
        let mut coeffs = vec![0; j + 1];
        coeffs[j] = 1;
        AffineExpr {
            coeffs,
            constant: 0,
            modulus: None,
        }
    }

    /// The expression `i_j + k`.
    pub fn var_plus(j: usize, k: i64) -> Self {
        let mut e = Self::var(j);
        e.constant = k;
        e
    }

    /// Builds an expression from explicit coefficients and constant.
    pub fn new(coeffs: Vec<i64>, constant: i64) -> Self {
        AffineExpr {
            coeffs,
            constant,
            modulus: None,
        }
    }

    /// Returns `self mod m` (quasi-affine subscript, e.g. `A[i % d]`).
    ///
    /// # Panics
    /// Panics if `m <= 0`.
    pub fn with_mod(mut self, m: i64) -> Self {
        assert!(m > 0, "modulus must be positive, got {m}");
        self.modulus = Some(m);
        self
    }

    /// The modulus, if this is a quasi-affine (modular) expression.
    pub fn modulus(&self) -> Option<i64> {
        self.modulus
    }

    /// The coefficient of iterator `i_j` (0 if beyond stored terms).
    pub fn coeff(&self, j: usize) -> i64 {
        self.coeffs.get(j).copied().unwrap_or(0)
    }

    /// The additive constant `k`.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Number of explicitly stored coefficients (trailing zeros may be
    /// omitted).
    pub fn num_coeffs(&self) -> usize {
        self.coeffs.len()
    }

    /// Index of the innermost iterator with a non-zero coefficient, or
    /// `None` for a constant expression.
    pub fn max_var(&self) -> Option<usize> {
        self.coeffs.iter().rposition(|&c| c != 0)
    }

    /// True if no iterator has a non-zero coefficient.
    pub fn is_constant(&self) -> bool {
        self.max_var().is_none()
    }

    /// Evaluates at an iteration point.
    ///
    /// # Panics
    /// Panics if the point is shorter than the highest referenced iterator.
    #[inline]
    pub fn eval(&self, point: &[i64]) -> i64 {
        let mut acc = self.constant;
        for (j, &c) in self.coeffs.iter().enumerate() {
            if c != 0 {
                acc += c * point[j];
            }
        }
        match self.modulus {
            Some(m) => acc.rem_euclid(m),
            None => acc,
        }
    }

    /// Returns `self` with every coefficient and the constant scaled by `s`.
    ///
    /// # Panics
    /// Panics on modular expressions (scaling does not commute with the
    /// reduction).
    pub fn scaled(&self, s: i64) -> Self {
        assert!(self.modulus.is_none(), "cannot scale a modular expression");
        AffineExpr {
            coeffs: self.coeffs.iter().map(|c| c * s).collect(),
            constant: self.constant * s,
            modulus: None,
        }
    }

    /// Returns `self + other` (component-wise).
    ///
    /// # Panics
    /// Panics on modular expressions (addition does not commute with the
    /// reduction).
    pub fn plus(&self, other: &AffineExpr) -> Self {
        assert!(
            self.modulus.is_none() && other.modulus.is_none(),
            "cannot add modular expressions"
        );
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = vec![0i64; n];
        for (j, c) in coeffs.iter_mut().enumerate() {
            *c = self.coeff(j) + other.coeff(j);
        }
        AffineExpr {
            coeffs,
            constant: self.constant + other.constant,
            modulus: None,
        }
    }

    /// Returns `self` with iterators renumbered through `perm`:
    /// new iterator `perm[j]` takes the role of old iterator `j`.
    ///
    /// Used when permuting loops: a bound/access written against the old
    /// loop order is rewritten against the new order.
    ///
    /// # Panics
    /// Panics if `perm` is shorter than the stored coefficients.
    pub fn remap(&self, perm: &[usize]) -> Self {
        let mut coeffs = vec![0i64; perm.iter().copied().max().map_or(0, |m| m + 1)];
        for (j, &c) in self.coeffs.iter().enumerate() {
            if c != 0 {
                let nj = perm[j];
                if nj >= coeffs.len() {
                    coeffs.resize(nj + 1, 0);
                }
                coeffs[nj] += c;
            }
        }
        AffineExpr {
            coeffs,
            constant: self.constant,
            modulus: self.modulus,
        }
    }
}

impl fmt::Debug for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (j, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            if c == 1 {
                write!(f, "i{j}")?;
            } else {
                write!(f, "{c}*i{j}")?;
            }
            first = false;
        }
        if first || self.constant != 0 {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{}", self.constant)?;
        }
        if let Some(m) = self.modulus {
            write!(f, " mod {m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_eval() {
        let e = AffineExpr::constant(7);
        assert_eq!(e.eval(&[1, 2, 3]), 7);
        assert!(e.is_constant());
        assert_eq!(e.max_var(), None);
    }

    #[test]
    fn var_plus_eval() {
        // A[i1 - 1] style subscript.
        let e = AffineExpr::var_plus(0, -1);
        assert_eq!(e.eval(&[5]), 4);
        assert_eq!(e.coeff(0), 1);
        assert_eq!(e.constant_term(), -1);
    }

    #[test]
    fn general_eval() {
        // 2*i0 + 3*i2 + 4
        let e = AffineExpr::new(vec![2, 0, 3], 4);
        assert_eq!(e.eval(&[1, 99, 2]), 2 + 6 + 4);
        assert_eq!(e.max_var(), Some(2));
    }

    #[test]
    fn plus_and_scaled() {
        let a = AffineExpr::new(vec![1, 2], 3);
        let b = AffineExpr::new(vec![0, 1, 1], -1);
        let s = a.plus(&b);
        assert_eq!(s.eval(&[1, 1, 1]), a.eval(&[1, 1, 1]) + b.eval(&[1, 1, 1]));
        let d = a.scaled(-2);
        assert_eq!(d.eval(&[1, 1]), -2 * a.eval(&[1, 1]));
    }

    #[test]
    fn remap_permutes_iterators() {
        // e = i0 + 2*i1; swap loops 0 and 1.
        let e = AffineExpr::new(vec![1, 2], 0);
        let r = e.remap(&[1, 0]);
        // Under the new order, old i0 is new i1 and vice versa.
        assert_eq!(r.eval(&[10, 20]), 20 + 2 * 10);
    }

    #[test]
    fn debug_format_readable() {
        let e = AffineExpr::new(vec![1, 0, -3], 5);
        let s = format!("{e:?}");
        assert!(s.contains("i0"), "{s}");
        assert!(s.contains("-3*i2"), "{s}");
        assert!(s.contains('5'), "{s}");
    }
}

#[cfg(test)]
mod mod_tests {
    use super::*;

    #[test]
    fn modular_eval_wraps_non_negatively() {
        // A[i % 4] — the Figure 6 subscript.
        let e = AffineExpr::var(0).with_mod(4);
        assert_eq!(e.eval(&[0]), 0);
        assert_eq!(e.eval(&[3]), 3);
        assert_eq!(e.eval(&[4]), 0);
        assert_eq!(e.eval(&[11]), 3);
        assert_eq!(e.modulus(), Some(4));
    }

    #[test]
    fn modular_eval_of_negative_values() {
        // (i - 5) mod 4 at i = 0 → (-5).rem_euclid(4) = 3.
        let e = AffineExpr::var_plus(0, -5).with_mod(4);
        assert_eq!(e.eval(&[0]), 3);
    }

    #[test]
    fn remap_preserves_modulus() {
        let e = AffineExpr::var(0).with_mod(7);
        let r = e.remap(&[1, 0]);
        assert_eq!(r.modulus(), Some(7));
        assert_eq!(r.eval(&[0, 9]), 2);
    }

    #[test]
    #[should_panic(expected = "cannot scale")]
    fn scaled_rejects_modular() {
        AffineExpr::var(0).with_mod(4).scaled(2);
    }

    #[test]
    #[should_panic(expected = "modulus must be positive")]
    fn zero_modulus_rejected() {
        AffineExpr::var(0).with_mod(0);
    }

    #[test]
    fn debug_shows_modulus() {
        let e = AffineExpr::var(0).with_mod(12);
        assert!(format!("{e:?}").contains("mod 12"));
    }
}
