//! Polyhedral loop-nest substrate for `cachemap`.
//!
//! The HPDC'10 paper represents loops, disk-resident arrays, and array
//! references in a polyhedral model (Section 4.1) and manipulates them
//! with the Omega Library. Neither a Rust Omega binding nor a polyhedral
//! compiler ecosystem exists, so this crate is the substitute substrate:
//!
//! * [`affine`] — affine expressions over loop iterators (`Q·i + q̄` rows);
//! * [`space`] — iteration spaces `G = {(i1,…,in) | L_k ≤ i_k ≤ U_k}` with
//!   (possibly non-rectangular) affine bounds and lexicographic point
//!   enumeration — the `codegen(.)` equivalent;
//! * [`array`] — disk-resident array declarations and row-major
//!   linearization;
//! * [`access`] — array references `R(i) = Q·i + q̄` with read/write kind;
//! * [`nest`] — loop nests and whole programs (multiple nests over a
//!   shared set of arrays);
//! * [`chunking`] — the data space of Figure 4: every array partitioned
//!   into equal-sized chunks, numbered globally across arrays;
//! * [`deps`] — data-dependence analysis (GCD and Banerjee tests, exact
//!   small-scale enumeration, distance/direction vectors);
//! * [`transform`] — loop permutation and tiling traversals, the substrate
//!   for the paper's "intra-processor" state-of-the-art locality baseline.
//!
//! Everything is deterministic and pure; the crate has no notion of
//! processors or caches — that lives in `cachemap-storage` and
//! `cachemap-core`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod access;
pub mod affine;
pub mod array;
pub mod chunking;
pub mod deps;
pub mod nest;
pub mod space;
pub mod transform;
pub mod wire;

pub use access::{AccessKind, ArrayRef};
pub use affine::AffineExpr;
pub use array::{ArrayDecl, ArrayId};
pub use chunking::{ChunkId, DataSpace};
pub use nest::{LoopNest, Program};
pub use space::{IterationSpace, Loop, Point};
pub use wire::WireError;
