//! Data-dependence analysis.
//!
//! Section 5.4 of the paper extends the mapping scheme to loops with
//! cross-iteration dependences: dependences either force iteration chunks
//! into the same cluster or are treated as data sharing, with explicit
//! synchronization inserted at scheduling time. Either way the mapper
//! needs to know *which* iterations depend on each other. This module
//! provides the three classic layers:
//!
//! 1. [`gcd_test`] — fast may-depend filter on subscript coefficients;
//! 2. [`banerjee_test`] — bounds-based may-depend filter for rectangular
//!    spaces;
//! 3. [`exact_dependences`] — precise distance vectors by scanning the
//!    iteration space once and tracking, per array element, the last
//!    write and last read (adjacent dependence pairs — enough to derive
//!    direction vectors and permutation legality).

use crate::access::{AccessKind, ArrayRef};
use crate::array::ArrayDecl;
use crate::nest::LoopNest;
use cachemap_util::FxHashMap;

/// Kind of a data dependence between two references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DependenceKind {
    /// Write then read (true/flow dependence).
    Flow,
    /// Read then write (anti dependence).
    Anti,
    /// Write then write (output dependence).
    Output,
}

/// A dependence distance vector `σ2 - σ1` between two iterations
/// `σ1 <lex σ2` that touch the same element (with at least one write).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Dependence {
    /// Distance per loop level, outermost first.
    pub distance: Vec<i64>,
    /// Flow, anti, or output.
    pub kind: DependenceKind,
}

impl Dependence {
    /// The outermost loop level carrying the dependence (first non-zero
    /// distance entry), or `None` for a loop-independent dependence
    /// (all-zero distance).
    pub fn carried_level(&self) -> Option<usize> {
        self.distance.iter().position(|&d| d != 0)
    }

    /// True if the dependence is loop-independent (same iteration).
    pub fn loop_independent(&self) -> bool {
        self.distance.iter().all(|&d| d == 0)
    }
}

/// Direction of a dependence distance at one loop level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Distance `< 0`.
    Lt,
    /// Distance `= 0`.
    Eq,
    /// Distance `> 0`.
    Gt,
}

/// Converts a distance vector to its direction vector.
pub fn direction_vector(distance: &[i64]) -> Vec<Direction> {
    distance
        .iter()
        .map(|&d| match d.cmp(&0) {
            std::cmp::Ordering::Less => Direction::Lt,
            std::cmp::Ordering::Equal => Direction::Eq,
            std::cmp::Ordering::Greater => Direction::Gt,
        })
        .collect()
}

/// Greatest common divisor (non-negative; `gcd(0, 0) = 0`).
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// GCD dependence test between two references to the same array.
///
/// Returns `true` if a dependence **may** exist: for every array
/// dimension, the linear Diophantine equation
/// `Σ a_k·σ1_k − Σ b_k·σ2_k = c_b − c_a` has an integer solution, i.e.
/// the gcd of all coefficients divides the constant difference. A `false`
/// result proves independence; bounds are ignored, so `true` may be
/// conservative.
pub fn gcd_test(a: &ArrayRef, b: &ArrayRef, depth: usize) -> bool {
    if a.array != b.array {
        return false;
    }
    for (ea, eb) in a.subscripts.iter().zip(&b.subscripts) {
        // Quasi-affine (modular) subscripts wrap around; conservatively
        // assume the dimension can always coincide.
        if ea.modulus().is_some() || eb.modulus().is_some() {
            continue;
        }
        let mut g = 0i64;
        for k in 0..depth {
            g = gcd(g, ea.coeff(k));
            g = gcd(g, eb.coeff(k));
        }
        let rhs = eb.constant_term() - ea.constant_term();
        if g == 0 {
            // No iterator terms: dependence in this dimension requires the
            // constants to match exactly.
            if rhs != 0 {
                return false;
            }
        } else if rhs % g != 0 {
            return false;
        }
    }
    true
}

/// Banerjee dependence test between two references over a rectangular
/// space given as inclusive per-level bounds.
///
/// For every array dimension, computes the attainable `[min, max]` of
/// `R_a(σ1) − R_b(σ2)` over independent `σ1, σ2` in bounds, and requires
/// `0 ∈ [min, max]`. A `false` result proves independence.
pub fn banerjee_test(a: &ArrayRef, b: &ArrayRef, bounds: &[(i64, i64)]) -> bool {
    if a.array != b.array {
        return false;
    }
    for (ea, eb) in a.subscripts.iter().zip(&b.subscripts) {
        // A modular subscript's value ranges over [0, m); compute each
        // side's attainable interval separately and test the difference.
        let range_of = |e: &crate::affine::AffineExpr| -> (i64, i64) {
            let (mut lo_v, mut hi_v) = (e.constant_term(), e.constant_term());
            for (k, &(lo, hi)) in bounds.iter().enumerate() {
                let c = e.coeff(k);
                if c >= 0 {
                    lo_v += c * lo;
                    hi_v += c * hi;
                } else {
                    lo_v += c * hi;
                    hi_v += c * lo;
                }
            }
            match e.modulus() {
                // If the affine range already fits inside [0, m) the
                // reduction is the identity; otherwise it wraps over the
                // whole residue range.
                Some(m) if lo_v < 0 || hi_v >= m => (0, m - 1),
                _ => (lo_v, hi_v),
            }
        };
        let (a_lo, a_hi) = range_of(ea);
        let (b_lo, b_hi) = range_of(eb);
        let min = a_lo - b_hi;
        let max = a_hi - b_lo;
        if min > 0 || max < 0 {
            return false;
        }
    }
    true
}

/// Exact dependence analysis of one nest by iteration-space scan.
///
/// Walks the space in lexicographic (program) order keeping, per array
/// element, the last writing iteration and the last reading iteration.
/// Each access then yields the *adjacent* dependence pairs:
///
/// * read  after write  → [`Flow`](DependenceKind::Flow)
/// * write after read   → [`Anti`](DependenceKind::Anti)
/// * write after write  → [`Output`](DependenceKind::Output)
///
/// Distance vectors are deduplicated. Adjacent pairs are sufficient to
/// derive the direction vectors that govern transformation legality
/// (longer-range dependences are transitive compositions of adjacent
/// ones for the single-assignment-free nests we model).
pub fn exact_dependences(nest: &LoopNest, arrays: &[ArrayDecl]) -> Vec<Dependence> {
    #[derive(Default, Clone)]
    struct LastTouch {
        write: Option<Vec<i64>>,
        read: Option<Vec<i64>>,
    }

    let mut last: FxHashMap<(usize, u64), LastTouch> = FxHashMap::default();
    let mut seen: std::collections::HashSet<Dependence> = std::collections::HashSet::new();

    for point in nest.space.iter() {
        for r in &nest.refs {
            let lin = r.eval_linear(&point, &arrays[r.array]);
            let entry = last.entry((r.array, lin)).or_default();
            match r.kind {
                AccessKind::Read => {
                    if let Some(w) = &entry.write {
                        let distance: Vec<i64> = point.iter().zip(w).map(|(c, p)| c - p).collect();
                        seen.insert(Dependence {
                            distance,
                            kind: DependenceKind::Flow,
                        });
                    }
                    entry.read = Some(point.clone());
                }
                AccessKind::Write => {
                    if let Some(rd) = &entry.read {
                        let distance: Vec<i64> = point.iter().zip(rd).map(|(c, p)| c - p).collect();
                        // A read and write at the same iteration is not an
                        // anti dependence unless the read came textually
                        // first, which our scan order already guarantees;
                        // zero-distance anti deps within one iteration do
                        // not constrain mapping, so keep them only if
                        // non-zero.
                        if distance.iter().any(|&d| d != 0) {
                            seen.insert(Dependence {
                                distance,
                                kind: DependenceKind::Anti,
                            });
                        }
                    }
                    if let Some(w) = &entry.write {
                        let distance: Vec<i64> = point.iter().zip(w).map(|(c, p)| c - p).collect();
                        if distance.iter().any(|&d| d != 0) {
                            seen.insert(Dependence {
                                distance,
                                kind: DependenceKind::Output,
                            });
                        }
                    }
                    entry.write = Some(point.clone());
                }
            }
        }
    }

    let mut out: Vec<Dependence> = seen.into_iter().collect();
    out.sort_by(|a, b| {
        a.distance
            .cmp(&b.distance)
            .then_with(|| format!("{:?}", a.kind).cmp(&format!("{:?}", b.kind)))
    });
    out
}

/// True if the loop at `level` carries no dependence — i.e. it can be
/// parallelized without synchronization (the default parallelization
/// strategy of Section 3 parallelizes the outermost such loop).
pub fn level_is_parallel(deps: &[Dependence], level: usize) -> bool {
    deps.iter().all(|d| d.carried_level() != Some(level))
}

/// The outermost loop level that carries no dependence, if any.
pub fn outermost_parallel_level(deps: &[Dependence], depth: usize) -> Option<usize> {
    (0..depth).find(|&l| level_is_parallel(deps, l))
}

/// True if permuting the loops by `perm` (new position `j` holds old loop
/// `perm[j]`) keeps every dependence direction vector lexicographically
/// positive — the classical legality condition for loop permutation.
pub fn permutation_is_legal(deps: &[Dependence], perm: &[usize]) -> bool {
    deps.iter().all(|d| {
        for &old in perm {
            match d.distance[old].cmp(&0) {
                std::cmp::Ordering::Greater => return true,
                std::cmp::Ordering::Less => return false,
                std::cmp::Ordering::Equal => {}
            }
        }
        true // all-zero stays legal
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AffineExpr;
    use crate::space::IterationSpace;

    fn refs_1d(read_off: i64, write_off: i64) -> (ArrayRef, ArrayRef) {
        (
            ArrayRef::read(0, vec![AffineExpr::var_plus(0, read_off)]),
            ArrayRef::write(0, vec![AffineExpr::var_plus(0, write_off)]),
        )
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(12, 8), 4);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(-6, 4), 2);
    }

    #[test]
    fn gcd_test_detects_possible_dependence() {
        // A[i] and A[i-1]: gcd(1,1)=1 divides 1 → may depend.
        let (r, w) = refs_1d(0, -1);
        assert!(gcd_test(&w, &r, 1));
    }

    #[test]
    fn gcd_test_proves_independence() {
        // A[2i] and A[2i+1]: gcd(2,2)=2 does not divide 1 → independent.
        let a = ArrayRef::write(0, vec![AffineExpr::new(vec![2], 0)]);
        let b = ArrayRef::read(0, vec![AffineExpr::new(vec![2], 1)]);
        assert!(!gcd_test(&a, &b, 1));
    }

    #[test]
    fn gcd_test_different_arrays_independent() {
        let a = ArrayRef::write(0, vec![AffineExpr::var(0)]);
        let b = ArrayRef::read(1, vec![AffineExpr::var(0)]);
        assert!(!gcd_test(&a, &b, 1));
    }

    #[test]
    fn banerjee_respects_bounds() {
        // A[i] written, A[i+100] read, i in 0..=9: offsets never overlap.
        let (_, w) = refs_1d(0, 0);
        let r_far = ArrayRef::read(0, vec![AffineExpr::var_plus(0, 100)]);
        assert!(!banerjee_test(&w, &r_far, &[(0, 9)]));
        // But A[i+5] read does overlap.
        let r_near = ArrayRef::read(0, vec![AffineExpr::var_plus(0, 5)]);
        assert!(banerjee_test(&w, &r_near, &[(0, 9)]));
    }

    #[test]
    fn exact_flow_dependence_distance() {
        // for i: A[i] = A[i-1]: flow dependence with distance 1.
        let arrays = vec![ArrayDecl::new("A", vec![16], 8)];
        let space = IterationSpace::new(vec![crate::space::Loop::constant(1, 15)]);
        let nest = LoopNest::new(
            "rec",
            space,
            vec![
                ArrayRef::read(0, vec![AffineExpr::var_plus(0, -1)]),
                ArrayRef::write(0, vec![AffineExpr::var(0)]),
            ],
        );
        let deps = exact_dependences(&nest, &arrays);
        assert!(deps
            .iter()
            .any(|d| d.kind == DependenceKind::Flow && d.distance == vec![1]));
        assert!(!level_is_parallel(&deps, 0));
        assert_eq!(outermost_parallel_level(&deps, 1), None);
    }

    #[test]
    fn exact_no_dependence_for_disjoint_accesses() {
        let arrays = vec![
            ArrayDecl::new("A", vec![16], 8),
            ArrayDecl::new("B", vec![16], 8),
        ];
        let space = IterationSpace::rectangular(&[16]);
        let nest = LoopNest::new(
            "copy",
            space,
            vec![
                ArrayRef::read(0, vec![AffineExpr::var(0)]),
                ArrayRef::write(1, vec![AffineExpr::var(0)]),
            ],
        );
        let deps = exact_dependences(&nest, &arrays);
        assert!(deps.is_empty());
        assert!(level_is_parallel(&deps, 0));
        assert_eq!(outermost_parallel_level(&deps, 1), Some(0));
    }

    #[test]
    fn exact_2d_stencil_dependence() {
        // A[i][j] = A[i-1][j]: carried by outer loop, distance (1, 0).
        let arrays = vec![ArrayDecl::new("A", vec![8, 8], 8)];
        let space = IterationSpace::new(vec![
            crate::space::Loop::constant(1, 7),
            crate::space::Loop::constant(0, 7),
        ]);
        let nest = LoopNest::new(
            "stencil",
            space,
            vec![
                ArrayRef::read(0, vec![AffineExpr::var_plus(0, -1), AffineExpr::var(1)]),
                ArrayRef::write(0, vec![AffineExpr::var(0), AffineExpr::var(1)]),
            ],
        );
        let deps = exact_dependences(&nest, &arrays);
        assert!(deps
            .iter()
            .any(|d| d.kind == DependenceKind::Flow && d.distance == vec![1, 0]));
        // Outer loop carries it; inner loop is parallel.
        assert!(!level_is_parallel(&deps, 0));
        assert!(level_is_parallel(&deps, 1));
        assert_eq!(outermost_parallel_level(&deps, 2), Some(1));
    }

    #[test]
    fn direction_vectors_and_permutation_legality() {
        let d = Dependence {
            distance: vec![1, -1],
            kind: DependenceKind::Flow,
        };
        assert_eq!(
            direction_vector(&d.distance),
            vec![Direction::Gt, Direction::Lt]
        );
        // Identity order: (1,-1) is lex-positive → legal.
        assert!(permutation_is_legal(std::slice::from_ref(&d), &[0, 1]));
        // Swapped order: (-1,1) is lex-negative → illegal.
        assert!(!permutation_is_legal(&[d], &[1, 0]));
    }

    #[test]
    fn loop_independent_dependences_allow_any_permutation() {
        let d = Dependence {
            distance: vec![0, 0],
            kind: DependenceKind::Flow,
        };
        assert!(d.loop_independent());
        assert_eq!(d.carried_level(), None);
        assert!(permutation_is_legal(std::slice::from_ref(&d), &[1, 0]));
    }

    #[test]
    fn anti_dependence_detected() {
        // for i: A[i-1] = A[i] reversed: read A[i+1], write A[i] → anti
        // dependence distance 1.
        let arrays = vec![ArrayDecl::new("A", vec![16], 8)];
        let space = IterationSpace::new(vec![crate::space::Loop::constant(0, 14)]);
        let nest = LoopNest::new(
            "anti",
            space,
            vec![
                ArrayRef::read(0, vec![AffineExpr::var_plus(0, 1)]),
                ArrayRef::write(0, vec![AffineExpr::var(0)]),
            ],
        );
        let deps = exact_dependences(&nest, &arrays);
        assert!(deps
            .iter()
            .any(|d| d.kind == DependenceKind::Anti && d.distance == vec![1]));
    }
}

#[cfg(test)]
mod mod_dep_tests {
    use super::*;
    use crate::access::ArrayRef;
    use crate::affine::AffineExpr;

    #[test]
    fn gcd_test_is_conservative_for_modular_subscripts() {
        // A[2i] vs A[(2i+1) % 8]: the wrap makes them potentially
        // coincide, so the test must not prove independence.
        let a = ArrayRef::write(0, vec![AffineExpr::new(vec![2], 0)]);
        let b = ArrayRef::read(0, vec![AffineExpr::new(vec![2], 1).with_mod(8)]);
        assert!(gcd_test(&a, &b, 1));
    }

    #[test]
    fn banerjee_uses_residue_range_for_wrapping_subscripts() {
        // A[i % 4] ranges over [0, 3]; a write to A[i + 100] over
        // i in 0..=9 can never touch it.
        let wrapped = ArrayRef::read(0, vec![AffineExpr::var(0).with_mod(4)]);
        let far = ArrayRef::write(0, vec![AffineExpr::var_plus(0, 100)]);
        assert!(!banerjee_test(&far, &wrapped, &[(0, 9)]));
        // But a write to A[i] does overlap the residue range.
        let near = ArrayRef::write(0, vec![AffineExpr::var(0)]);
        assert!(banerjee_test(&near, &wrapped, &[(0, 9)]));
    }

    #[test]
    fn banerjee_keeps_identity_when_range_fits_modulus() {
        // i in 0..=3 under mod 100: no wrap, behaves affinely.
        let a = ArrayRef::write(0, vec![AffineExpr::var(0).with_mod(100)]);
        let b = ArrayRef::read(0, vec![AffineExpr::var_plus(0, 50)]);
        assert!(!banerjee_test(&a, &b, &[(0, 3)]));
    }

    #[test]
    fn exact_dependences_see_through_modular_wrap() {
        // for i in 0..8: A[i % 4] = A[i % 4] + 1 — every element is
        // rewritten when the subscript wraps (distance 4 output deps).
        let arrays = vec![crate::array::ArrayDecl::new("A", vec![4], 8)];
        let space = crate::space::IterationSpace::rectangular(&[8]);
        let nest = crate::nest::LoopNest::new(
            "wrap",
            space,
            vec![
                ArrayRef::read(0, vec![AffineExpr::var(0).with_mod(4)]),
                ArrayRef::write(0, vec![AffineExpr::var(0).with_mod(4)]),
            ],
        );
        let deps = exact_dependences(&nest, &arrays);
        assert!(deps
            .iter()
            .any(|d| d.kind == DependenceKind::Output && d.distance == vec![4]));
    }
}
