//! Loop nests and programs.
//!
//! A [`LoopNest`] couples an iteration space with the array references in
//! the loop body; a [`Program`] is a set of nests over a shared array
//! environment. The mapper of `cachemap-core` consumes these directly —
//! this is the compiler-IR substitute for the paper's Phoenix front end.

use crate::access::ArrayRef;
use crate::array::{ArrayDecl, ArrayId};
use crate::space::{IterationSpace, Point};

/// A loop nest: an iteration space plus the references executed at each
/// iteration, and a per-iteration compute cost used by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopNest {
    /// Name for reports and debugging.
    pub name: String,
    /// The iteration space `G`.
    pub space: IterationSpace,
    /// Array references in the loop body (in program order).
    pub refs: Vec<ArrayRef>,
    /// Pure-compute time per iteration in simulated microseconds
    /// (work done between I/O accesses).
    pub compute_us: f64,
}

impl LoopNest {
    /// Creates a nest with the given space and references.
    pub fn new(name: impl Into<String>, space: IterationSpace, refs: Vec<ArrayRef>) -> Self {
        LoopNest {
            name: name.into(),
            space,
            refs,
            compute_us: 1.0,
        }
    }

    /// Sets the per-iteration compute cost (builder style).
    pub fn with_compute_us(mut self, us: f64) -> Self {
        assert!(us >= 0.0, "compute cost must be non-negative");
        self.compute_us = us;
        self
    }

    /// Nest depth.
    pub fn depth(&self) -> usize {
        self.space.depth()
    }

    /// Number of iterations.
    pub fn num_iterations(&self) -> u64 {
        self.space.size()
    }

    /// All (array, linear element) pairs touched at one iteration, in
    /// reference program order.
    pub fn touched_elements(&self, point: &Point, arrays: &[ArrayDecl]) -> Vec<(ArrayId, u64)> {
        self.refs
            .iter()
            .map(|r| (r.array, r.eval_linear(point, &arrays[r.array])))
            .collect()
    }

    /// Validates that every reference stays in bounds over the whole
    /// space. Used by workload definitions in tests (O(iterations·refs)).
    pub fn validate_bounds(&self, arrays: &[ArrayDecl]) -> Result<(), String> {
        for point in self.space.iter() {
            for (ri, r) in self.refs.iter().enumerate() {
                let decl = arrays
                    .get(r.array)
                    .ok_or_else(|| format!("reference {ri} targets unknown array {}", r.array))?;
                if !r.in_bounds_at(&point, decl) {
                    return Err(format!(
                        "nest {}: reference {ri} out of bounds at iteration {point:?} (index {:?}, array {} dims {:?})",
                        self.name,
                        r.eval(&point),
                        decl.name,
                        decl.dims
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A program: arrays plus one or more loop nests over them.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Name for reports.
    pub name: String,
    /// Array environment; [`ArrayId`]s index into this.
    pub arrays: Vec<ArrayDecl>,
    /// The loop nests, in program order.
    pub nests: Vec<LoopNest>,
}

impl Program {
    /// Creates a program.
    pub fn new(name: impl Into<String>, arrays: Vec<ArrayDecl>, nests: Vec<LoopNest>) -> Self {
        let p = Program {
            name: name.into(),
            arrays,
            nests,
        };
        for n in &p.nests {
            for r in &n.refs {
                assert!(
                    r.array < p.arrays.len(),
                    "nest {} references array id {} but only {} arrays are declared",
                    n.name,
                    r.array,
                    p.arrays.len()
                );
            }
        }
        p
    }

    /// Total bytes of all disk-resident arrays.
    pub fn total_data_bytes(&self) -> u64 {
        self.arrays.iter().map(ArrayDecl::size_bytes).sum()
    }

    /// Total iterations across all nests.
    pub fn total_iterations(&self) -> u64 {
        self.nests.iter().map(LoopNest::num_iterations).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AffineExpr;
    use crate::space::Loop;

    fn small_program() -> Program {
        let a = ArrayDecl::new("A", vec![8, 8], 8);
        let space = IterationSpace::rectangular(&[8, 8]);
        let r = ArrayRef::read(0, vec![AffineExpr::var(0), AffineExpr::var(1)]);
        let w = ArrayRef::write(0, vec![AffineExpr::var(0), AffineExpr::var(1)]);
        Program::new(
            "p",
            vec![a],
            vec![LoopNest::new("n0", space, vec![r, w]).with_compute_us(2.0)],
        )
    }

    #[test]
    fn program_counts() {
        let p = small_program();
        assert_eq!(p.total_iterations(), 64);
        assert_eq!(p.total_data_bytes(), 8 * 8 * 8);
        assert_eq!(p.nests[0].compute_us, 2.0);
    }

    #[test]
    fn touched_elements_in_ref_order() {
        let p = small_program();
        let t = p.nests[0].touched_elements(&vec![1, 2], &p.arrays);
        assert_eq!(t, vec![(0, 10), (0, 10)]);
    }

    #[test]
    fn validate_bounds_accepts_good_nest() {
        let p = small_program();
        assert!(p.nests[0].validate_bounds(&p.arrays).is_ok());
    }

    #[test]
    fn validate_bounds_reports_violation() {
        let a = ArrayDecl::new("A", vec![4], 8);
        let space = IterationSpace::rectangular(&[4]);
        // A[i + 1] runs off the end at i = 3.
        let r = ArrayRef::read(0, vec![AffineExpr::var_plus(0, 1)]);
        let nest = LoopNest::new("bad", space, vec![r]);
        let err = nest.validate_bounds(&[a]).unwrap_err();
        assert!(err.contains("out of bounds"), "{err}");
    }

    #[test]
    #[should_panic(expected = "references array id")]
    fn program_rejects_dangling_array_id() {
        let space = IterationSpace::rectangular(&[2]);
        let r = ArrayRef::read(3, vec![AffineExpr::var(0)]);
        let nest = LoopNest::new("n", space, vec![r]);
        // Panics inside validate via Program::new assertion.
        let p = Program::new("p", vec![], vec![nest]);
        let _ = p;
    }

    #[test]
    fn triangular_nest_size() {
        let a = ArrayDecl::new("A", vec![6], 8);
        let space = IterationSpace::new(vec![
            Loop::constant(0, 4),
            Loop::new(AffineExpr::constant(0), AffineExpr::var(0)),
        ]);
        let r = ArrayRef::read(0, vec![AffineExpr::var(1)]);
        let nest = LoopNest::new("tri", space, vec![r]);
        assert_eq!(nest.num_iterations(), 15);
        assert!(nest.validate_bounds(&[a]).is_ok());
    }
}
