//! The chunked data space of Figure 4.
//!
//! The paper divides the combined data space of all disk-resident arrays
//! into `r` equal-sized chunks `π_0 … π_(r-1)`. Chunks never cross array
//! boundaries — each array is partitioned separately — but chunk labels
//! increase contiguously from the last chunk of array `t` to the first
//! chunk of array `t+1`.
//!
//! [`DataSpace`] owns that numbering and maps `(array, element)` pairs to
//! global [`ChunkId`]s; it is the bridge between the polyhedral view of a
//! program and both the tagging machinery of `cachemap-core` and the
//! cache simulator of `cachemap-storage`.

use crate::array::{ArrayDecl, ArrayId};

/// Global index of a data chunk `π_k` in the combined data space.
pub type ChunkId = usize;

/// The combined, chunked data space of a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSpace {
    chunk_bytes: u64,
    /// First global chunk id of each array, plus a final sentinel equal to
    /// the total chunk count.
    base: Vec<ChunkId>,
    /// Element size per array (cached from the declarations).
    elem_sizes: Vec<u64>,
}

impl DataSpace {
    /// Builds the chunked data space for a set of arrays.
    ///
    /// `chunk_bytes` is the data chunk size (64 KB by default in the
    /// paper's Table 1, swept in Figure 14). The last chunk of an array
    /// may be partially filled; per Figure 4 it still occupies its own
    /// chunk label.
    ///
    /// # Panics
    /// Panics if `chunk_bytes` is zero.
    pub fn new(arrays: &[ArrayDecl], chunk_bytes: u64) -> Self {
        assert!(chunk_bytes > 0, "chunk size must be positive");
        let mut base = Vec::with_capacity(arrays.len() + 1);
        let mut next = 0usize;
        for a in arrays {
            base.push(next);
            let chunks = a.size_bytes().div_ceil(chunk_bytes);
            next += chunks as usize;
        }
        base.push(next);
        DataSpace {
            chunk_bytes,
            base,
            elem_sizes: arrays.iter().map(|a| a.elem_size).collect(),
        }
    }

    /// The chunk size in bytes.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_bytes
    }

    /// Total number of chunks `r` across all arrays.
    pub fn num_chunks(&self) -> usize {
        *self.base.last().unwrap_or(&0)
    }

    /// Number of arrays in the data space.
    pub fn num_arrays(&self) -> usize {
        self.elem_sizes.len()
    }

    /// First global chunk id of `array`.
    pub fn array_base(&self, array: ArrayId) -> ChunkId {
        self.base[array]
    }

    /// Number of chunks occupied by `array`.
    pub fn array_chunks(&self, array: ArrayId) -> usize {
        self.base[array + 1] - self.base[array]
    }

    /// Maps a linear element of an array to its global chunk id.
    ///
    /// # Panics
    /// Panics if the computed chunk falls outside the array's range
    /// (i.e. the element index was out of bounds).
    pub fn chunk_of(&self, array: ArrayId, linear_elem: u64) -> ChunkId {
        let byte = linear_elem * self.elem_sizes[array];
        let local = (byte / self.chunk_bytes) as usize;
        let id = self.base[array] + local;
        assert!(
            id < self.base[array + 1],
            "element {linear_elem} of array {array} beyond its chunk range"
        );
        id
    }

    /// Inverse lookup: which array owns a global chunk id.
    ///
    /// # Panics
    /// Panics if `chunk` is out of range.
    pub fn array_of_chunk(&self, chunk: ChunkId) -> ArrayId {
        assert!(chunk < self.num_chunks(), "chunk {chunk} out of range");
        // base is sorted; partition_point finds the owning array.
        self.base.partition_point(|&b| b <= chunk) - 1
    }

    /// Number of elements of `array` that fit in one chunk (at least 1).
    pub fn elems_per_chunk(&self, array: ArrayId) -> u64 {
        (self.chunk_bytes / self.elem_sizes[array]).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_arrays() -> Vec<ArrayDecl> {
        vec![
            ArrayDecl::new("A", vec![100], 8),    // 800 bytes → 4 chunks of 256
            ArrayDecl::new("B", vec![10, 10], 8), // 800 bytes → 4 chunks
        ]
    }

    #[test]
    fn global_numbering_across_arrays() {
        let ds = DataSpace::new(&two_arrays(), 256);
        assert_eq!(ds.num_chunks(), 8);
        assert_eq!(ds.array_base(0), 0);
        assert_eq!(ds.array_base(1), 4);
        assert_eq!(ds.array_chunks(0), 4);
        assert_eq!(ds.array_chunks(1), 4);
    }

    #[test]
    fn chunk_of_element() {
        let ds = DataSpace::new(&two_arrays(), 256);
        // 256 bytes = 32 elements of 8 bytes.
        assert_eq!(ds.chunk_of(0, 0), 0);
        assert_eq!(ds.chunk_of(0, 31), 0);
        assert_eq!(ds.chunk_of(0, 32), 1);
        assert_eq!(ds.chunk_of(0, 99), 3);
        assert_eq!(ds.chunk_of(1, 0), 4);
        assert_eq!(ds.chunk_of(1, 99), 7);
    }

    #[test]
    fn chunks_never_cross_arrays() {
        // Array of 5 elements * 8B = 40 bytes with 64-byte chunks: one
        // partially-filled chunk, and the next array starts a new chunk.
        let arrays = vec![
            ArrayDecl::new("A", vec![5], 8),
            ArrayDecl::new("B", vec![5], 8),
        ];
        let ds = DataSpace::new(&arrays, 64);
        assert_eq!(ds.num_chunks(), 2);
        assert_eq!(ds.chunk_of(0, 4), 0);
        assert_eq!(ds.chunk_of(1, 0), 1);
    }

    #[test]
    fn array_of_chunk_inverse() {
        let ds = DataSpace::new(&two_arrays(), 256);
        for c in 0..4 {
            assert_eq!(ds.array_of_chunk(c), 0);
        }
        for c in 4..8 {
            assert_eq!(ds.array_of_chunk(c), 1);
        }
    }

    #[test]
    fn elems_per_chunk() {
        let ds = DataSpace::new(&two_arrays(), 256);
        assert_eq!(ds.elems_per_chunk(0), 32);
        // Chunk smaller than an element still maps one element per chunk.
        let small = DataSpace::new(&[ArrayDecl::new("A", vec![4], 16)], 8);
        assert_eq!(small.elems_per_chunk(0), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn array_of_chunk_out_of_range() {
        let ds = DataSpace::new(&two_arrays(), 256);
        ds.array_of_chunk(8);
    }
}
