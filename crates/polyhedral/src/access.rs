//! Affine array references `R(i) = Q·i + q̄`.
//!
//! Section 2 of the paper represents each array reference in linear
//! algebraic form: `Q` is the access matrix and `q̄` the offset vector.
//! Here each row of `Q` together with its offset entry is one
//! [`AffineExpr`], so the reference for `A[i1+3, i2-1]` is the pair of
//! expressions `i1 + 3` and `i2 - 1`.

use crate::affine::AffineExpr;
use crate::array::{ArrayDecl, ArrayId};

/// Whether a reference reads or writes its array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Read access (uses).
    Read,
    /// Write access (definitions).
    Write,
}

/// One affine array reference within a loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayRef {
    /// Which array the reference targets.
    pub array: ArrayId,
    /// One affine subscript expression per array dimension (row of `Q`
    /// plus its `q̄` entry).
    pub subscripts: Vec<AffineExpr>,
    /// Read or write.
    pub kind: AccessKind,
}

impl ArrayRef {
    /// Creates a read reference.
    pub fn read(array: ArrayId, subscripts: Vec<AffineExpr>) -> Self {
        ArrayRef {
            array,
            subscripts,
            kind: AccessKind::Read,
        }
    }

    /// Creates a write reference.
    pub fn write(array: ArrayId, subscripts: Vec<AffineExpr>) -> Self {
        ArrayRef {
            array,
            subscripts,
            kind: AccessKind::Write,
        }
    }

    /// Evaluates the subscripts at an iteration point, yielding the array
    /// index touched by this reference at that iteration.
    pub fn eval(&self, point: &[i64]) -> Vec<i64> {
        self.subscripts.iter().map(|e| e.eval(point)).collect()
    }

    /// Evaluates and row-major-linearizes against the array declaration.
    ///
    /// # Panics
    /// Panics if the evaluated index is out of bounds for `decl`.
    pub fn eval_linear(&self, point: &[i64], decl: &ArrayDecl) -> u64 {
        let idx = self.eval(point);
        decl.linearize(&idx)
    }

    /// True if the evaluated index lies within the array bounds.
    pub fn in_bounds_at(&self, point: &[i64], decl: &ArrayDecl) -> bool {
        decl.in_bounds(&self.eval(point))
    }

    /// Rewrites the reference for a permuted loop order (see
    /// [`AffineExpr::remap`]).
    pub fn remap(&self, perm: &[usize]) -> Self {
        ArrayRef {
            array: self.array,
            subscripts: self.subscripts.iter().map(|e| e.remap(perm)).collect(),
            kind: self.kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_a_i1p3_i2m1() {
        // A[i1+3, i2-1]: Q = I, q = (3, -1)ᵀ — the example of Section 2.
        let r = ArrayRef::read(
            0,
            vec![AffineExpr::var_plus(0, 3), AffineExpr::var_plus(1, -1)],
        );
        assert_eq!(r.eval(&[10, 20]), vec![13, 19]);
        assert_eq!(r.kind, AccessKind::Read);
    }

    #[test]
    fn figure3_reference() {
        // A[i1-1, i2, i3+1] from Figure 3.
        let r = ArrayRef::read(
            0,
            vec![
                AffineExpr::var_plus(0, -1),
                AffineExpr::var(1),
                AffineExpr::var_plus(2, 1),
            ],
        );
        assert_eq!(r.eval(&[2, 1, 1]), vec![1, 1, 2]);
    }

    #[test]
    fn eval_linear_uses_row_major() {
        let decl = ArrayDecl::new("A", vec![4, 4], 8);
        let r = ArrayRef::write(0, vec![AffineExpr::var(0), AffineExpr::var(1)]);
        assert_eq!(r.eval_linear(&[2, 3], &decl), 11);
        assert!(r.in_bounds_at(&[3, 3], &decl));
        assert!(!r.in_bounds_at(&[4, 0], &decl));
    }

    #[test]
    fn remap_preserves_meaning_under_permutation() {
        // Reference A[i0, i1]; permute loops so old i0 becomes new i1.
        let r = ArrayRef::read(0, vec![AffineExpr::var(0), AffineExpr::var(1)]);
        let perm = [1, 0];
        let rp = r.remap(&perm);
        // Old point (a, b) corresponds to new point (b, a).
        assert_eq!(r.eval(&[7, 9]), rp.eval(&[9, 7]));
    }
}
