//! Iteration spaces and lexicographic point enumeration.
//!
//! An iteration space is the polyhedral set
//! `G = {(i1,…,in) | L_k ≤ i_k ≤ U_k}` of Section 4.1, where every bound
//! is affine in the *outer* iterators (so triangular and other
//! non-rectangular spaces are representable). Enumerating its points in
//! lexicographic order is the stand-in for the Omega Library's
//! `codegen(.)` utility: anywhere the paper generates code that walks the
//! iterations of a set, we walk the same sequence with [`PointIter`].

use crate::affine::AffineExpr;

/// One iteration point `σ = (i'1, i'2, …, i'n)ᵀ`.
pub type Point = Vec<i64>;

/// A single loop with inclusive affine bounds.
///
/// The bounds may reference outer iterators only (enforced by
/// [`IterationSpace::new`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// Inclusive lower bound `L_k`.
    pub lower: AffineExpr,
    /// Inclusive upper bound `U_k`.
    pub upper: AffineExpr,
}

impl Loop {
    /// A loop with constant inclusive bounds `lo..=hi`.
    pub fn constant(lo: i64, hi: i64) -> Self {
        Loop {
            lower: AffineExpr::constant(lo),
            upper: AffineExpr::constant(hi),
        }
    }

    /// A loop with general affine bounds.
    pub fn new(lower: AffineExpr, upper: AffineExpr) -> Self {
        Loop { lower, upper }
    }
}

/// An `n`-deep iteration space with affine bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationSpace {
    loops: Vec<Loop>,
}

impl IterationSpace {
    /// Creates a space from its loops (outermost first).
    ///
    /// # Panics
    /// Panics if any bound references the loop's own iterator or an inner
    /// iterator (bounds must be affine in strictly outer iterators).
    pub fn new(loops: Vec<Loop>) -> Self {
        for (k, l) in loops.iter().enumerate() {
            for (name, e) in [("lower", &l.lower), ("upper", &l.upper)] {
                if let Some(mv) = e.max_var() {
                    assert!(
                        mv < k,
                        "{name} bound of loop {k} references iterator i{mv} (must be outer)"
                    );
                }
            }
        }
        IterationSpace { loops }
    }

    /// A rectangular space `0..=n_k-1` per extent (a common case).
    pub fn rectangular(extents: &[i64]) -> Self {
        Self::new(
            extents
                .iter()
                .map(|&n| {
                    assert!(n > 0, "extent must be positive, got {n}");
                    Loop::constant(0, n - 1)
                })
                .collect(),
        )
    }

    /// Nest depth `n`.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// The loops, outermost first.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// True if every bound is a constant (the space is a box).
    pub fn is_rectangular(&self) -> bool {
        self.loops
            .iter()
            .all(|l| l.lower.is_constant() && l.upper.is_constant())
    }

    /// Constant extents `(lo, hi)` per loop for rectangular spaces.
    ///
    /// # Panics
    /// Panics if the space is not rectangular.
    pub fn rectangular_bounds(&self) -> Vec<(i64, i64)> {
        assert!(self.is_rectangular(), "space is not rectangular");
        self.loops
            .iter()
            .map(|l| (l.lower.eval(&[]), l.upper.eval(&[])))
            .collect()
    }

    /// True if the point satisfies every bound.
    pub fn contains(&self, point: &[i64]) -> bool {
        if point.len() != self.loops.len() {
            return false;
        }
        self.loops.iter().enumerate().all(|(k, l)| {
            let v = point[k];
            v >= l.lower.eval(point) && v <= l.upper.eval(point)
        })
    }

    /// Number of points (iterations) in the space.
    ///
    /// Rectangular spaces are computed in closed form; others are
    /// enumerated level by level.
    pub fn size(&self) -> u64 {
        if self.loops.is_empty() {
            return 0;
        }
        if self.is_rectangular() {
            return self
                .loops
                .iter()
                .map(|l| {
                    let lo = l.lower.eval(&[]);
                    let hi = l.upper.eval(&[]);
                    if hi < lo {
                        0
                    } else {
                        (hi - lo + 1) as u64
                    }
                })
                .product();
        }
        self.iter().count() as u64
    }

    /// Lexicographic iterator over all points.
    pub fn iter(&self) -> PointIter<'_> {
        PointIter::new(self)
    }

    /// The lexicographically first point, if the space is non-empty.
    pub fn first_point(&self) -> Option<Point> {
        self.iter().next()
    }
}

/// Lexicographic-order iterator over the points of an [`IterationSpace`].
///
/// Works like an odometer: the innermost iterator advances fastest; when
/// it exceeds its (point-dependent) upper bound, the next-outer iterator
/// advances and all inner iterators reset to their lower bounds. Empty
/// ranges at any level are skipped correctly.
pub struct PointIter<'a> {
    space: &'a IterationSpace,
    current: Point,
    done: bool,
}

impl<'a> PointIter<'a> {
    fn new(space: &'a IterationSpace) -> Self {
        let n = space.depth();
        let mut it = PointIter {
            space,
            current: vec![0; n],
            done: n == 0,
        };
        if !it.done && !it.descend(0) {
            it.done = true;
        }
        it
    }

    /// Sets levels `from..n` to their lower bounds, backtracking outward
    /// whenever a level's range is empty. Returns false if the whole space
    /// is exhausted.
    fn descend(&mut self, from: usize) -> bool {
        let n = self.space.depth();
        let mut k = from;
        loop {
            if k == n {
                return true;
            }
            let lo = self.space.loops[k].lower.eval(&self.current);
            let hi = self.space.loops[k].upper.eval(&self.current);
            if lo <= hi {
                self.current[k] = lo;
                k += 1;
            } else {
                // Empty range at level k: advance some outer level.
                if !self.advance_outer(k) {
                    return false;
                }
                // advance_outer already re-descended through k; continue
                // from the level after the one it fixed.
                return true;
            }
        }
    }

    /// Advances the deepest level `< k` that can still advance, then
    /// re-descends to fill all inner levels. Returns false when exhausted.
    fn advance_outer(&mut self, k: usize) -> bool {
        let mut level = k;
        loop {
            if level == 0 {
                return false;
            }
            level -= 1;
            self.current[level] += 1;
            let hi = self.space.loops[level].upper.eval(&self.current);
            if self.current[level] <= hi {
                // Reset inner levels.
                let nxt = level + 1;
                if self.redescend(nxt) {
                    return true;
                }
                // Inner ranges empty for this value; keep advancing this
                // same level.
                level += 1;
            }
        }
    }

    /// Like `descend` but treats empty inner ranges as failure (caller
    /// keeps advancing outer levels).
    fn redescend(&mut self, from: usize) -> bool {
        let n = self.space.depth();
        for k in from..n {
            let lo = self.space.loops[k].lower.eval(&self.current);
            let hi = self.space.loops[k].upper.eval(&self.current);
            if lo > hi {
                return false;
            }
            self.current[k] = lo;
        }
        true
    }
}

impl Iterator for PointIter<'_> {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        if self.done {
            return None;
        }
        let out = self.current.clone();
        // Advance innermost.
        let n = self.space.depth();
        let last = n - 1;
        self.current[last] += 1;
        let hi = self.space.loops[last].upper.eval(&self.current);
        if self.current[last] > hi && !self.advance_outer(last) {
            self.done = true;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_enumeration_is_lexicographic() {
        let s = IterationSpace::rectangular(&[2, 3]);
        let pts: Vec<Point> = s.iter().collect();
        assert_eq!(
            pts,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2]
            ]
        );
        assert_eq!(s.size(), 6);
    }

    #[test]
    fn paper_figure3_space() {
        // for i1 = 2..N1, i2 = 1..N2, i3 = 1..N3-1 with N=(4,2,3)
        let s = IterationSpace::new(vec![
            Loop::constant(2, 4),
            Loop::constant(1, 2),
            Loop::constant(1, 2),
        ]);
        assert_eq!(s.size(), 3 * 2 * 2);
        assert!(s.contains(&[2, 1, 1]));
        assert!(!s.contains(&[1, 1, 1]));
        assert!(!s.contains(&[2, 1, 3]));
        assert_eq!(s.first_point(), Some(vec![2, 1, 1]));
    }

    #[test]
    fn triangular_space() {
        // i0 in 0..=3, i1 in 0..=i0
        let s = IterationSpace::new(vec![
            Loop::constant(0, 3),
            Loop::new(AffineExpr::constant(0), AffineExpr::var(0)),
        ]);
        let pts: Vec<Point> = s.iter().collect();
        assert_eq!(pts.len(), 4 + 3 + 2 + 1);
        assert_eq!(pts[0], vec![0, 0]);
        assert_eq!(pts[1], vec![1, 0]);
        assert_eq!(*pts.last().unwrap(), vec![3, 3]);
        assert_eq!(s.size(), 10);
        assert!(!s.is_rectangular());
    }

    #[test]
    fn space_with_empty_inner_ranges() {
        // i0 in 0..=2, i1 in i0..=1 — empty when i0 == 2.
        let s = IterationSpace::new(vec![
            Loop::constant(0, 2),
            Loop::new(AffineExpr::var(0), AffineExpr::constant(1)),
        ]);
        let pts: Vec<Point> = s.iter().collect();
        assert_eq!(pts, vec![vec![0, 0], vec![0, 1], vec![1, 1]]);
    }

    #[test]
    fn empty_space() {
        let s = IterationSpace::new(vec![Loop::constant(5, 2)]);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.size(), 0);
        assert_eq!(s.first_point(), None);
    }

    #[test]
    fn leading_empty_then_nonempty() {
        // i0 in 0..=1, i1 in 1..=i0 : empty for i0=0, single point for i0=1.
        let s = IterationSpace::new(vec![
            Loop::constant(0, 1),
            Loop::new(AffineExpr::constant(1), AffineExpr::var(0)),
        ]);
        let pts: Vec<Point> = s.iter().collect();
        assert_eq!(pts, vec![vec![1, 1]]);
    }

    #[test]
    #[should_panic(expected = "must be outer")]
    fn bound_on_inner_iterator_rejected() {
        IterationSpace::new(vec![
            Loop::new(AffineExpr::constant(0), AffineExpr::var(1)),
            Loop::constant(0, 3),
        ]);
    }

    #[test]
    fn contains_checks_affine_bounds() {
        let s = IterationSpace::new(vec![
            Loop::constant(0, 3),
            Loop::new(AffineExpr::constant(0), AffineExpr::var(0)),
        ]);
        assert!(s.contains(&[2, 2]));
        assert!(!s.contains(&[2, 3]));
        assert!(!s.contains(&[2]));
    }

    #[test]
    fn size_matches_enumeration_for_nonrectangular() {
        let s = IterationSpace::new(vec![
            Loop::constant(0, 5),
            Loop::new(AffineExpr::var(0), AffineExpr::constant(5)),
        ]);
        assert_eq!(s.size(), s.iter().count() as u64);
    }
}
