//! Disk-resident array declarations.
//!
//! The applications of the paper manipulate large multi-dimensional
//! arrays that live on disk (`float A[1..N1,1..N2,1..N3]` in Figure 3).
//! An [`ArrayDecl`] records the shape and element size; elements are
//! linearized row-major (last dimension fastest), which is how the data
//! space of Figure 4 orders elements before chunking.

/// Identifier of an array within a [`crate::nest::Program`].
pub type ArrayId = usize;

/// A disk-resident multi-dimensional array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Human-readable name (for reports and debugging).
    pub name: String,
    /// Extent of each dimension; indices run `0..extent`.
    pub dims: Vec<i64>,
    /// Size of one element in bytes.
    pub elem_size: u64,
}

impl ArrayDecl {
    /// Creates an array declaration.
    ///
    /// # Panics
    /// Panics if any extent is non-positive or the element size is zero.
    pub fn new(name: impl Into<String>, dims: Vec<i64>, elem_size: u64) -> Self {
        assert!(!dims.is_empty(), "array must have at least one dimension");
        for &d in &dims {
            assert!(d > 0, "array extent must be positive, got {d}");
        }
        assert!(elem_size > 0, "element size must be positive");
        ArrayDecl {
            name: name.into(),
            dims,
            elem_size,
        }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> u64 {
        self.dims.iter().map(|&d| d as u64).product()
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.num_elements() * self.elem_size
    }

    /// True if the index is within bounds in every dimension.
    pub fn in_bounds(&self, index: &[i64]) -> bool {
        index.len() == self.dims.len()
            && index.iter().zip(&self.dims).all(|(&i, &d)| i >= 0 && i < d)
    }

    /// Row-major linearization of a multi-dimensional index.
    ///
    /// # Panics
    /// Panics if the index is out of bounds (a reference evaluated outside
    /// its array indicates a workload-definition bug, so fail loudly).
    pub fn linearize(&self, index: &[i64]) -> u64 {
        assert!(
            self.in_bounds(index),
            "index {index:?} out of bounds for array {} with dims {:?}",
            self.name,
            self.dims
        );
        let mut lin: u64 = 0;
        for (i, d) in index.iter().zip(&self.dims) {
            lin = lin * (*d as u64) + *i as u64;
        }
        lin
    }

    /// Inverse of [`linearize`](Self::linearize).
    pub fn delinearize(&self, mut lin: u64) -> Vec<i64> {
        assert!(lin < self.num_elements(), "linear index out of range");
        let mut idx = vec![0i64; self.dims.len()];
        for k in (0..self.dims.len()).rev() {
            let d = self.dims[k] as u64;
            idx[k] = (lin % d) as i64;
            lin /= d;
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_counts() {
        let a = ArrayDecl::new("A", vec![4, 5, 6], 8);
        assert_eq!(a.rank(), 3);
        assert_eq!(a.num_elements(), 120);
        assert_eq!(a.size_bytes(), 960);
    }

    #[test]
    fn linearize_row_major() {
        let a = ArrayDecl::new("A", vec![3, 4], 4);
        assert_eq!(a.linearize(&[0, 0]), 0);
        assert_eq!(a.linearize(&[0, 3]), 3);
        assert_eq!(a.linearize(&[1, 0]), 4);
        assert_eq!(a.linearize(&[2, 3]), 11);
    }

    #[test]
    fn delinearize_roundtrip() {
        let a = ArrayDecl::new("A", vec![3, 4, 5], 8);
        for lin in 0..a.num_elements() {
            assert_eq!(a.linearize(&a.delinearize(lin)), lin);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn linearize_out_of_bounds_panics() {
        let a = ArrayDecl::new("A", vec![3, 4], 4);
        a.linearize(&[3, 0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_rejected() {
        ArrayDecl::new("A", vec![0], 4);
    }

    #[test]
    fn in_bounds_checks_rank() {
        let a = ArrayDecl::new("A", vec![3, 4], 4);
        assert!(!a.in_bounds(&[1]));
        assert!(!a.in_bounds(&[1, -1]));
        assert!(a.in_bounds(&[2, 3]));
    }
}
