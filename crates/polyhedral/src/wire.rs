//! JSON wire codec for the polyhedral IR.
//!
//! The mapping service receives loop nests over the wire, so [`Program`]
//! and its constituents serialize to the workspace's [`Json`] tree and
//! parse back with typed errors. The encoding is positional where order
//! is semantic (subscripts, dims, loops) and keyed objects elsewhere, so
//! the canonical-JSON fingerprint of `cachemap-util` is invariant to
//! field spelling order but sensitive to every value.
//!
//! Encodings:
//!
//! ```text
//! AffineExpr     {"coeffs":[c0,…],"constant":k}            (+ "mod":m when quasi-affine)
//! Loop           {"lower":<expr>,"upper":<expr>}
//! IterationSpace {"loops":[<loop>,…]}
//! ArrayRef       {"array":id,"subscripts":[<expr>,…],"write":bool}
//! ArrayDecl      {"name":s,"dims":[d0,…],"elem_size":b}
//! LoopNest       {"name":s,"space":<space>,"refs":[<ref>,…],"compute_us":f}
//! Program        {"name":s,"arrays":[<decl>,…],"nests":[<nest>,…]}
//! ```

use crate::access::{AccessKind, ArrayRef};
use crate::affine::AffineExpr;
use crate::array::ArrayDecl;
use crate::nest::{LoopNest, Program};
use crate::space::{IterationSpace, Loop};
use cachemap_util::{Json, ToJson};
use std::fmt;

/// A structural problem found while decoding a wire value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Dotted path to the offending field (e.g. `nests[0].space`).
    pub path: String,
    /// What was wrong there.
    pub message: String,
}

impl WireError {
    /// Creates an error at `path`.
    pub fn new(path: impl Into<String>, message: impl Into<String>) -> Self {
        WireError {
            path: path.into(),
            message: message.into(),
        }
    }

    fn nested(self, prefix: &str) -> Self {
        WireError {
            path: if self.path.is_empty() {
                prefix.to_string()
            } else {
                format!("{prefix}.{}", self.path)
            },
            message: self.message,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

impl std::error::Error for WireError {}

fn want_obj<'a>(v: &'a Json, path: &str) -> Result<&'a Json, WireError> {
    match v {
        Json::Object(_) => Ok(v),
        _ => Err(WireError::new(path, "expected an object")),
    }
}

fn field<'a>(v: &'a Json, key: &str, path: &str) -> Result<&'a Json, WireError> {
    v.get(key)
        .ok_or_else(|| WireError::new(path, format!("missing field '{key}'")))
}

fn as_i64(v: &Json, path: &str) -> Result<i64, WireError> {
    v.as_i64()
        .ok_or_else(|| WireError::new(path, "expected an integer"))
}

fn as_u64(v: &Json, path: &str) -> Result<u64, WireError> {
    v.as_u64()
        .ok_or_else(|| WireError::new(path, "expected a non-negative integer"))
}

fn as_f64(v: &Json, path: &str) -> Result<f64, WireError> {
    v.as_f64()
        .ok_or_else(|| WireError::new(path, "expected a number"))
}

fn as_str<'a>(v: &'a Json, path: &str) -> Result<&'a str, WireError> {
    v.as_str()
        .ok_or_else(|| WireError::new(path, "expected a string"))
}

fn as_array<'a>(v: &'a Json, path: &str) -> Result<&'a [Json], WireError> {
    v.as_array()
        .ok_or_else(|| WireError::new(path, "expected an array"))
}

impl ToJson for AffineExpr {
    fn to_json(&self) -> Json {
        let coeffs: Vec<Json> = (0..self.num_coeffs())
            .map(|j| Json::Int(self.coeff(j)))
            .collect();
        let mut pairs = vec![
            ("coeffs", Json::Array(coeffs)),
            ("constant", Json::Int(self.constant_term())),
        ];
        if let Some(m) = self.modulus() {
            pairs.push(("mod", Json::Int(m)));
        }
        Json::object(pairs)
    }
}

/// Parses an [`AffineExpr`].
pub fn affine_from_json(v: &Json) -> Result<AffineExpr, WireError> {
    want_obj(v, "")?;
    let coeffs = as_array(field(v, "coeffs", "")?, "coeffs")?
        .iter()
        .enumerate()
        .map(|(i, c)| as_i64(c, &format!("coeffs[{i}]")))
        .collect::<Result<Vec<i64>, _>>()?;
    let constant = as_i64(field(v, "constant", "")?, "constant")?;
    let expr = AffineExpr::new(coeffs, constant);
    match v.get("mod") {
        None | Some(Json::Null) => Ok(expr),
        Some(m) => {
            let m = as_i64(m, "mod")?;
            if m <= 0 {
                return Err(WireError::new("mod", "modulus must be positive"));
            }
            Ok(expr.with_mod(m))
        }
    }
}

impl ToJson for Loop {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("lower", self.lower.to_json()),
            ("upper", self.upper.to_json()),
        ])
    }
}

/// Parses a [`Loop`].
pub fn loop_from_json(v: &Json) -> Result<Loop, WireError> {
    want_obj(v, "")?;
    let lower = affine_from_json(field(v, "lower", "")?).map_err(|e| e.nested("lower"))?;
    let upper = affine_from_json(field(v, "upper", "")?).map_err(|e| e.nested("upper"))?;
    Ok(Loop::new(lower, upper))
}

impl ToJson for IterationSpace {
    fn to_json(&self) -> Json {
        Json::object(vec![(
            "loops",
            Json::Array(self.loops().iter().map(ToJson::to_json).collect()),
        )])
    }
}

/// Parses an [`IterationSpace`].
pub fn space_from_json(v: &Json) -> Result<IterationSpace, WireError> {
    want_obj(v, "")?;
    let loops = as_array(field(v, "loops", "")?, "loops")?
        .iter()
        .enumerate()
        .map(|(i, l)| loop_from_json(l).map_err(|e| e.nested(&format!("loops[{i}]"))))
        .collect::<Result<Vec<Loop>, _>>()?;
    if loops.is_empty() {
        return Err(WireError::new("loops", "a nest needs at least one loop"));
    }
    Ok(IterationSpace::new(loops))
}

impl ToJson for ArrayRef {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("array", Json::UInt(self.array as u64)),
            (
                "subscripts",
                Json::Array(self.subscripts.iter().map(ToJson::to_json).collect()),
            ),
            ("write", Json::Bool(self.kind == AccessKind::Write)),
        ])
    }
}

/// Parses an [`ArrayRef`].
pub fn array_ref_from_json(v: &Json) -> Result<ArrayRef, WireError> {
    want_obj(v, "")?;
    let array = as_u64(field(v, "array", "")?, "array")? as usize;
    let subscripts = as_array(field(v, "subscripts", "")?, "subscripts")?
        .iter()
        .enumerate()
        .map(|(i, s)| affine_from_json(s).map_err(|e| e.nested(&format!("subscripts[{i}]"))))
        .collect::<Result<Vec<AffineExpr>, _>>()?;
    let write = match field(v, "write", "")? {
        Json::Bool(b) => *b,
        _ => return Err(WireError::new("write", "expected a boolean")),
    };
    Ok(ArrayRef {
        array,
        subscripts,
        kind: if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
    })
}

impl ToJson for ArrayDecl {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("name", Json::Str(self.name.clone())),
            (
                "dims",
                Json::Array(self.dims.iter().map(|&d| Json::Int(d)).collect()),
            ),
            ("elem_size", Json::UInt(self.elem_size)),
        ])
    }
}

/// Parses an [`ArrayDecl`].
pub fn array_decl_from_json(v: &Json) -> Result<ArrayDecl, WireError> {
    want_obj(v, "")?;
    let name = as_str(field(v, "name", "")?, "name")?;
    let dims = as_array(field(v, "dims", "")?, "dims")?
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let d = as_i64(d, &format!("dims[{i}]"))?;
            if d <= 0 {
                return Err(WireError::new(
                    format!("dims[{i}]"),
                    "dimensions must be positive",
                ));
            }
            Ok(d)
        })
        .collect::<Result<Vec<i64>, _>>()?;
    if dims.is_empty() {
        return Err(WireError::new("dims", "an array needs at least one dim"));
    }
    let elem_size = as_u64(field(v, "elem_size", "")?, "elem_size")?;
    if elem_size == 0 {
        return Err(WireError::new("elem_size", "element size must be positive"));
    }
    Ok(ArrayDecl::new(name, dims, elem_size))
}

impl ToJson for LoopNest {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("name", Json::Str(self.name.clone())),
            ("space", self.space.to_json()),
            (
                "refs",
                Json::Array(self.refs.iter().map(ToJson::to_json).collect()),
            ),
            ("compute_us", Json::Float(self.compute_us)),
        ])
    }
}

/// Parses a [`LoopNest`].
pub fn nest_from_json(v: &Json) -> Result<LoopNest, WireError> {
    want_obj(v, "")?;
    let name = as_str(field(v, "name", "")?, "name")?;
    let space = space_from_json(field(v, "space", "")?).map_err(|e| e.nested("space"))?;
    let refs = as_array(field(v, "refs", "")?, "refs")?
        .iter()
        .enumerate()
        .map(|(i, r)| array_ref_from_json(r).map_err(|e| e.nested(&format!("refs[{i}]"))))
        .collect::<Result<Vec<ArrayRef>, _>>()?;
    let compute_us = match v.get("compute_us") {
        None => 1.0,
        Some(c) => as_f64(c, "compute_us")?,
    };
    if compute_us.is_nan() || compute_us < 0.0 {
        return Err(WireError::new(
            "compute_us",
            "compute cost must be a non-negative number",
        ));
    }
    Ok(LoopNest::new(name, space, refs).with_compute_us(compute_us))
}

impl ToJson for Program {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("name", Json::Str(self.name.clone())),
            (
                "arrays",
                Json::Array(self.arrays.iter().map(ToJson::to_json).collect()),
            ),
            (
                "nests",
                Json::Array(self.nests.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

/// Parses a [`Program`], validating that every reference targets a
/// declared array (so the constructor's assertion cannot fire on wire
/// input).
pub fn program_from_json(v: &Json) -> Result<Program, WireError> {
    want_obj(v, "")?;
    let name = as_str(field(v, "name", "")?, "name")?;
    let arrays = as_array(field(v, "arrays", "")?, "arrays")?
        .iter()
        .enumerate()
        .map(|(i, a)| array_decl_from_json(a).map_err(|e| e.nested(&format!("arrays[{i}]"))))
        .collect::<Result<Vec<ArrayDecl>, _>>()?;
    let nests = as_array(field(v, "nests", "")?, "nests")?
        .iter()
        .enumerate()
        .map(|(i, n)| nest_from_json(n).map_err(|e| e.nested(&format!("nests[{i}]"))))
        .collect::<Result<Vec<LoopNest>, _>>()?;
    for (ni, n) in nests.iter().enumerate() {
        for (ri, r) in n.refs.iter().enumerate() {
            if r.array >= arrays.len() {
                return Err(WireError::new(
                    format!("nests[{ni}].refs[{ri}].array"),
                    format!(
                        "references array {} but only {} arrays are declared",
                        r.array,
                        arrays.len()
                    ),
                ));
            }
        }
    }
    Ok(Program::new(name, arrays, nests))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        let a = ArrayDecl::new("A", vec![64], 8);
        let b = ArrayDecl::new("B", vec![8, 8], 4);
        let space = IterationSpace::new(vec![
            Loop::constant(0, 7),
            Loop::new(AffineExpr::constant(0), AffineExpr::var(0)),
        ]);
        let refs = vec![
            ArrayRef::read(0, vec![AffineExpr::var(1).with_mod(16)]),
            ArrayRef::read(1, vec![AffineExpr::var(0), AffineExpr::var_plus(1, 0)]),
            ArrayRef::write(0, vec![AffineExpr::new(vec![8, 1], 0)]),
        ];
        Program::new(
            "wire-sample",
            vec![a, b],
            vec![LoopNest::new("tri", space, refs).with_compute_us(2.5)],
        )
    }

    #[test]
    fn program_round_trips_exactly() {
        let p = sample_program();
        let j = p.to_json();
        let back = program_from_json(&j).unwrap();
        assert_eq!(back, p);
        // And through actual bytes.
        let reparsed = cachemap_util::json::parse(&j.to_string_pretty()).unwrap();
        assert_eq!(program_from_json(&reparsed).unwrap(), p);
    }

    #[test]
    fn dangling_array_reference_is_a_typed_error() {
        let p = sample_program();
        let mut j = p.to_json();
        if let Json::Object(pairs) = &mut j {
            for (k, v) in pairs.iter_mut() {
                if k == "arrays" {
                    if let Json::Array(items) = v {
                        items.pop();
                    }
                }
            }
        }
        let err = program_from_json(&j).unwrap_err();
        assert!(err.path.contains("array"), "{err}");
    }

    #[test]
    fn bad_scalars_are_typed_errors() {
        let mut j = sample_program().to_json();
        if let Json::Object(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "name");
        }
        let err = program_from_json(&j).unwrap_err();
        assert!(err.message.contains("name"), "{err}");

        let bad = Json::object(vec![
            ("coeffs", Json::Array(vec![Json::Int(1)])),
            ("constant", Json::Int(0)),
            ("mod", Json::Int(-3)),
        ]);
        assert!(affine_from_json(&bad).is_err());
    }
}
