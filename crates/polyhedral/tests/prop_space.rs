//! Property tests for iteration spaces, traversals, and dependence tests,
//! driven by the in-repo deterministic harness (`cachemap_util::check`).

use cachemap_polyhedral::deps::{banerjee_test, exact_dependences, gcd_test};
use cachemap_polyhedral::transform::Traversal;
use cachemap_polyhedral::{AffineExpr, ArrayDecl, ArrayRef, IterationSpace, Loop, LoopNest, Point};
use cachemap_util::check::cases;

#[test]
fn rectangular_enumeration_count_and_order() {
    cases(0x5ACE_0001, 96, |g| {
        let ndims = g.usize_in(1, 4);
        let extents: Vec<i64> = (0..ndims).map(|_| g.i64_in(1, 6)).collect();
        let space = IterationSpace::rectangular(&extents);
        let pts: Vec<Point> = space.iter().collect();
        assert_eq!(pts.len() as u64, space.size());
        for w in pts.windows(2) {
            assert!(w[0] < w[1], "lexicographic order violated");
        }
        for p in &pts {
            assert!(space.contains(p));
        }
    });
}

#[test]
fn triangular_spaces_enumerate_consistently() {
    cases(0x5ACE_0002, 32, |g| {
        let n = g.i64_in(1, 8);
        // i0 in 0..n, i1 in 0..=i0.
        let space = IterationSpace::new(vec![
            Loop::constant(0, n - 1),
            Loop::new(AffineExpr::constant(0), AffineExpr::var(0)),
        ]);
        let pts: Vec<Point> = space.iter().collect();
        assert_eq!(pts.len() as i64, n * (n + 1) / 2);
        for p in &pts {
            assert!(p[1] <= p[0]);
        }
    });
}

#[test]
fn every_traversal_is_a_permutation_of_the_space() {
    cases(0x5ACE_0003, 96, |g| {
        let n0 = g.i64_in(1, 6);
        let n1 = g.i64_in(1, 6);
        let tile = g.i64_in(1, 4);
        let which = g.usize_in(0, 4);
        let space = IterationSpace::rectangular(&[n0, n1]);
        let traversal = match which {
            0 => Traversal::Identity,
            1 => Traversal::Permuted(vec![1, 0]),
            2 => Traversal::Tiled(vec![tile, tile]),
            _ => Traversal::TiledPermuted {
                tiles: vec![tile, tile],
                perm: vec![1, 0],
            },
        };
        let mut order = traversal.enumerate(&space);
        assert_eq!(order.len() as u64, space.size());
        order.sort();
        order.dedup();
        assert_eq!(order.len() as u64, space.size(), "duplicates in traversal");
    });
}

#[test]
fn gcd_and_banerjee_never_contradict_exact_dependences() {
    cases(0x5ACE_0004, 128, |g| {
        let n = g.i64_in(2, 10);
        let wa = g.i64_in(1, 3);
        let wc = g.i64_in(0, 6);
        let ra = g.i64_in(1, 3);
        let rc = g.i64_in(0, 6);
        // A[wa·i + wc] written, A[ra·i + rc] read over i in 0..n.
        let max_idx = (wa * (n - 1) + wc).max(ra * (n - 1) + rc) + 1;
        let arrays = vec![ArrayDecl::new("A", vec![max_idx], 8)];
        let w = ArrayRef::write(0, vec![AffineExpr::new(vec![wa], wc)]);
        let r = ArrayRef::read(0, vec![AffineExpr::new(vec![ra], rc)]);
        let space = IterationSpace::rectangular(&[n]);
        let nest = LoopNest::new("t", space, vec![r.clone(), w.clone()]);
        let deps = exact_dependences(&nest, &arrays);

        let cross_iteration = deps.iter().any(|d| !d.loop_independent());
        let same_iteration_conflict = (0..n).any(|i| wa * i + wc == ra * i + rc);
        let any_dep = cross_iteration || same_iteration_conflict;

        // The approximate tests may report false positives but never
        // false negatives.
        if any_dep {
            assert!(gcd_test(&w, &r, 1), "GCD test missed a real dependence");
            assert!(
                banerjee_test(&w, &r, &[(0, n - 1)]),
                "Banerjee test missed a real dependence"
            );
        }
    });
}

#[test]
fn legal_permutations_preserve_dependence_direction() {
    cases(0x5ACE_0005, 128, |g| {
        let n = g.i64_in(2, 7);
        let di = g.i64_in(0, 3);
        let dj = g.i64_in(-2, 3);
        if !(di != 0 || dj > 0) {
            return;
        }
        // A[i+di][j+dj] = A[i][j] gives a dependence with distance (di,dj).
        let pitch = n + 4;
        let arrays = vec![ArrayDecl::new("A", vec![(pitch + 3) * pitch + 8], 8)];
        let base = AffineExpr::new(vec![pitch, 1], 2); // A[i][j+2] area, safe offsets
        let shifted = AffineExpr::new(vec![pitch, 1], 2 + di * pitch + dj);
        let space = IterationSpace::rectangular(&[n, n]);
        let nest = LoopNest::new(
            "t",
            space,
            vec![
                ArrayRef::read(0, vec![base]),
                ArrayRef::write(0, vec![shifted]),
            ],
        );
        let deps = exact_dependences(&nest, &arrays);
        let interchange = Traversal::Permuted(vec![1, 0]);
        if interchange.is_legal(&deps) {
            // Legality means every distance stays lex-positive after
            // swapping components.
            for d in &deps {
                let swapped = [d.distance[1], d.distance[0]];
                assert!(
                    swapped.iter().find(|&&x| x != 0).is_none_or(|&x| x > 0),
                    "legal interchange reversed {:?}",
                    d.distance
                );
            }
        }
    });
}
