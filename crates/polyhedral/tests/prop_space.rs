//! Property tests for iteration spaces, traversals, and dependence tests.

use cachemap_polyhedral::deps::{banerjee_test, exact_dependences, gcd_test};
use cachemap_polyhedral::transform::Traversal;
use cachemap_polyhedral::{
    AffineExpr, ArrayDecl, ArrayRef, IterationSpace, Loop, LoopNest, Point,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn rectangular_enumeration_count_and_order(
        extents in proptest::collection::vec(1i64..6, 1..4)
    ) {
        let space = IterationSpace::rectangular(&extents);
        let pts: Vec<Point> = space.iter().collect();
        prop_assert_eq!(pts.len() as u64, space.size());
        for w in pts.windows(2) {
            prop_assert!(w[0] < w[1], "lexicographic order violated");
        }
        for p in &pts {
            prop_assert!(space.contains(p));
        }
    }

    #[test]
    fn triangular_spaces_enumerate_consistently(n in 1i64..8) {
        // i0 in 0..n, i1 in 0..=i0.
        let space = IterationSpace::new(vec![
            Loop::constant(0, n - 1),
            Loop::new(AffineExpr::constant(0), AffineExpr::var(0)),
        ]);
        let pts: Vec<Point> = space.iter().collect();
        prop_assert_eq!(pts.len() as i64, n * (n + 1) / 2);
        for p in &pts {
            prop_assert!(p[1] <= p[0]);
        }
    }

    #[test]
    fn every_traversal_is_a_permutation_of_the_space(
        n0 in 1i64..6,
        n1 in 1i64..6,
        tile in 1i64..4,
        which in 0usize..4,
    ) {
        let space = IterationSpace::rectangular(&[n0, n1]);
        let traversal = match which {
            0 => Traversal::Identity,
            1 => Traversal::Permuted(vec![1, 0]),
            2 => Traversal::Tiled(vec![tile, tile]),
            _ => Traversal::TiledPermuted { tiles: vec![tile, tile], perm: vec![1, 0] },
        };
        let mut order = traversal.enumerate(&space);
        prop_assert_eq!(order.len() as u64, space.size());
        order.sort();
        order.dedup();
        prop_assert_eq!(order.len() as u64, space.size(), "duplicates in traversal");
    }

    #[test]
    fn gcd_and_banerjee_never_contradict_exact_dependences(
        n in 2i64..10,
        wa in 1i64..3,
        wc in 0i64..6,
        ra in 1i64..3,
        rc in 0i64..6,
    ) {
        // A[wa·i + wc] written, A[ra·i + rc] read over i in 0..n.
        let max_idx = (wa * (n - 1) + wc).max(ra * (n - 1) + rc) + 1;
        let arrays = vec![ArrayDecl::new("A", vec![max_idx], 8)];
        let w = ArrayRef::write(0, vec![AffineExpr::new(vec![wa], wc)]);
        let r = ArrayRef::read(0, vec![AffineExpr::new(vec![ra], rc)]);
        let space = IterationSpace::rectangular(&[n]);
        let nest = LoopNest::new("t", space, vec![r.clone(), w.clone()]);
        let deps = exact_dependences(&nest, &arrays);

        let cross_iteration = deps.iter().any(|d| !d.loop_independent());
        let same_iteration_conflict = (0..n).any(|i| wa * i + wc == ra * i + rc);
        let any_dep = cross_iteration || same_iteration_conflict;

        // The approximate tests may report false positives but never
        // false negatives.
        if any_dep {
            prop_assert!(gcd_test(&w, &r, 1), "GCD test missed a real dependence");
            prop_assert!(
                banerjee_test(&w, &r, &[(0, n - 1)]),
                "Banerjee test missed a real dependence"
            );
        }
    }

    #[test]
    fn legal_permutations_preserve_dependence_direction(
        n in 2i64..7,
        di in 0i64..3,
        dj in -2i64..3,
    ) {
        prop_assume!(di != 0 || dj > 0);
        // A[i+di][j+dj] = A[i][j] gives a dependence with distance (di,dj).
        let pitch = n + 4;
        let arrays = vec![ArrayDecl::new("A", vec![(pitch + 3) * pitch + 8], 8)];
        let base = AffineExpr::new(vec![pitch, 1], 2); // A[i][j+2] area, safe offsets
        let shifted = AffineExpr::new(vec![pitch, 1], 2 + di * pitch + dj);
        let space = IterationSpace::rectangular(&[n, n]);
        let nest = LoopNest::new(
            "t",
            space,
            vec![ArrayRef::read(0, vec![base]), ArrayRef::write(0, vec![shifted])],
        );
        let deps = exact_dependences(&nest, &arrays);
        let interchange = Traversal::Permuted(vec![1, 0]);
        if interchange.is_legal(&deps) {
            // Legality means every distance stays lex-positive after
            // swapping components.
            for d in &deps {
                let swapped = [d.distance[1], d.distance[0]];
                prop_assert!(
                    swapped.iter().find(|&&x| x != 0).is_none_or(|&x| x > 0),
                    "legal interchange reversed {:?}",
                    d.distance
                );
            }
        }
    }
}
