//! `bench-cluster`: sequential vs. parallel clustering kernel.
//!
//! Runs [`cachemap_core::cluster::distribute`] on a seeded synthetic
//! workload at paper scale (64 clients / 32 I/O nodes / 16 storage
//! nodes) — first sequentially, then through [`Pool`]s of increasing
//! size — and reports wall-clock and speedup per pool size.
//!
//! Two invariants are **asserted** on every run, not just reported:
//!
//! 1. every parallel distribution is byte-identical to the sequential
//!    one (compared via the canonical wire serialization);
//! 2. the `distribute_profiled` counter totals (merges, dot sums,
//!    balance moves, …) match span-for-span once wall-clock fields are
//!    zeroed.
//!
//! Speedups are honest wall-clock measurements on the current machine;
//! `available_parallelism` is recorded in the report so a 1-core CI box
//! reporting ~1× is distinguishable from a regression.

use cachemap_core::cluster::{self, ClusterParams};
use cachemap_core::tags::IterationChunk;
use cachemap_obs::Profile;
use cachemap_par::Pool;
use cachemap_storage::{HierarchyTree, PlatformConfig};
use cachemap_util::rng::XorShift64;
use cachemap_util::{BitSet, Json, ToJson};
use std::time::Instant;

/// Knobs for the clustering microbenchmark.
#[derive(Debug, Clone)]
pub struct ClusterBenchConfig {
    /// Seed for the synthetic workload generator.
    pub seed: u64,
    /// Platform whose hierarchy tree the kernel descends.
    pub platform: PlatformConfig,
    /// Outer grid extent (time steps) of the synthetic workload.
    pub t_steps: usize,
    /// Inner grid extent (blocks per step); `t_steps * v` iteration
    /// chunks total.
    pub v: usize,
    /// Pool sizes to benchmark against the sequential kernel.
    pub pool_sizes: Vec<usize>,
    /// Timing repetitions per configuration (the minimum is reported).
    pub repeats: usize,
}

impl ClusterBenchConfig {
    /// Paper-scale defaults: the Figure 7 platform (64/32/16) with a
    /// 1024-chunk astro-shaped workload — large enough that the root
    /// merge round's similarity graph dominates, like the real suite.
    pub fn paper_scale(seed: u64) -> Self {
        ClusterBenchConfig {
            seed,
            platform: PlatformConfig::paper_default(),
            t_steps: 8,
            v: 128,
            pool_sizes: vec![1, 2, 4, 8],
            repeats: 3,
        }
    }

    /// A seconds-not-minutes variant for CI smoke runs; same assertions,
    /// much smaller similarity graph.
    pub fn smoke(seed: u64) -> Self {
        ClusterBenchConfig {
            t_steps: 4,
            v: 48,
            repeats: 1,
            ..ClusterBenchConfig::paper_scale(seed)
        }
    }
}

/// One (pool size → timing) row of the report.
#[derive(Debug, Clone)]
pub struct PoolTiming {
    /// Worker threads the pool ran with.
    pub threads: usize,
    /// Best-of-`repeats` wall-clock for one `distribute` call, ms.
    pub ms: f64,
    /// Sequential time / this time.
    pub speedup: f64,
}

/// Result of the microbenchmark (see [`run`]).
#[derive(Debug, Clone)]
pub struct ClusterBenchReport {
    /// The workload seed.
    pub seed: u64,
    /// Iteration chunks clustered.
    pub chunks: usize,
    /// Tag width (distinct data chunks), bits.
    pub tag_bits: usize,
    /// `(clients, io_nodes, storage_nodes)` of the platform.
    pub topology: (usize, usize, usize),
    /// What the machine could offer (`std::thread::available_parallelism`).
    pub available_parallelism: usize,
    /// Best-of-`repeats` sequential wall-clock, ms.
    pub sequential_ms: f64,
    /// Per-pool-size timings, in `pool_sizes` order.
    pub runs: Vec<PoolTiming>,
}

impl ToJson for ClusterBenchReport {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("bench", Json::Str("cluster".into())),
            ("seed", Json::UInt(self.seed)),
            ("chunks", Json::UInt(self.chunks as u64)),
            ("tag_bits", Json::UInt(self.tag_bits as u64)),
            (
                "platform",
                Json::object(vec![
                    ("clients", Json::UInt(self.topology.0 as u64)),
                    ("io_nodes", Json::UInt(self.topology.1 as u64)),
                    ("storage_nodes", Json::UInt(self.topology.2 as u64)),
                ]),
            ),
            (
                "available_parallelism",
                Json::UInt(self.available_parallelism as u64),
            ),
            ("sequential_ms", Json::Float(self.sequential_ms)),
            (
                "runs",
                Json::Array(
                    self.runs
                        .iter()
                        .map(|r| {
                            Json::object(vec![
                                ("threads", Json::UInt(r.threads as u64)),
                                ("ms", Json::Float(r.ms)),
                                ("speedup", Json::Float(r.speedup)),
                                ("identical", Json::Bool(true)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl ClusterBenchReport {
    /// Human-readable table for the CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "bench-cluster seed={} chunks={} tag_bits={} platform={}x{}x{} host_cpus={}\n",
            self.seed,
            self.chunks,
            self.tag_bits,
            self.topology.0,
            self.topology.1,
            self.topology.2,
            self.available_parallelism,
        ));
        out.push_str(&format!(
            "  sequential           {:>9.2} ms   1.00x (reference)\n",
            self.sequential_ms
        ));
        for r in &self.runs {
            out.push_str(&format!(
                "  pool threads={:<3}     {:>9.2} ms  {:>5.2}x  identical=yes\n",
                r.threads, r.ms, r.speedup
            ));
        }
        out
    }
}

/// Generates the synthetic astro-shaped workload: a `t_steps × v` grid
/// of iteration chunks where each chunk touches its own stream chunk,
/// a per-block template chunk shared down columns, a per-step stats
/// chunk shared across rows, and a few seeded extra chunks that create
/// irregular sharing (so dot products are varied, as in real suites).
pub fn synthetic_chunks(cfg: &ClusterBenchConfig) -> Vec<IterationChunk> {
    let (t_steps, v) = (cfg.t_steps, cfg.v);
    let r = t_steps * v + t_steps + v;
    let mut rng = XorShift64::new(cfg.seed);
    let mut chunks = Vec::with_capacity(t_steps * v);
    for t in 0..t_steps {
        for b in 0..v {
            let mut tag = BitSet::new(r);
            tag.set(t * v + b); // private stream chunk
            tag.set(t_steps * v + b); // per-block template chunk
            tag.set(t_steps * v + v + t); // per-step stats chunk
            for _ in 0..rng.usize_in(0, 4) {
                tag.set(rng.usize_in(0, r)); // irregular sharing
            }
            chunks.push(IterationChunk {
                nest: 0,
                tag,
                points: vec![vec![t as i64, b as i64, 0], vec![t as i64, b as i64, 1]],
            });
        }
    }
    chunks
}

/// Recursively zeroes every `wall_ns` field of a profile's JSON form,
/// leaving only the deterministic structure and counters.
fn strip_wall(json: &Json) -> Json {
    match json {
        Json::Object(pairs) => Json::Object(
            pairs
                .iter()
                .map(|(k, v)| {
                    if k == "wall_ns" {
                        (k.clone(), Json::UInt(0))
                    } else {
                        (k.clone(), strip_wall(v))
                    }
                })
                .collect(),
        ),
        Json::Array(items) => Json::Array(items.iter().map(strip_wall).collect()),
        other => other.clone(),
    }
}

/// Runs the microbenchmark. Panics if any parallel run diverges from
/// the sequential kernel — in the distribution bytes or in the profile
/// counter totals.
pub fn run(cfg: &ClusterBenchConfig) -> ClusterBenchReport {
    let chunks = synthetic_chunks(cfg);
    let tree = HierarchyTree::from_config(&cfg.platform).expect("valid platform config");
    let params = ClusterParams::default();
    let repeats = cfg.repeats.max(1);

    let time_best = |pool: &Pool| -> (f64, String, String) {
        let mut best_ms = f64::INFINITY;
        let mut dist_bytes = String::new();
        let mut counter_bytes = String::new();
        for _ in 0..repeats {
            let mut prof = Profile::enabled();
            let t0 = Instant::now();
            let dist = cluster::distribute_pooled(&chunks, &tree, &params, pool, &mut prof);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            best_ms = best_ms.min(ms);
            dist_bytes = dist.to_json().to_string_compact();
            counter_bytes = strip_wall(&prof.to_json()).to_string_compact();
        }
        (best_ms, dist_bytes, counter_bytes)
    };

    let (sequential_ms, seq_dist, seq_counters) = time_best(&Pool::sequential());
    let mut runs = Vec::with_capacity(cfg.pool_sizes.len());
    for &threads in &cfg.pool_sizes {
        let (ms, dist, counters) = time_best(&Pool::new(threads));
        assert_eq!(
            dist, seq_dist,
            "pool size {threads}: distribution diverged from the sequential kernel"
        );
        assert_eq!(
            counters, seq_counters,
            "pool size {threads}: profile counters diverged from the sequential kernel"
        );
        runs.push(PoolTiming {
            threads,
            ms,
            speedup: sequential_ms / ms,
        });
    }

    ClusterBenchReport {
        seed: cfg.seed,
        chunks: chunks.len(),
        tag_bits: chunks.first().map_or(0, |c| c.tag.len()),
        topology: (
            cfg.platform.num_clients,
            cfg.platform.num_io_nodes,
            cfg.platform.num_storage_nodes,
        ),
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        sequential_ms,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_asserts_identity_and_reports_all_pools() {
        let cfg = ClusterBenchConfig {
            pool_sizes: vec![2, 4],
            ..ClusterBenchConfig::smoke(7)
        };
        let report = run(&cfg);
        assert_eq!(report.chunks, cfg.t_steps * cfg.v);
        assert_eq!(report.runs.len(), 2);
        assert!(report.sequential_ms > 0.0);
        let json = report.to_json();
        assert_eq!(json.get("runs").and_then(Json::as_array).unwrap().len(), 2);
        assert!(report.render().contains("identical=yes"));
    }

    #[test]
    fn synthetic_workload_is_seed_deterministic() {
        let cfg = ClusterBenchConfig::smoke(42);
        let a = synthetic_chunks(&cfg);
        let b = synthetic_chunks(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tag, y.tag);
            assert_eq!(x.points, y.points);
        }
        let other = synthetic_chunks(&ClusterBenchConfig::smoke(43));
        assert!(
            a.iter().zip(&other).any(|(x, y)| x.tag != y.tag),
            "different seeds must vary the sharing pattern"
        );
    }
}
