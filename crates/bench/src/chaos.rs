//! Chaos-campaign harness for the online resilience layer.
//!
//! A campaign generates a stream of randomized [`FaultPlan`]s from one
//! seed — crash storms, rolling degradation, transient-error bursts, and
//! mixes — and runs every plan through the online supervisor
//! ([`cachemap_core::online::run_online`]), checking four invariants
//! after each run:
//!
//! 1. **coverage** — every iteration chunk of the initial plan executed
//!    exactly once, across all epochs and remaps;
//! 2. **termination** — the supervised run completes under any plan;
//! 3. **output** — the recovered run writes the same data-chunk set as
//!    the fault-free run;
//! 4. **bounded slowdown** — the online run takes at most
//!    [`ChaosConfig::slowdown_factor`] × the slower of the fault-free
//!    and unremapped runs of the same plan.
//!
//! A violated invariant triggers greedy shrinking: events are dropped
//! one at a time (then the transient model) while the failure persists,
//! and the minimal failing plan is written to a `chaos_repro_*.json`
//! file that [`replay`] can re-run byte-for-byte.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use cachemap_core::cluster::{ClusterParams, Distribution};
use cachemap_core::online::{plan_joint, run_online, written_chunks, OnlineConfig};
use cachemap_core::schedule::ScheduleParams;
use cachemap_core::tags::IterationChunk;
use cachemap_par::Pool;
use cachemap_polyhedral::{DataSpace, Program};
use cachemap_storage::{
    DegradeLevel, FaultEvent, FaultPlan, HierarchyTree, MappedProgram, PlatformConfig, Simulator,
    TransientFaults,
};
use cachemap_util::rng::XorShift64;
use cachemap_util::{Json, ToJson};
use cachemap_workloads::Scale;

/// Campaign knobs.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the plan generator; the same seed replays the same
    /// campaign plan-for-plan.
    pub seed: u64,
    /// Number of fault plans to generate and check.
    pub plans: usize,
    /// Workload scale the campaign runs at.
    pub scale: Scale,
    /// Platform under test. Smaller than the paper platform by default
    /// so a sixty-plan campaign stays in CLI territory.
    pub platform: PlatformConfig,
    /// Epochs per supervised run.
    pub epochs: usize,
    /// Invariant 4: the online run may take at most this factor × the
    /// slower of the fault-free and unremapped runs.
    pub slowdown_factor: f64,
    /// Directory that receives `chaos_repro_*.json` files.
    pub repro_dir: PathBuf,
    /// Worker pool for the per-plan invariant checks. Plans are
    /// generated sequentially (the generator consumes one RNG stream)
    /// and shrinking stays sequential; only the independent
    /// [`check_plan`] evaluations fan out, so the campaign report is
    /// byte-identical for any pool size.
    pub pool: Pool,
}

impl ChaosConfig {
    /// Default campaign at a seed: 60 plans on a 16/8/4 platform with
    /// small caches (so eviction and dirty-line replay stay exercised).
    pub fn with_seed(seed: u64) -> Self {
        ChaosConfig {
            seed,
            plans: 60,
            scale: Scale::Test,
            platform: PlatformConfig::paper_default()
                .with_topology(16, 8, 4)
                .with_cache_chunks(8, 8, 8),
            epochs: 4,
            slowdown_factor: 2.0,
            repro_dir: PathBuf::from("."),
            pool: Pool::from_env(),
        }
    }
}

/// One checked plan, for the campaign log.
#[derive(Debug, Clone)]
pub struct PlanSummary {
    /// Plan index within the campaign (0-based).
    pub index: usize,
    /// Application the plan ran against.
    pub app: String,
    /// Number of scheduled fault events.
    pub events: usize,
    /// Whether the plan carried a transient-error model.
    pub transient: bool,
    /// Invariant violations (empty = pass).
    pub violations: Vec<String>,
}

/// A failing plan after shrinking.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// Plan index within the campaign.
    pub plan_index: usize,
    /// Application the plan ran against.
    pub app: String,
    /// Violations of the *shrunk* plan.
    pub violations: Vec<String>,
    /// The minimal failing plan.
    pub shrunk: FaultPlan,
    /// Where the repro JSON was written (`None` if writing failed).
    pub repro_path: Option<PathBuf>,
}

/// Result of a whole campaign.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The campaign seed.
    pub seed: u64,
    /// Per-plan outcomes, in generation order.
    pub plans: Vec<PlanSummary>,
    /// Shrunk failures with their repro files.
    pub failures: Vec<ChaosFailure>,
}

impl ChaosReport {
    /// True when every plan passed every invariant.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Everything derivable once per application: the joint plan, its
/// lowering, and the fault-free reference run.
struct AppCtx {
    name: String,
    program: Program,
    data: DataSpace,
    chunks: Vec<IterationChunk>,
    dist: Distribution,
    full: MappedProgram,
    clean_ns: u64,
    clean_written: BTreeSet<usize>,
    expected_cov: BTreeMap<(usize, usize), u64>,
}

fn build_ctx(app: &cachemap_workloads::Application, platform: &PlatformConfig) -> AppCtx {
    let data = DataSpace::new(&app.program.arrays, platform.chunk_bytes);
    let tree = HierarchyTree::from_config(platform).expect("valid platform config");
    let (chunks, dist) = plan_joint(
        &app.program,
        &data,
        &tree,
        &ClusterParams::default(),
        &ScheduleParams::default(),
    );
    let full = cachemap_core::codegen::lower_distribution(&dist, &chunks, &app.program, &data);
    let clean = Simulator::new(platform.clone())
        .expect("valid platform config")
        .run(&full)
        .expect("well-formed mapped program");
    let clean_written = written_chunks(&dist, &chunks, &app.program, &data);
    let mut expected_cov = BTreeMap::new();
    for items in &dist.per_client {
        for it in items {
            for i in it.start..it.end {
                *expected_cov.entry((it.chunk, i)).or_insert(0u64) += 1;
            }
        }
    }
    AppCtx {
        name: app.name.to_string(),
        program: app.program.clone(),
        data,
        chunks,
        dist,
        full,
        clean_ns: clean.exec_time_ns,
        clean_written,
        expected_cov,
    }
}

/// Draws `k` distinct values from `0..n` (partial Fisher–Yates).
fn distinct(rng: &mut XorShift64, n: usize, k: usize) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    let k = k.min(n);
    for i in 0..k {
        let j = rng.usize_in(i, n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

/// Generates one randomized fault plan. Plans are always valid for the
/// platform: crash storms never take down every I/O node, and cache
/// degradations never target a node that crashes earlier (the
/// `CrashDegradeOverlap` rule) because crash and degrade node pools are
/// kept disjoint.
fn gen_plan(rng: &mut XorShift64, platform: &PlatformConfig, horizon_ns: u64) -> FaultPlan {
    let span = horizon_ns.max(2);
    let at = |rng: &mut XorShift64| 1 + rng.next_below(span - 1);
    let num_io = platform.num_io_nodes;
    let num_storage = platform.num_storage_nodes;
    let mut plan = FaultPlan::new();
    match rng.usize_in(0, 4) {
        // Crash storm: several I/O nodes (never all) and sometimes a
        // storage node go down at independent times.
        0 => {
            let k = rng.usize_in(1, num_io.max(2));
            for io in distinct(rng, num_io, k) {
                let t = at(rng);
                plan = plan.with_event(FaultEvent::IoNodeCrash { io, at_ns: t });
            }
            if rng.chance(1, 3) {
                let t = at(rng);
                plan = plan.with_event(FaultEvent::StorageNodeCrash {
                    storage: rng.usize_in(0, num_storage),
                    at_ns: t,
                });
            }
        }
        // Rolling degradation: disks slow down and I/O caches shrink in
        // waves; nothing crashes, so no overlap is possible.
        1 => {
            let d = rng.usize_in(1, 4);
            for storage in distinct(rng, num_storage, d) {
                let t = at(rng);
                let f = rng.usize_in(2, 7) as u32;
                plan = plan.with_event(FaultEvent::DiskDegrade {
                    storage,
                    at_ns: t,
                    latency_factor: f,
                });
            }
            let c = rng.usize_in(0, 3);
            for node in distinct(rng, num_io, c) {
                let t = at(rng);
                let cap = rng.usize_in(1, 5);
                plan = plan.with_event(FaultEvent::CacheDegrade {
                    level: DegradeLevel::Io,
                    node,
                    at_ns: t,
                    capacity_chunks: cap,
                });
            }
        }
        // Transient burst: seeded retry storms, sometimes on top of a
        // single crash.
        2 => {
            let rate = rng.usize_in(2_000, 80_000) as u32;
            let seed = rng.next_u64();
            plan = plan.with_transient(TransientFaults {
                rate_ppm: rate,
                seed,
            });
            if rng.chance(1, 2) {
                let io = rng.usize_in(0, num_io);
                let t = at(rng);
                plan = plan.with_event(FaultEvent::IoNodeCrash { io, at_ns: t });
            }
        }
        // Mixed: crashes on one pool of I/O nodes, cache degradation on
        // a disjoint pool, disk degradation, maybe transients.
        _ => {
            let k = rng.usize_in(1, num_io.max(2));
            let pool = distinct(rng, num_io, num_io);
            let (crashed, healthy) = pool.split_at(k.min(pool.len().saturating_sub(1)).max(1));
            for &io in crashed {
                let t = at(rng);
                plan = plan.with_event(FaultEvent::IoNodeCrash { io, at_ns: t });
            }
            for &node in healthy.iter().take(rng.usize_in(0, 3)) {
                let t = at(rng);
                let cap = rng.usize_in(1, 5);
                plan = plan.with_event(FaultEvent::CacheDegrade {
                    level: DegradeLevel::Io,
                    node,
                    at_ns: t,
                    capacity_chunks: cap,
                });
            }
            if rng.chance(1, 2) {
                let storage = rng.usize_in(0, num_storage);
                let t = at(rng);
                let f = rng.usize_in(2, 5) as u32;
                plan = plan.with_event(FaultEvent::DiskDegrade {
                    storage,
                    at_ns: t,
                    latency_factor: f,
                });
            }
            if rng.chance(1, 4) {
                let rate = rng.usize_in(1_000, 20_000) as u32;
                let seed = rng.next_u64();
                plan = plan.with_transient(TransientFaults {
                    rate_ppm: rate,
                    seed,
                });
            }
        }
    }
    plan
}

/// Runs one plan through the supervisor and checks the four invariants.
/// Returns the violations (empty = pass).
fn check_plan(
    ctx: &AppCtx,
    platform: &PlatformConfig,
    plan: &FaultPlan,
    epochs: usize,
    slowdown_factor: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    let sim = match Simulator::new(platform.clone())
        .expect("valid platform config")
        .with_fault_plan(plan.clone())
    {
        Ok(sim) => sim,
        Err(e) => return vec![format!("plan rejected by the simulator: {e}")],
    };
    let unremapped_ns = match sim.run(&ctx.full) {
        Ok(rep) => rep.exec_time_ns,
        Err(e) => {
            violations.push(format!("unremapped run failed: {e}"));
            return violations;
        }
    };
    let cfg = OnlineConfig {
        epochs,
        bucket_ns: (ctx.clean_ns / 5000).max(20_000),
        ..OnlineConfig::default()
    };
    let out = match run_online(&sim, &ctx.program, &ctx.data, &ctx.chunks, &ctx.dist, &cfg) {
        Ok(out) => out,
        Err(e) => {
            // Invariant 2: termination under any plan.
            violations.push(format!("online run did not terminate cleanly: {e}"));
            return violations;
        }
    };
    // Invariant 1: every iteration chunk executed exactly once.
    let cov = out.coverage();
    if cov != ctx.expected_cov {
        let extra = cov
            .iter()
            .filter(|(k, &v)| ctx.expected_cov.get(k) != Some(&v))
            .take(3)
            .map(|((c, i), v)| format!("chunk {c} iter {i} ran {v}x"))
            .collect::<Vec<_>>()
            .join(", ");
        let missing = ctx
            .expected_cov
            .keys()
            .filter(|k| !cov.contains_key(k))
            .count();
        violations.push(format!(
            "coverage violated: {extra}{}{missing} iterations missing",
            if extra.is_empty() { "" } else { "; " }
        ));
    }
    // Invariant 3: same output set as the fault-free run.
    let mut written = BTreeSet::new();
    for dist in &out.executed {
        written.extend(written_chunks(dist, &ctx.chunks, &ctx.program, &ctx.data));
    }
    if written != ctx.clean_written {
        violations.push(format!(
            "output set differs from the fault-free run: {} written vs {} expected",
            written.len(),
            ctx.clean_written.len()
        ));
    }
    // Invariant 4: bounded slowdown vs the worse of clean/unremapped.
    let bound = (ctx.clean_ns.max(unremapped_ns) as f64) * slowdown_factor;
    if out.exec_time_ns as f64 > bound {
        violations.push(format!(
            "slowdown unbounded: online {} ns > {slowdown_factor}x max(clean {} ns, unremapped {} ns)",
            out.exec_time_ns, ctx.clean_ns, unremapped_ns
        ));
    }
    violations
}

/// Greedy shrink: repeatedly drop single events (then the transient
/// model) as long as the plan still violates an invariant. Returns the
/// minimal failing plan and its violations.
fn shrink(
    ctx: &AppCtx,
    platform: &PlatformConfig,
    plan: &FaultPlan,
    epochs: usize,
    slowdown_factor: f64,
) -> (FaultPlan, Vec<String>) {
    let mut cur = plan.clone();
    let mut cur_violations = check_plan(ctx, platform, &cur, epochs, slowdown_factor);
    loop {
        let mut reduced = false;
        for i in 0..cur.events.len() {
            let mut cand = cur.clone();
            cand.events.remove(i);
            let v = check_plan(ctx, platform, &cand, epochs, slowdown_factor);
            if !v.is_empty() {
                cur = cand;
                cur_violations = v;
                reduced = true;
                break;
            }
        }
        if !reduced && cur.transient.is_some() {
            let mut cand = cur.clone();
            cand.transient = None;
            let v = check_plan(ctx, platform, &cand, epochs, slowdown_factor);
            if !v.is_empty() {
                cur = cand;
                cur_violations = v;
                reduced = true;
            }
        }
        if !reduced {
            return (cur, cur_violations);
        }
    }
}

fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Paper => "paper",
    }
}

fn repro_json(cfg: &ChaosConfig, failure: &ChaosFailure) -> Json {
    Json::object(vec![
        ("seed", Json::UInt(cfg.seed)),
        ("plan_index", Json::UInt(failure.plan_index as u64)),
        ("app", Json::Str(failure.app.clone())),
        ("scale", Json::Str(scale_label(cfg.scale).to_string())),
        (
            "platform",
            Json::object(vec![
                ("clients", Json::UInt(cfg.platform.num_clients as u64)),
                ("io_nodes", Json::UInt(cfg.platform.num_io_nodes as u64)),
                (
                    "storage_nodes",
                    Json::UInt(cfg.platform.num_storage_nodes as u64),
                ),
                (
                    "l1_chunks",
                    Json::UInt(cfg.platform.client_cache_chunks as u64),
                ),
                ("l2_chunks", Json::UInt(cfg.platform.io_cache_chunks as u64)),
                (
                    "l3_chunks",
                    Json::UInt(cfg.platform.storage_cache_chunks as u64),
                ),
            ]),
        ),
        ("epochs", Json::UInt(cfg.epochs as u64)),
        ("slowdown_factor", Json::Float(cfg.slowdown_factor)),
        (
            "violations",
            Json::Array(
                failure
                    .violations
                    .iter()
                    .map(|v| Json::Str(v.clone()))
                    .collect(),
            ),
        ),
        ("fault_plan", failure.shrunk.to_json()),
    ])
}

/// Runs a seeded chaos campaign: `cfg.plans` randomized fault plans,
/// each checked against the four invariants, failures shrunk and
/// written as repro JSON files. `progress` is called once per plan with
/// its summary (hook for CLI logging; pass `|_| {}` to stay silent).
pub fn run_campaign(cfg: &ChaosConfig, mut progress: impl FnMut(&PlanSummary)) -> ChaosReport {
    let apps = cachemap_workloads::suite(cfg.scale);
    let contexts: Vec<AppCtx> = apps.iter().map(|a| build_ctx(a, &cfg.platform)).collect();
    let mut rng = XorShift64::new(cfg.seed);
    let mut report = ChaosReport {
        seed: cfg.seed,
        plans: Vec::with_capacity(cfg.plans),
        failures: Vec::new(),
    };
    // Plan generation consumes one RNG stream, so it stays sequential
    // (it is cheap); the expensive invariant checks are pure functions
    // of (context, plan) and fan out onto the pool. Results come back
    // in plan order, so progress logging, the report, and shrinking are
    // byte-identical to a sequential campaign.
    let planned: Vec<(usize, FaultPlan)> = (0..cfg.plans)
        .map(|_| {
            let ctx_index = rng.usize_in(0, contexts.len());
            let plan = gen_plan(&mut rng, &cfg.platform, contexts[ctx_index].clean_ns);
            debug_assert!(plan.validate(&cfg.platform).is_ok());
            (ctx_index, plan)
        })
        .collect();
    let checked: Vec<Vec<String>> = cfg.pool.map(&planned, |_, (ctx_index, plan)| {
        check_plan(
            &contexts[*ctx_index],
            &cfg.platform,
            plan,
            cfg.epochs,
            cfg.slowdown_factor,
        )
    });
    for (index, ((ctx_index, plan), violations)) in planned.iter().zip(checked).enumerate() {
        let ctx = &contexts[*ctx_index];
        let summary = PlanSummary {
            index,
            app: ctx.name.clone(),
            events: plan.events.len(),
            transient: plan.transient.is_some(),
            violations: violations.clone(),
        };
        progress(&summary);
        report.plans.push(summary);
        if !violations.is_empty() {
            let (shrunk, shrunk_violations) =
                shrink(ctx, &cfg.platform, plan, cfg.epochs, cfg.slowdown_factor);
            let mut failure = ChaosFailure {
                plan_index: index,
                app: ctx.name.clone(),
                violations: shrunk_violations,
                shrunk,
                repro_path: None,
            };
            let path = cfg
                .repro_dir
                .join(format!("chaos_repro_{}_{index}.json", cfg.seed));
            let body = repro_json(cfg, &failure).to_string_pretty();
            if std::fs::write(&path, body).is_ok() {
                failure.repro_path = Some(path);
            }
            report.failures.push(failure);
        }
    }
    report
}

/// What replaying a repro file produced.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The violations recorded in the file.
    pub recorded: Vec<String>,
    /// The violations observed when re-running the plan.
    pub observed: Vec<String>,
}

impl ReplayOutcome {
    /// True when re-running the shrunk plan reproduces the recorded
    /// failure exactly.
    pub fn reproduced(&self) -> bool {
        !self.observed.is_empty() && self.observed == self.recorded
    }
}

/// Re-runs the shrunk plan of a `chaos_repro_*.json` file and compares
/// the observed violations against the recorded ones.
pub fn replay(path: &Path) -> Result<ReplayOutcome, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read repro file: {e}"))?;
    let json = cachemap_util::json::parse(&text).map_err(|e| format!("malformed repro: {e}"))?;
    let get = |key: &str| {
        json.get(key)
            .ok_or_else(|| format!("repro file missing `{key}`"))
    };
    let app_name = get("app")?
        .as_str()
        .ok_or("`app` must be a string")?
        .to_string();
    let scale = match get("scale")?.as_str() {
        Some("paper") => Scale::Paper,
        _ => Scale::Test,
    };
    let platform_json = get("platform")?;
    let dim = |key: &str| {
        platform_json
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("platform field `{key}` missing"))
    };
    let platform = PlatformConfig::paper_default()
        .with_topology(
            dim("clients")? as usize,
            dim("io_nodes")? as usize,
            dim("storage_nodes")? as usize,
        )
        .with_cache_chunks(
            dim("l1_chunks")? as usize,
            dim("l2_chunks")? as usize,
            dim("l3_chunks")? as usize,
        );
    let epochs = get("epochs")?.as_u64().ok_or("`epochs` must be a number")? as usize;
    let slowdown_factor = get("slowdown_factor")?
        .as_f64()
        .ok_or("`slowdown_factor` must be a number")?;
    let recorded: Vec<String> = get("violations")?
        .as_array()
        .ok_or("`violations` must be an array")?
        .iter()
        .filter_map(|v| v.as_str().map(str::to_string))
        .collect();
    let plan = FaultPlan::from_json(get("fault_plan")?).map_err(|e| format!("bad plan: {e}"))?;
    let app = cachemap_workloads::by_name(&app_name, scale)
        .ok_or_else(|| format!("unknown app {app_name}"))?;
    let ctx = build_ctx(&app, &platform);
    let observed = check_plan(&ctx, &platform, &plan, epochs, slowdown_factor);
    Ok(ReplayOutcome { recorded, observed })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(seed: u64, plans: usize) -> ChaosConfig {
        ChaosConfig {
            plans,
            ..ChaosConfig::with_seed(seed)
        }
    }

    #[test]
    fn generated_plans_are_valid_and_diverse() {
        let cfg = small_cfg(7, 0);
        let mut rng = XorShift64::new(7);
        let mut kinds = BTreeSet::new();
        let mut io_crashes_max = 0usize;
        for _ in 0..200 {
            let plan = gen_plan(&mut rng, &cfg.platform, 50_000_000);
            plan.validate(&cfg.platform).expect("generated plan valid");
            let crashes = plan
                .events
                .iter()
                .filter(|e| matches!(e, FaultEvent::IoNodeCrash { .. }))
                .count();
            assert!(
                crashes < cfg.platform.num_io_nodes,
                "a storm must never take down every I/O node"
            );
            io_crashes_max = io_crashes_max.max(crashes);
            for ev in &plan.events {
                kinds.insert(match ev {
                    FaultEvent::IoNodeCrash { .. } => "io_crash",
                    FaultEvent::StorageNodeCrash { .. } => "storage_crash",
                    FaultEvent::DiskDegrade { .. } => "disk_degrade",
                    FaultEvent::CacheDegrade { .. } => "cache_degrade",
                });
            }
            if plan.transient.is_some() {
                kinds.insert("transient");
            }
        }
        assert!(kinds.len() >= 4, "campaign must mix fault kinds: {kinds:?}");
        assert!(io_crashes_max >= 2, "storms must crash multiple nodes");
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let cfg = small_cfg(11, 4);
        let a = run_campaign(&cfg, |_| {});
        let b = run_campaign(&cfg, |_| {});
        assert_eq!(a.plans.len(), 4);
        for (x, y) in a.plans.iter().zip(&b.plans) {
            assert_eq!(x.app, y.app);
            assert_eq!(x.events, y.events);
            assert_eq!(x.violations, y.violations);
        }
    }

    #[test]
    fn small_campaign_holds_all_invariants() {
        let report = run_campaign(&small_cfg(42, 6), |_| {});
        assert!(
            report.clean(),
            "invariant violations: {:?}",
            report.failures
        );
    }

    #[test]
    fn shrinking_and_replay_reproduce_a_forced_failure() {
        // Force a failure by checking against an impossible slowdown
        // bound, then confirm the shrink keeps the failure minimal and
        // the repro file replays to the same violation.
        let dir = std::env::temp_dir().join("cachemap_chaos_test");
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = ChaosConfig {
            plans: 8,
            slowdown_factor: 0.5, // online can never be 2x faster than clean
            repro_dir: dir.clone(),
            ..ChaosConfig::with_seed(1234)
        };
        let report = run_campaign(&cfg, |_| {});
        assert!(
            !report.failures.is_empty(),
            "an impossible bound must produce failures"
        );
        let failure = &report.failures[0];
        assert!(
            !failure.violations.is_empty(),
            "shrunk plan must still fail"
        );
        let path = failure.repro_path.as_ref().expect("repro file written");
        let outcome = replay(path).expect("repro file replays");
        assert_eq!(outcome.recorded, failure.violations);
        assert!(
            outcome.reproduced(),
            "replay must reproduce the recorded violation: {outcome:?}"
        );
        for f in &report.failures {
            if let Some(p) = &f.repro_path {
                let _ = std::fs::remove_file(p);
            }
        }
    }
}
