//! One function per table/figure of the paper's evaluation (Section 5).
//!
//! Each function returns one or more [`Matrix`] results that the `repro`
//! binary renders and archives. Experiments that share simulation runs
//! (Table 2 and Figures 10/11/18 all use the default-platform runs) take
//! the shared [`AppResults`] so the suite is simulated once.

use crate::report::{CellFormat, Matrix};
use crate::{run_cell, run_suite, AppResults};
use cachemap_core::deps::DepStrategy;
use cachemap_core::{MapperConfig, Version};
use cachemap_storage::{PlatformConfig, SimReport};
use cachemap_workloads::Scale;

/// All four versions in figure order.
const ALL: [Version; 4] = Version::ALL;

/// Metric extractor used by the per-figure tables.
type MetricFn = fn(&SimReport) -> f64;

/// Runs the whole suite on the default platform with all four versions —
/// the shared input of Table 2 and Figures 10, 11, 18.
pub fn default_runs(scale: Scale, platform: &PlatformConfig) -> Vec<AppResults> {
    run_suite(scale, platform, &MapperConfig::default(), &ALL)
}

/// Table 1: the active platform parameters (scaled values annotated).
pub fn table1(platform: &PlatformConfig) -> String {
    let mut out = String::from("== table1 — System parameters (scaled reproduction) ==\n");
    let rows = [
        (
            "Number of Client Nodes",
            format!("{}", platform.num_clients),
        ),
        ("Number of I/O Nodes", format!("{}", platform.num_io_nodes)),
        (
            "Number of Storage Nodes",
            format!("{}", platform.num_storage_nodes),
        ),
        (
            "Data Striping",
            format!("all {} storage nodes", platform.num_storage_nodes),
        ),
        (
            "Stripe/Chunk Size",
            format!("{} KB", platform.chunk_bytes / 1024),
        ),
        ("RPM", format!("{}", platform.rpm)),
        (
            "Cache Capacity/Node (chunks, client/IO/storage)",
            format!(
                "({},{},{})",
                platform.client_cache_chunks,
                platform.io_cache_chunks,
                platform.storage_cache_chunks
            ),
        ),
        (
            "  (paper: 2GB per node; scaled with dataset ≈0.6-1.5%/node)",
            String::new(),
        ),
    ];
    for (k, v) in rows {
        out.push_str(&format!("{k:<52} {v}\n"));
    }
    out
}

/// Table 2: absolute miss rates of the original version per cache level.
pub fn table2(runs: &[AppResults], scale: Scale) -> Matrix {
    let apps = cachemap_workloads::suite(scale);
    let mut m = Matrix::new(
        "table2",
        "Original-version miss rates (%) — measured vs paper",
        vec![
            "app".into(),
            "L1".into(),
            "L2".into(),
            "L3".into(),
            "L1(paper)".into(),
            "L2(paper)".into(),
            "L3(paper)".into(),
        ],
        CellFormat::Percent,
    );
    for (r, app) in runs.iter().zip(&apps) {
        let o = r.get("original");
        let (p1, p2, p3) = app.paper_miss_rates;
        m.row(
            r.app.clone(),
            vec![
                o.l1_miss_rate(),
                o.l2_miss_rate(),
                o.l3_miss_rate(),
                p1,
                p2,
                p3,
            ],
        );
    }
    m
}

fn norm(x: f64, base: f64) -> f64 {
    if base == 0.0 {
        1.0
    } else {
        x / base
    }
}

/// Figure 10: normalized L1/L2/L3 miss rates (original = 1.0) for the
/// intra- and inter-processor schemes.
pub fn fig10(runs: &[AppResults]) -> Vec<Matrix> {
    let mut out = Vec::new();
    for (level, get) in [
        (
            "L1",
            (|r: &SimReport| r.l1_miss_rate()) as fn(&SimReport) -> f64,
        ),
        ("L2", |r: &SimReport| r.l2_miss_rate()),
        ("L3", |r: &SimReport| r.l3_miss_rate()),
    ] {
        let mut m = Matrix::new(
            format!("fig10-{level}"),
            format!("Normalized {level} miss rate (original = 1.0)"),
            vec![
                "app".into(),
                "intra-processor".into(),
                "inter-processor".into(),
            ],
            CellFormat::Ratio,
        );
        for r in runs {
            let base = get(r.get("original"));
            m.row(
                r.app.clone(),
                vec![
                    norm(get(r.get("intra-processor")), base),
                    norm(get(r.get("inter-processor")), base),
                ],
            );
        }
        let means = m.column_means();
        m.note(format!(
            "avg {level} miss reduction: intra {:.1}%, inter {:.1}% (paper: {})",
            (1.0 - means[0]) * 100.0,
            (1.0 - means[1]) * 100.0,
            match level {
                "L1" => "intra 16.2%, inter 15.3%",
                "L2" => "intra 2.1%, inter 31.0%",
                _ => "intra 0.5%, inter 24.6%",
            }
        ));
        out.push(m);
    }
    out
}

/// Figure 11: normalized I/O latency and overall execution time.
pub fn fig11(runs: &[AppResults]) -> Vec<Matrix> {
    let mut out = Vec::new();
    for (metric, get) in [
        (
            "I/O latency",
            (|r: &SimReport| r.io_latency_ns as f64) as fn(&SimReport) -> f64,
        ),
        ("execution time", |r: &SimReport| r.exec_time_ns as f64),
    ] {
        let mut m = Matrix::new(
            if metric == "I/O latency" {
                "fig11-io"
            } else {
                "fig11-exec"
            },
            format!("Normalized {metric} (original = 1.0)"),
            vec![
                "app".into(),
                "intra-processor".into(),
                "inter-processor".into(),
            ],
            CellFormat::Ratio,
        );
        for r in runs {
            let base = get(r.get("original"));
            m.row(
                r.app.clone(),
                vec![
                    norm(get(r.get("intra-processor")), base),
                    norm(get(r.get("inter-processor")), base),
                ],
            );
        }
        let means = m.column_means();
        m.note(format!(
            "avg {metric} improvement: intra {:.1}%, inter {:.1}% (paper: {})",
            (1.0 - means[0]) * 100.0,
            (1.0 - means[1]) * 100.0,
            if metric == "I/O latency" {
                "intra 6.8%, inter 26.3%"
            } else {
                "intra 3.5%, inter 18.9%"
            }
        ));
        out.push(m);
    }
    out
}

/// Figure 12: inter-processor I/O latency and execution time, normalized
/// to the original version, under different (w, x, y) topologies.
pub fn fig12(scale: Scale, base: &PlatformConfig) -> Vec<Matrix> {
    let topologies: [(usize, usize, usize); 5] = [
        (32, 16, 8),
        (64, 32, 16),
        (64, 16, 8),
        (128, 32, 16),
        (128, 64, 32),
    ];
    sweep(
        "fig12",
        "under topology (clients, I/O nodes, storage nodes)",
        scale,
        topologies
            .iter()
            .map(|&(w, x, y)| {
                (
                    format!("({w},{x},{y})"),
                    base.clone().with_topology(w, x, y),
                )
            })
            .collect(),
        "savings grow with clients per shared cache (paper: (128,32,16) best)",
    )
}

/// Figure 13: sensitivity to per-node cache capacities (W, X, Y).
/// Labels are in paper-GB; 2 GB corresponds to the scaled default.
pub fn fig13(scale: Scale, base: &PlatformConfig) -> Vec<Matrix> {
    // "2 GB" at each level corresponds to the base platform's per-level
    // chunk capacity (the levels scale differently — see
    // `PlatformConfig::paper_default`), so the (2GB,2GB,2GB) row is
    // exactly the default platform of Figures 10/11.
    let l1 = |gb: usize| base.client_cache_chunks / 2 * gb;
    let l2 = |gb: usize| base.io_cache_chunks / 2 * gb;
    let l3 = |gb: usize| base.storage_cache_chunks / 2 * gb;
    let configs: [(&str, usize, usize, usize); 5] = [
        ("(1GB,1GB,1GB)", 1, 1, 1),
        ("(2GB,2GB,2GB)", 2, 2, 2),
        ("(2GB,4GB,4GB)", 2, 4, 4),
        ("(4GB,4GB,4GB)", 4, 4, 4),
        ("(4GB,8GB,8GB)", 4, 8, 8),
    ];
    sweep(
        "fig13",
        "under cache capacities",
        scale,
        configs
            .iter()
            .map(|&(label, w, x, y)| {
                (
                    label.to_string(),
                    base.clone().with_cache_chunks(l1(w), l2(x), l3(y)),
                )
            })
            .collect(),
        "bigger caches shrink the savings; halving them boosts ours (paper)",
    )
}

/// Figure 14: sensitivity to the data chunk size (cache byte capacity
/// held constant, as in the paper).
pub fn fig14(scale: Scale, base: &PlatformConfig) -> Vec<Matrix> {
    let sizes = [16u64, 32, 64, 128];
    sweep(
        "fig14",
        "under data chunk sizes",
        scale,
        sizes
            .iter()
            .map(|&kb| {
                let bytes = kb * 1024;
                let factor = (base.chunk_bytes / bytes).max(1) as usize;
                let shrink = (bytes / base.chunk_bytes).max(1) as usize;
                let chunks = base.client_cache_chunks * factor / shrink;
                (
                    format!("{kb}KB"),
                    base.clone()
                        .with_chunk_bytes(bytes)
                        .with_cache_chunks(chunks, chunks, chunks),
                )
            })
            .collect(),
        "smaller chunks → finer clustering → bigger savings (paper)",
    )
}

/// Shared sweep driver for Figures 12-14: for each platform variant, run
/// original + inter-processor over the suite and report suite-average
/// normalized I/O latency and execution time.
fn sweep(
    id: &str,
    what: &str,
    scale: Scale,
    variants: Vec<(String, PlatformConfig)>,
    note: &str,
) -> Vec<Matrix> {
    let mut io = Matrix::new(
        format!("{id}-io"),
        format!("Normalized I/O latency (inter-processor vs original) {what}"),
        suite_columns(),
        CellFormat::Ratio,
    );
    let mut exec = Matrix::new(
        format!("{id}-exec"),
        format!("Normalized execution time (inter-processor vs original) {what}"),
        suite_columns(),
        CellFormat::Ratio,
    );
    for (label, platform) in variants {
        let runs = run_suite(
            scale,
            &platform,
            &MapperConfig::default(),
            &[Version::Original, Version::InterProcessor],
        );
        let mut io_cells = Vec::new();
        let mut exec_cells = Vec::new();
        for r in &runs {
            let o = r.get("original");
            let i = r.get("inter-processor");
            io_cells.push(norm(i.io_latency_ns as f64, o.io_latency_ns as f64));
            exec_cells.push(norm(i.exec_time_ns as f64, o.exec_time_ns as f64));
        }
        io.row(label.clone(), io_cells);
        exec.row(label, exec_cells);
    }
    io.note(note.to_string());
    exec.note(note.to_string());
    vec![io, exec]
}

fn suite_columns() -> Vec<String> {
    let mut cols = vec!["config".to_string()];
    cols.extend(cachemap_workloads::NAMES.iter().map(|s| s.to_string()));
    cols
}

/// Figure 18: the scheduling enhancement — normalized L1 miss rate, I/O
/// latency, and execution time for all three optimized versions.
pub fn fig18(runs: &[AppResults]) -> Vec<Matrix> {
    let metrics: [(&str, &str, MetricFn, &str); 3] = [
        (
            "fig18-l1",
            "Normalized L1 miss rate",
            |r: &SimReport| r.l1_miss_rate(),
            "paper: scheduling reaches 27.8% avg L1 miss reduction",
        ),
        (
            "fig18-io",
            "Normalized I/O latency",
            |r: &SimReport| r.io_latency_ns as f64,
            "paper: scheduling lifts I/O savings to 30.7%",
        ),
        (
            "fig18-exec",
            "Normalized execution time",
            |r: &SimReport| r.exec_time_ns as f64,
            "paper: scheduling lifts execution savings to 21.9%",
        ),
    ];
    metrics
        .iter()
        .map(|(id, title, get, note)| {
            let mut m = Matrix::new(
                *id,
                format!("{title} (original = 1.0), with local scheduling"),
                vec![
                    "app".into(),
                    "intra-processor".into(),
                    "inter-processor".into(),
                    "inter+sched".into(),
                ],
                CellFormat::Ratio,
            );
            for r in runs {
                let base = get(r.get("original"));
                m.row(
                    r.app.clone(),
                    vec![
                        norm(get(r.get("intra-processor")), base),
                        norm(get(r.get("inter-processor")), base),
                        norm(get(r.get("inter-processor+sched")), base),
                    ],
                );
            }
            m.note(note.to_string());
            m
        })
        .collect()
}

/// §5.4 ablation: α/β weight sweep for the scheduling enhancement
/// (paper: equal weights performed best).
pub fn alphabeta(scale: Scale, platform: &PlatformConfig) -> Matrix {
    let mut m = Matrix::new(
        "alphabeta",
        "Scheduling weights sweep: suite-average normalized metrics (original = 1.0)",
        vec![
            "alpha/beta".into(),
            "L1 miss".into(),
            "I/O latency".into(),
            "exec time".into(),
        ],
        CellFormat::Ratio,
    );
    for (alpha, beta) in [
        (1.0, 0.0),
        (0.75, 0.25),
        (0.5, 0.5),
        (0.25, 0.75),
        (0.0, 1.0),
    ] {
        let cfg = MapperConfig {
            schedule: cachemap_core::schedule::ScheduleParams {
                alpha,
                beta,
                ..Default::default()
            },
            ..MapperConfig::default()
        };
        let runs = run_suite(
            scale,
            platform,
            &cfg,
            &[Version::Original, Version::InterProcessorScheduled],
        );
        let (mut l1, mut io, mut ex) = (0.0, 0.0, 0.0);
        for r in &runs {
            let o = r.get("original");
            let s = r.get("inter-processor+sched");
            l1 += norm(s.l1_miss_rate(), o.l1_miss_rate());
            io += norm(s.io_latency_ns as f64, o.io_latency_ns as f64);
            ex += norm(s.exec_time_ns as f64, o.exec_time_ns as f64);
        }
        let n = runs.len() as f64;
        m.row(
            format!("α={alpha:.2} β={beta:.2}"),
            vec![l1 / n, io / n, ex / n],
        );
    }
    m.note("paper: giving α and β equal values generated the best results");
    m
}

/// §5.4 ablation: dependence-handling strategies on a recurrence-bearing
/// variant of the contour workload.
pub fn deps_exp(scale: Scale, platform: &PlatformConfig) -> Matrix {
    // contour with the output fed back as input: CT[i][j] reads CT[i-1][j].
    let mut app = cachemap_workloads::by_name("contour", scale).expect("contour exists");
    // Shift the write's row usage to create a loop-carried flow dependence.
    let c = match scale {
        Scale::Paper => 32i64,
        Scale::Test => 8,
    };
    let e = cachemap_workloads::CHUNK_ELEMS;
    app.program.nests[0]
        .refs
        .push(cachemap_polyhedral::ArrayRef::read(
            1,
            vec![cachemap_polyhedral::AffineExpr::new(
                vec![c * e, e, 1],
                -(c * e),
            )],
        ));
    // Keep the read in bounds: start the row loop at 1.
    let old = app.program.nests[0].space.clone();
    let bounds = old.rectangular_bounds();
    app.program.nests[0].space = cachemap_polyhedral::IterationSpace::new(
        bounds
            .iter()
            .enumerate()
            .map(|(k, &(lo, hi))| {
                cachemap_polyhedral::Loop::constant(if k == 0 { lo + 1 } else { lo }, hi)
            })
            .collect(),
    );

    let mut m = Matrix::new(
        "deps",
        "Dependence handling on a recurrence workload (inter-processor)",
        vec![
            "strategy".into(),
            "I/O latency (norm)".into(),
            "exec time (norm)".into(),
        ],
        CellFormat::Ratio,
    );
    let base = run_cell(&app, platform, &MapperConfig::default(), Version::Original);
    for (label, strategy) in [
        ("co-cluster", DepStrategy::CoCluster),
        ("sync-insert", DepStrategy::SyncInsert),
    ] {
        let cfg = MapperConfig {
            dep_strategy: strategy,
            ..MapperConfig::default()
        };
        let rep = run_cell(&app, platform, &cfg, Version::InterProcessor);
        m.row(
            label,
            vec![
                norm(rep.io_latency_ns as f64, base.io_latency_ns as f64),
                norm(rep.exec_time_ns as f64, base.exec_time_ns as f64),
            ],
        );
    }
    m.note("paper: sync-insert is the implemented strategy; co-cluster serializes");
    m
}

/// §5.4 extension: mapping multiple nests together vs. in isolation, on
/// the multi-nest apps (sar: 2 nests, apsi: 3 nests).
pub fn multinest(scale: Scale, platform: &PlatformConfig) -> Matrix {
    let mut m = Matrix::new(
        "multinest",
        "Joint multi-nest mapping vs per-nest (inter-processor, normalized to per-nest)",
        vec![
            "app".into(),
            "cache hits (rel)".into(),
            "I/O latency (rel)".into(),
            "exec time (rel)".into(),
        ],
        CellFormat::Ratio,
    );
    for name in ["sar", "apsi"] {
        let app = cachemap_workloads::by_name(name, scale).expect("app exists");
        let separate = run_cell(
            &app,
            platform,
            &MapperConfig::default(),
            Version::InterProcessor,
        );
        let joint_cfg = MapperConfig {
            joint_nests: true,
            ..MapperConfig::default()
        };
        let joint = run_cell(&app, platform, &joint_cfg, Version::InterProcessor);
        let hits = |r: &SimReport| (r.l1.hits + r.l2.hits + r.l3.hits) as f64;
        m.row(
            name,
            vec![
                norm(hits(&joint), hits(&separate)),
                norm(joint.io_latency_ns as f64, separate.io_latency_ns as f64),
                norm(joint.exec_time_ns as f64, separate.exec_time_ns as f64),
            ],
        );
    }
    m.note("paper: >80% of reuse is intra-nest; joint mapping adds only ~3% more hits");
    m
}

/// Ablation: the three Stage-1 merge linkages (Figure 5 writes the raw
/// dot product; the default normalizes it — see
/// `cachemap_core::cluster::Linkage`).
pub fn linkage_ablation(scale: Scale, platform: &PlatformConfig) -> Matrix {
    use cachemap_core::cluster::{ClusterParams, Linkage};
    let mut m = Matrix::new(
        "linkage",
        "Merge-linkage ablation: suite-average normalized metrics (original = 1.0)",
        vec![
            "linkage".into(),
            "L1 miss".into(),
            "I/O latency".into(),
            "exec time".into(),
        ],
        CellFormat::Ratio,
    );
    for (label, linkage) in [
        ("total (Fig.5 literal)", Linkage::Total),
        ("sqrt", Linkage::Sqrt),
        ("average (default)", Linkage::Average),
    ] {
        let cfg = MapperConfig {
            cluster: ClusterParams {
                linkage,
                ..ClusterParams::default()
            },
            ..MapperConfig::default()
        };
        let runs = run_suite(
            scale,
            platform,
            &cfg,
            &[Version::Original, Version::InterProcessor],
        );
        m.row(label, summarize_vs_original(&runs, "inter-processor"));
    }
    m.note("the literal dot-product rule suffers rich-get-richer collapse at scale");
    m
}

/// Ablation: replacement policies. The paper notes its approach "can
/// work with any storage caching policy"; this sweep checks the claim.
pub fn policy_ablation(scale: Scale, platform: &PlatformConfig) -> Matrix {
    use cachemap_storage::config::PolicyKind;
    let mut m = Matrix::new(
        "policies",
        "Replacement-policy ablation: suite-average normalized metrics (original = 1.0)",
        vec![
            "policy".into(),
            "L1 miss".into(),
            "I/O latency".into(),
            "exec time".into(),
        ],
        CellFormat::Ratio,
    );
    for (label, policy) in [
        ("LRU (paper)", PolicyKind::Lru),
        ("FIFO", PolicyKind::Fifo),
        ("LFU", PolicyKind::Lfu),
        ("SLRU", PolicyKind::Slru),
        ("LFUDA", PolicyKind::Lfuda),
        ("GDSF", PolicyKind::Gdsf),
    ] {
        let p = platform.clone().with_policy(policy);
        let runs = run_suite(
            scale,
            &p,
            &MapperConfig::default(),
            &[Version::Original, Version::InterProcessor],
        );
        m.row(label, summarize_vs_original(&runs, "inter-processor"));
    }
    m.note("the mapping is storage-policy-agnostic, as the paper claims");
    m
}

/// Ablation: scheduling reuse metric (Figure 15's dot product vs the
/// prose's Hamming distance).
pub fn schedule_metric_ablation(scale: Scale, platform: &PlatformConfig) -> Matrix {
    use cachemap_core::schedule::{ReuseMetric, ScheduleParams};
    let mut m = Matrix::new(
        "schedmetric",
        "Scheduling metric ablation: suite-average normalized metrics (original = 1.0)",
        vec![
            "metric".into(),
            "L1 miss".into(),
            "I/O latency".into(),
            "exec time".into(),
        ],
        CellFormat::Ratio,
    );
    for (label, metric) in [
        ("dot product (Fig.15)", ReuseMetric::DotProduct),
        ("Hamming distance", ReuseMetric::HammingDistance),
    ] {
        let cfg = MapperConfig {
            schedule: ScheduleParams {
                metric,
                ..Default::default()
            },
            ..MapperConfig::default()
        };
        let runs = run_suite(
            scale,
            platform,
            &cfg,
            &[Version::Original, Version::InterProcessorScheduled],
        );
        m.row(label, summarize_vs_original(&runs, "inter-processor+sched"));
    }
    m
}

/// Ablation: PVFS-style server read-ahead (the paper's related-work
/// section surveys prefetching at length; this measures how much of the
/// mapping win survives once the storage nodes prefetch aggressively).
pub fn prefetch_ablation(scale: Scale, platform: &PlatformConfig) -> Matrix {
    let mut m = Matrix::new(
        "prefetch",
        "Server read-ahead ablation: suite-average normalized metrics (original = 1.0)",
        vec![
            "read-ahead".into(),
            "L1 miss".into(),
            "I/O latency".into(),
            "exec time".into(),
        ],
        CellFormat::Ratio,
    );
    for chunks in [0usize, 2, 4] {
        let p = platform.clone().with_readahead(chunks);
        let runs = run_suite(
            scale,
            &p,
            &MapperConfig::default(),
            &[Version::Original, Version::InterProcessor],
        );
        m.row(
            format!("{chunks} chunks"),
            summarize_vs_original(&runs, "inter-processor"),
        );
    }
    m.note("read-ahead helps both versions; the relative mapping win should persist");
    m
}

/// Ablation: optional KL-style boundary refinement after clustering
/// (an extension beyond the paper; 0 passes = the paper's pipeline).
pub fn refine_ablation(scale: Scale, platform: &PlatformConfig) -> Matrix {
    let mut m = Matrix::new(
        "refine",
        "Boundary-refinement ablation: suite-average normalized metrics (original = 1.0)",
        vec![
            "passes".into(),
            "L1 miss".into(),
            "I/O latency".into(),
            "exec time".into(),
        ],
        CellFormat::Ratio,
    );
    for passes in [0usize, 1, 3] {
        let cfg = MapperConfig {
            refine_passes: passes,
            ..MapperConfig::default()
        };
        let runs = run_suite(
            scale,
            platform,
            &cfg,
            &[Version::Original, Version::InterProcessor],
        );
        m.row(
            format!("{passes}"),
            summarize_vs_original(&runs, "inter-processor"),
        );
    }
    m.note("extension beyond the paper: KL-style sibling-boundary swaps");
    m
}

/// Suite-average `[L1-miss, I/O, exec]` of `version`, each normalized to
/// the original run of the same suite.
fn summarize_vs_original(runs: &[AppResults], version: &str) -> Vec<f64> {
    let (mut l1, mut io, mut ex) = (0.0, 0.0, 0.0);
    for r in runs {
        let o = r.get("original");
        let v = r.get(version);
        l1 += norm(v.l1_miss_rate(), o.l1_miss_rate());
        io += norm(v.io_latency_ns as f64, o.io_latency_ns as f64);
        ex += norm(v.exec_time_ns as f64, o.exec_time_ns as f64);
    }
    let n = runs.len() as f64;
    vec![l1 / n, io / n, ex / n]
}

/// §5.1 note: compile-time overhead of the mapping passes (the paper
/// reports 46-87% longer compilations; we report absolute mapping time
/// per app next to its simulated accesses).
pub fn mapping_cost(scale: Scale, platform: &PlatformConfig) -> Matrix {
    use std::time::Instant;
    let mut m = Matrix::new(
        "mapping-cost",
        "Mapper wall-clock cost (ms) per app",
        vec![
            "app".into(),
            "inter (ms)".into(),
            "inter+sched (ms)".into(),
            "accesses".into(),
        ],
        CellFormat::Plain,
    );
    let tree =
        cachemap_storage::HierarchyTree::from_config(platform).expect("valid platform config");
    for app in cachemap_workloads::suite(scale) {
        let data = cachemap_polyhedral::DataSpace::new(&app.program.arrays, platform.chunk_bytes);
        let mapper = cachemap_core::Mapper::paper_defaults();
        let t0 = Instant::now();
        let a = mapper.map(
            &app.program,
            &data,
            platform,
            &tree,
            Version::InterProcessor,
        );
        let t_inter = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let _b = mapper.map(
            &app.program,
            &data,
            platform,
            &tree,
            Version::InterProcessorScheduled,
        );
        let t_sched = t1.elapsed().as_secs_f64() * 1e3;
        m.row(app.name, vec![t_inter, t_sched, a.total_accesses() as f64]);
    }
    m
}

/// Resilience experiment (beyond the paper): every I/O node of storage
/// group 0 crashes a third of the way into the run — a correlated
/// failure (shared rack, PSU, or switch) that leaves the affected
/// clients with no surviving sibling I/O node, so their accesses go
/// direct-to-storage with no L2 at all. Three conditions per app, all
/// under the same fault plan: the original mapping and the
/// inter-processor mapping run unmodified (degraded clients limp along
/// on the direct path), and a failure-aware inter-processor mapping
/// redistributes the affected clients' iterations over the survivors
/// before the run via [`cachemap_core::Mapper::map_with_failures`].
pub fn resilience(scale: Scale, platform: &PlatformConfig) -> Matrix {
    use cachemap_storage::{FaultEvent, FaultPlan, HierarchyTree, Simulator};

    let mut m = Matrix::new(
        "resilience",
        "Mid-run crash of storage group 0's I/O nodes: exec time (ms) + degraded-mode counters",
        vec![
            "app".into(),
            "orig+crash (ms)".into(),
            "inter+crash (ms)".into(),
            "inter+remap (ms)".into(),
            "failovers".into(),
            "lost dirty".into(),
        ],
        CellFormat::Plain,
    );
    let tree = HierarchyTree::from_config(platform).expect("valid platform config");
    let mapper = cachemap_core::Mapper::new(MapperConfig::default());
    let crashed_ios: Vec<usize> = (0..platform.num_io_nodes)
        .filter(|&io| tree.storage_of_io(io) == 0)
        .collect();
    let failed: Vec<usize> = (0..platform.num_clients)
        .filter(|&c| crashed_ios.contains(&tree.io_of_client(c)))
        .collect();
    for app in cachemap_workloads::suite(scale) {
        let data = cachemap_polyhedral::DataSpace::new(&app.program.arrays, platform.chunk_bytes);
        let orig = mapper.map(&app.program, &data, platform, &tree, Version::Original);
        let inter = mapper.map(
            &app.program,
            &data,
            platform,
            &tree,
            Version::InterProcessor,
        );
        let remapped = mapper
            .map_with_failures(
                &app.program,
                &data,
                platform,
                &tree,
                Version::InterProcessor,
                &failed,
            )
            .expect("valid failed-client set");

        // Crash a third of the way into the fault-free inter run.
        let clean = Simulator::new(platform.clone())
            .expect("valid platform config")
            .run(&inter)
            .expect("well-formed mapped program");
        let at_ns = (clean.exec_time_ns / 3).max(1);
        let mut plan = FaultPlan::new();
        for &io in &crashed_ios {
            plan = plan.with_event(FaultEvent::IoNodeCrash { io, at_ns });
        }
        let sim = Simulator::new(platform.clone())
            .expect("valid platform config")
            .with_fault_plan(plan)
            .expect("plan fits the platform");

        let r_orig = sim.run(&orig).expect("well-formed mapped program");
        let r_inter = sim.run(&inter).expect("well-formed mapped program");
        let r_remap = sim.run(&remapped).expect("well-formed mapped program");
        m.row(
            app.name,
            vec![
                r_orig.exec_time_ns as f64 / 1e6,
                r_inter.exec_time_ns as f64 / 1e6,
                r_remap.exec_time_ns as f64 / 1e6,
                r_orig.faults.failovers as f64,
                r_orig.faults.lost_dirty_chunks as f64,
            ],
        );
    }
    m.note("failovers / lost dirty are from the unremapped original run");
    m.note("remapping moves the crashed I/O group's iterations to survivors up front");
    m
}

/// Online variant of the resilience experiment: storage group 0's whole
/// rack — its I/O nodes *and* its storage node — fails mid-run, and
/// nobody tells the mapper. The affected clients limp along direct to
/// disk (no L2, no L3). The [`cachemap_core::online`] supervisor runs
/// the inter-processor plan in epochs, infers the crash at an epoch
/// boundary purely from engine observations (failover events + the
/// nodes' L2 series going silent — it never reads the `FaultPlan`),
/// live-remaps the remaining iterations onto the surviving clusters with
/// `cluster::remap_incremental`, and resumes from the checkpoint. The
/// unremapped run of the *same* plan under the *same* fault plan is the
/// baseline it must beat.
pub fn resilience_online(scale: Scale, platform: &PlatformConfig) -> Matrix {
    use cachemap_core::cluster::ClusterParams;
    use cachemap_core::online::{plan_joint, run_online, OnlineConfig};
    use cachemap_core::schedule::ScheduleParams;
    use cachemap_storage::{FaultEvent, FaultPlan, HierarchyTree, Simulator};

    let mut m = Matrix::new(
        "resilience-online",
        "Online supervisor vs unremapped run, same mid-run I/O-group crash (no oracle)",
        vec![
            "app".into(),
            "unremapped (ms)".into(),
            "online (ms)".into(),
            "detect latency (ns)".into(),
            "remaps".into(),
        ],
        CellFormat::Plain,
    );
    let tree = HierarchyTree::from_config(platform).expect("valid platform config");
    let crashed_ios: Vec<usize> = (0..platform.num_io_nodes)
        .filter(|&io| tree.storage_of_io(io) == 0)
        .collect();
    for app in cachemap_workloads::suite(scale) {
        let data = cachemap_polyhedral::DataSpace::new(&app.program.arrays, platform.chunk_bytes);
        let (chunks, dist) = plan_joint(
            &app.program,
            &data,
            &tree,
            &ClusterParams::default(),
            &ScheduleParams::default(),
        );
        let full = cachemap_core::codegen::lower_distribution(&dist, &chunks, &app.program, &data);

        // Crash a tenth of the way into the fault-free run of this plan:
        // early enough that most of the work is still outstanding, which
        // is the regime where live remapping can pay.
        let clean = Simulator::new(platform.clone())
            .expect("valid platform config")
            .run(&full)
            .expect("well-formed mapped program");
        let at_ns = (clean.exec_time_ns / 10).max(1);
        let mut plan =
            FaultPlan::new().with_event(FaultEvent::StorageNodeCrash { storage: 0, at_ns });
        for &io in &crashed_ios {
            plan = plan.with_event(FaultEvent::IoNodeCrash { io, at_ns });
        }
        let sim = Simulator::new(platform.clone())
            .expect("valid platform config")
            .with_fault_plan(plan)
            .expect("plan fits the platform");

        let unremapped = sim.run(&full).expect("well-formed mapped program");
        let cfg = OnlineConfig {
            // Shorter epochs keep the crash epoch's healthy prefix from
            // diluting the limp-rate sample the remap gate judges with.
            epochs: 6,
            // Fine-grained series so the silence check resolves within
            // the crash epoch, sized to stay compact at every scale.
            bucket_ns: (clean.exec_time_ns / 5000).max(20_000),
            ..OnlineConfig::default()
        };
        let online = run_online(&sim, &app.program, &data, &chunks, &dist, &cfg)
            .expect("online supervised run completes");
        let latency = online
            .detection_latency_ns(at_ns)
            .map_or(-1.0, |l| l as f64);
        m.row(
            app.name,
            vec![
                unremapped.exec_time_ns as f64 / 1e6,
                online.exec_time_ms(),
                latency,
                online.remaps as f64,
            ],
        );
    }
    m.note("detect latency = simulated ns from fault injection to the supervisor's Down verdict");
    m.note("the supervisor sees only engine observations, never the fault plan");
    m.note("remaps = 0 means the cost gate predicted limping beats shifting the orphans");
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_platform() -> PlatformConfig {
        PlatformConfig::paper_default().with_cache_chunks(8, 8, 8)
    }

    #[test]
    fn table1_mentions_all_parameters() {
        let s = table1(&PlatformConfig::paper_default());
        for needle in ["Client Nodes", "64", "Stripe", "RPM", "10000"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn default_pipeline_figures_have_eight_rows() {
        let runs = default_runs(Scale::Test, &test_platform());
        let t2 = table2(&runs, Scale::Test);
        assert_eq!(t2.rows.len(), 8);
        for m in fig10(&runs)
            .iter()
            .chain(fig11(&runs).iter())
            .chain(fig18(&runs).iter())
        {
            assert_eq!(m.rows.len(), 8, "{}", m.id);
        }
    }

    #[test]
    fn deps_experiment_produces_two_strategies() {
        let m = deps_exp(Scale::Test, &test_platform());
        assert_eq!(m.rows.len(), 2);
        for (_, cells) in &m.rows {
            assert!(cells.iter().all(|&c| c > 0.0));
        }
    }

    #[test]
    fn multinest_covers_multi_nest_apps() {
        let m = multinest(Scale::Test, &test_platform());
        assert_eq!(m.rows.len(), 2);
    }

    #[test]
    fn resilience_online_beats_unremapped_and_measures_latency() {
        let m = resilience_online(Scale::Test, &test_platform());
        assert_eq!(m.rows.len(), 8);
        // Columns: unremapped, online, detect latency, remaps.
        let means = m.column_means();
        assert!(
            means[1] < means[0],
            "online supervisor must beat the unremapped run on average: {means:?}"
        );
        let mut remaps_total = 0.0;
        for (app, cells) in &m.rows {
            // The cost gate makes the supervisor do no harm per app: it
            // only shifts orphans when the model predicts a win, so the
            // worst case is tracking the unremapped run (plus noise from
            // epoch-boundary flushes, hence the small tolerance).
            assert!(
                cells[1] <= cells[0] * 1.02,
                "{app}: online may not lose to the unremapped run: {cells:?}"
            );
            assert!(
                cells[2] > 0.0,
                "{app}: the crash must be detected without the oracle: {cells:?}"
            );
            remaps_total += cells[3];
        }
        assert!(
            remaps_total >= 1.0,
            "at least one app must live-remap: {:?}",
            m.rows
        );
    }

    #[test]
    fn resilience_remapped_inter_beats_unremapped_original() {
        let m = resilience(Scale::Test, &test_platform());
        assert_eq!(m.rows.len(), 8);
        let means = m.column_means();
        // Columns: orig+crash, inter+crash, inter+remap, failovers, lost.
        assert!(
            means[2] < means[0],
            "remapped inter must beat unremapped original on average: {means:?}"
        );
        // The crash must actually bite: the unremapped runs fail over.
        assert!(means[3] > 0.0, "no failovers recorded: {means:?}");
        for (app, cells) in &m.rows {
            assert!(
                cells.iter().take(3).all(|&c| c > 0.0),
                "{app}: every condition must complete: {cells:?}"
            );
        }
    }
}
