//! Result matrices and rendering shared by all experiments.

use cachemap_util::table::TextTable;
use cachemap_util::{Json, ToJson};

/// How to format the numeric cells of a matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellFormat {
    /// Percentages with one decimal (`26.3`).
    Percent,
    /// Normalized ratios with three decimals (`0.737`).
    Ratio,
    /// Milliseconds with one decimal.
    Millis,
    /// Plain numbers with two decimals.
    Plain,
}

impl CellFormat {
    fn render(&self, x: f64) -> String {
        match self {
            CellFormat::Percent => format!("{:.1}", x * 100.0),
            CellFormat::Ratio => format!("{x:.3}"),
            CellFormat::Millis => format!("{:.1}", x / 1e6),
            CellFormat::Plain => format!("{x:.2}"),
        }
    }
}

/// A labelled numeric result matrix — one per table/figure.
#[derive(Debug, Clone)]
pub struct Matrix {
    /// Experiment id, e.g. `"fig11"`.
    pub id: String,
    /// Human title printed above the table.
    pub title: String,
    /// Column headers (first column is the row label).
    pub columns: Vec<String>,
    /// `(row label, cells)`.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Cell formatting.
    pub format: CellFormat,
    /// Free-form notes (averages, paper reference values).
    pub notes: Vec<String>,
}

impl Matrix {
    /// Creates an empty matrix.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        columns: Vec<String>,
        format: CellFormat,
    ) -> Self {
        Matrix {
            id: id.into(),
            title: title.into(),
            columns,
            rows: Vec::new(),
            format,
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn row(&mut self, label: impl Into<String>, cells: Vec<f64>) -> &mut Self {
        self.rows.push((label.into(), cells));
        self
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Column-wise arithmetic means of the data rows.
    pub fn column_means(&self) -> Vec<f64> {
        let ncols = self.columns.len().saturating_sub(1);
        let mut sums = vec![0.0; ncols];
        for (_, cells) in &self.rows {
            for (i, &c) in cells.iter().enumerate() {
                sums[i] += c;
            }
        }
        let n = self.rows.len().max(1) as f64;
        sums.iter().map(|s| s / n).collect()
    }

    /// Renders the matrix as the harness's standard text block.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(self.columns.iter().map(String::as_str));
        for (label, cells) in &self.rows {
            let mut row = vec![label.clone()];
            row.extend(cells.iter().map(|&c| self.format.render(c)));
            t.row(row);
        }
        if !self.rows.is_empty() {
            let mut avg_row = vec!["AVG".to_string()];
            avg_row.extend(self.column_means().iter().map(|&c| self.format.render(c)));
            t.row(avg_row);
        }
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        out.push_str(&t.render());
        for n in &self.notes {
            out.push_str("   ");
            out.push_str(n);
            out.push('\n');
        }
        out
    }
}

impl ToJson for Matrix {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("id", Json::Str(self.id.clone())),
            ("title", Json::Str(self.title.clone())),
            ("columns", self.columns.to_json()),
            (
                "rows",
                Json::Array(
                    self.rows
                        .iter()
                        .map(|(label, cells)| {
                            Json::object(vec![
                                ("label", Json::Str(label.clone())),
                                ("cells", cells.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("notes", self.notes.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_rows_and_average() {
        let mut m = Matrix::new(
            "figX",
            "demo",
            vec!["app".into(), "a".into(), "b".into()],
            CellFormat::Ratio,
        );
        m.row("hf", vec![0.5, 1.0]);
        m.row("sar", vec![1.5, 3.0]);
        m.note("hello");
        let s = m.render();
        assert!(s.contains("figX"));
        assert!(s.contains("hf"));
        assert!(s.contains("AVG"));
        assert!(s.contains("1.000")); // avg of column a
        assert!(s.contains("2.000")); // avg of column b
        assert!(s.contains("hello"));
    }

    #[test]
    fn cell_formats() {
        assert_eq!(CellFormat::Percent.render(0.263), "26.3");
        assert_eq!(CellFormat::Ratio.render(0.7372), "0.737");
        assert_eq!(CellFormat::Millis.render(2_500_000.0), "2.5");
        assert_eq!(CellFormat::Plain.render(1.234), "1.23");
    }

    #[test]
    fn column_means_empty_safe() {
        let m = Matrix::new("x", "t", vec!["r".into(), "c".into()], CellFormat::Plain);
        assert_eq!(m.column_means(), vec![0.0]);
    }
}
