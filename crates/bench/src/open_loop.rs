//! Open-loop load harness for the async front end (`repro serve-open`).
//!
//! The closed-loop harness in [`crate::serve`] measures *round-trip
//! service capacity*: each client thread waits for its reply before
//! sending again, so the measured "throughput" is just
//! `clients / round_trip` and collapses to the server's latency — a
//! slow server sees *less* load, not a growing backlog. That is the
//! classic coordinated-omission bias. This harness removes it:
//! requests are injected on a seeded Poisson schedule at a configured
//! **offered** rate regardless of how fast replies come back, over a
//! fixed fan of pipelined connections against the epoll-based
//! [`AsyncServer`]. What the server cannot absorb shows up where it
//! belongs — in the latency trajectory — instead of silently deflating
//! the arrival rate.
//!
//! Reported per run:
//!
//! - offered vs **achieved** RPS (completions over the injection
//!   window) and overall p50/p99/p99.9,
//! - a per-second trajectory (sent, completed, p50, p99 bucketed by
//!   *send* time, so a stall surfaces in the second that caused it),
//! - a typed tally of rejections; **any** untyped client-visible error
//!   fails the run,
//! - byte-identity of every served mapping against the cold
//!   `Mapper::map` oracle (same invariant as the closed-loop bench),
//! - an idle-fleet check: thousands of parked connections held open
//!   (by a child process, so the client fds do not eat this process's
//!   fd budget) while the load runs, proving request service is
//!   independent of connection count.
//!
//! Determinism: the arrival schedule and template choice are fixed by
//! `(seed, offered_rps, duration_secs)`; only wall-clock timings vary.

use crate::serve::{build_templates, Zipf};
use cachemap_service::aserver::{AsyncServer, AsyncServerConfig};
use cachemap_service::{MapService, ServiceConfig};
use cachemap_util::check::Gen;
use cachemap_util::{Json, ToJson};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Open-loop campaign knobs.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// RNG seed for the arrival schedule and template sequence.
    pub seed: u64,
    /// Offered request rate (arrivals per second, Poisson).
    pub offered_rps: f64,
    /// Injection window in seconds.
    pub duration_secs: f64,
    /// Pipelined client connections carrying the load.
    pub conns: usize,
    /// Dispatcher threads in the async server.
    pub dispatchers: usize,
    /// Template-pool app limit (`0` = the full eight-app suite).
    pub apps: usize,
    /// Parked idle connections held open while the load runs.
    pub idle_conns: usize,
    /// Binary to spawn for the idle fleet (`repro idle-hold:…`);
    /// `None` holds the fleet in-process (tests, small fleets only —
    /// each held connection costs this process an fd).
    pub idle_hold_exe: Option<std::path::PathBuf>,
    /// Minimum achieved RPS to pass (`0.0` disables the gate).
    pub gate_min_rps: f64,
    /// Maximum overall p99 in µs to pass (`0` disables the gate).
    pub gate_p99_us: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            seed: 42,
            offered_rps: 1_200.0,
            duration_secs: 8.0,
            conns: 32,
            dispatchers: 4,
            apps: 0,
            idle_conns: 10_000,
            idle_hold_exe: None,
            // 10× the ~80 RPS the closed-loop harness reports, with the
            // p99 under the closed-loop *median* (87 ms): batching +
            // memoization must beat thread-per-connection by an order
            // of magnitude, not a margin.
            gate_min_rps: 800.0,
            gate_p99_us: 87_000,
        }
    }
}

impl OpenLoopConfig {
    /// A seconds-scale smoke variant for CI: modest rate, small pools,
    /// in-process idle fleet, correctness gates only (no RPS floor —
    /// debug builds and loaded CI runners make absolute rates
    /// meaningless there).
    pub fn smoke(seed: u64) -> Self {
        OpenLoopConfig {
            seed,
            offered_rps: 150.0,
            duration_secs: 2.0,
            conns: 4,
            dispatchers: 2,
            apps: 1,
            idle_conns: 64,
            idle_hold_exe: None,
            gate_min_rps: 0.0,
            gate_p99_us: 0,
        }
    }
}

/// One second of the injection window, bucketed by send time.
#[derive(Debug, Clone)]
pub struct SecondSample {
    /// Second index from campaign start.
    pub sec: u64,
    /// Requests injected during this second.
    pub sent: u64,
    /// Of those, how many completed (at any later time).
    pub completed: u64,
    /// Median completion latency (µs) of this second's requests.
    pub p50_us: u64,
    /// 99th-percentile completion latency (µs).
    pub p99_us: u64,
}

/// Aggregated open-loop results.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// The seed the campaign ran with.
    pub seed: u64,
    /// Configured offered rate.
    pub offered_rps: f64,
    /// Completions divided by the injection window.
    pub achieved_rps: f64,
    /// Injection window (s).
    pub duration_secs: f64,
    /// Requests injected.
    pub sent: u64,
    /// Requests answered (including typed rejections).
    pub completed: u64,
    /// Served with a mapping, from the fingerprint cache.
    pub cached: u64,
    /// Served with a mapping, computed by the pipeline.
    pub computed: u64,
    /// Typed rejections by `ServiceError` code.
    pub rejections: BTreeMap<String, u64>,
    /// Client-visible errors without a typed code (gate: must be 0).
    pub untyped_errors: u64,
    /// Served mappings that diverged from the cold oracle (gate: 0).
    pub mapping_mismatches: u64,
    /// Overall completion-latency percentiles (µs).
    pub p50_us: u64,
    /// 99th percentile (µs).
    pub p99_us: u64,
    /// 99.9th percentile (µs).
    pub p999_us: u64,
    /// Per-second trajectory over the injection window.
    pub trajectory: Vec<SecondSample>,
    /// Idle connections the fleet actually registered.
    pub idle_conns_held: u64,
    /// The parked fleet stayed registered and service still answered.
    pub idle_check_ok: bool,
    /// Batches the dispatcher drained (from the aio loop stats).
    pub batches: u64,
    /// Frames the loop decoded (≥ `completed`; includes prewarm).
    pub frames: u64,
    /// All gates passed (RPS floor, p99 ceiling, zero untyped errors,
    /// zero mapping mismatches, idle check).
    pub gates_ok: bool,
    /// Human-readable gate failures (empty when `gates_ok`).
    pub gate_failures: Vec<String>,
}

impl ToJson for OpenLoopReport {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("bench".into(), Json::Str("serve-open".into())),
            ("loop".into(), Json::Str("open".into())),
            ("seed".into(), Json::UInt(self.seed)),
            ("offered_rps".into(), Json::Float(self.offered_rps)),
            ("achieved_rps".into(), Json::Float(self.achieved_rps)),
            ("duration_secs".into(), Json::Float(self.duration_secs)),
            ("sent".into(), Json::UInt(self.sent)),
            ("completed".into(), Json::UInt(self.completed)),
            ("cached".into(), Json::UInt(self.cached)),
            ("computed".into(), Json::UInt(self.computed)),
            (
                "rejections".into(),
                Json::Object(
                    self.rejections
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            ("untyped_errors".into(), Json::UInt(self.untyped_errors)),
            (
                "mapping_mismatches".into(),
                Json::UInt(self.mapping_mismatches),
            ),
            ("p50_us".into(), Json::UInt(self.p50_us)),
            ("p99_us".into(), Json::UInt(self.p99_us)),
            ("p999_us".into(), Json::UInt(self.p999_us)),
            (
                "trajectory".into(),
                Json::Array(
                    self.trajectory
                        .iter()
                        .map(|s| {
                            Json::Object(vec![
                                ("sec".into(), Json::UInt(s.sec)),
                                ("sent".into(), Json::UInt(s.sent)),
                                ("completed".into(), Json::UInt(s.completed)),
                                ("p50_us".into(), Json::UInt(s.p50_us)),
                                ("p99_us".into(), Json::UInt(s.p99_us)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("idle_conns_held".into(), Json::UInt(self.idle_conns_held)),
            ("idle_check_ok".into(), Json::Bool(self.idle_check_ok)),
            ("batches".into(), Json::UInt(self.batches)),
            ("frames".into(), Json::UInt(self.frames)),
            ("gates_ok".into(), Json::Bool(self.gates_ok)),
            (
                "gate_failures".into(),
                Json::Array(
                    self.gate_failures
                        .iter()
                        .map(|f| Json::Str(f.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// What the sender recorded for one in-flight request; the reader pops
/// these FIFO (the async server preserves per-connection reply order).
struct InFlight {
    sent_at: Instant,
    sec: u64,
    template: usize,
}

/// Per-reader completion tally, merged after join.
#[derive(Default)]
struct ReaderTally {
    cached: u64,
    computed: u64,
    rejections: BTreeMap<String, u64>,
    untyped: u64,
    mismatches: u64,
    /// `(send-second, latency µs)` per completion.
    latencies: Vec<(u64, u64)>,
}

/// Pulls the typed error code out of an error reply, if any.
fn error_code(reply: &str) -> Option<&str> {
    let at = reply.find("\"code\":\"")? + "\"code\":\"".len();
    reply[at..].split('"').next()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// The idle fleet, either a `repro idle-hold` child process or an
/// in-process `Vec<TcpStream>`; dropping releases the connections.
enum IdleFleet {
    Child(std::process::Child),
    Local(Vec<TcpStream>),
    None,
}

impl IdleFleet {
    fn release(&mut self) {
        match self {
            // Closing the child's stdin is its signal to exit.
            IdleFleet::Child(child) => {
                drop(child.stdin.take());
                let _ = child.wait();
            }
            IdleFleet::Local(conns) => conns.clear(),
            IdleFleet::None => {}
        }
    }
}

/// Holds `count` idle connections against `addr` until stdin reaches
/// EOF. This is the body of the hidden `repro idle-hold:<addr>:<count>`
/// subcommand: the parent campaign spawns it so the parked fds land in
/// a separate process (10k client + 10k server fds would exhaust one
/// process's `RLIMIT_NOFILE` otherwise). Prints `held <n>` once the
/// fleet is up so the parent knows when to start measuring.
pub fn idle_hold(addr: &str, count: usize) -> Result<(), String> {
    let mut held = Vec::with_capacity(count);
    for k in 0..count {
        match TcpStream::connect(addr) {
            Ok(s) => held.push(s),
            Err(e) => {
                println!("held {k}");
                return Err(format!("connect {k}/{count}: {e}"));
            }
        }
    }
    println!("held {count}");
    // Park until the parent drops our stdin.
    let mut sink = String::new();
    let _ = std::io::stdin().read_line(&mut sink);
    drop(held);
    Ok(())
}

/// Raises the idle fleet and waits until the server has registered it.
fn raise_idle_fleet(
    cfg: &OpenLoopConfig,
    server: &AsyncServer,
) -> Result<(IdleFleet, u64), String> {
    if cfg.idle_conns == 0 {
        return Ok((IdleFleet::None, 0));
    }
    let fleet = match &cfg.idle_hold_exe {
        Some(exe) => {
            let mut child = std::process::Command::new(exe)
                .arg(format!("idle-hold:{}:{}", server.addr(), cfg.idle_conns))
                .stdin(std::process::Stdio::piped())
                .stdout(std::process::Stdio::piped())
                .spawn()
                .map_err(|e| format!("spawn idle-hold child: {e}"))?;
            // Wait for its "held <n>" line before proceeding.
            let mut line = String::new();
            let mut out = BufReader::new(child.stdout.take().ok_or("no child stdout")?);
            out.read_line(&mut line)
                .map_err(|e| format!("idle-hold child: {e}"))?;
            if line.trim() != format!("held {}", cfg.idle_conns) {
                let _ = child.kill();
                return Err(format!("idle-hold child reported {:?}", line.trim()));
            }
            // Keep the pipe open: its EOF is the release signal.
            IdleFleet::Child(child)
        }
        None => {
            let mut held = Vec::with_capacity(cfg.idle_conns);
            for k in 0..cfg.idle_conns {
                held.push(
                    TcpStream::connect(server.addr()).map_err(|e| format!("idle conn {k}: {e}"))?,
                );
            }
            IdleFleet::Local(held)
        }
    };
    // The child's sockets are connected (in the accept queue); wait for
    // the loop to actually register them under its connection cap.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let n = server.loop_stats().connections.load(Ordering::Relaxed);
        if n >= cfg.idle_conns as u64 {
            return Ok((fleet, n));
        }
        if Instant::now() > deadline {
            return Err(format!(
                "idle fleet never registered: {n}/{} connections",
                cfg.idle_conns
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Runs the full campaign: spawn the async server, prewarm every
/// template (so the open-loop window measures serving, not first-touch
/// mapping), park the idle fleet, inject the Poisson schedule, drain,
/// and aggregate. Gate violations are reported in the returned
/// `gate_failures` rather than an `Err`, so callers can still archive
/// the numbers of a failing run.
pub fn run(cfg: &OpenLoopConfig) -> Result<OpenLoopReport, String> {
    let templates = Arc::new(build_templates(cfg.apps));
    // Per-template needle for the cheap byte-identity check: the reply
    // must embed exactly the cold mapping bytes. Substring check, not a
    // parse — the reader threads are on the measured path.
    let needles: Arc<Vec<String>> = Arc::new(
        templates
            .iter()
            .map(|t| format!("\"mapping\":{}", t.cold_bytes))
            .collect(),
    );
    let zipf = Zipf::new(templates.len());

    let service = Arc::new(MapService::start(ServiceConfig {
        tracing: false,
        ..ServiceConfig::default()
    }));
    let server = AsyncServer::spawn_with(
        "127.0.0.1:0",
        Arc::clone(&service),
        AsyncServerConfig {
            dispatchers: cfg.dispatchers,
            max_connections: (cfg.idle_conns + cfg.conns + 16).max(10_240),
            ..AsyncServerConfig::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();

    // Prewarm: one sequential pass over the pool, so every template is
    // memoized before the clock starts.
    {
        let mut c = TcpStream::connect(addr).map_err(|e| format!("prewarm connect: {e}"))?;
        let mut r = BufReader::new(c.try_clone().map_err(|e| format!("clone: {e}"))?);
        for (k, t) in templates.iter().enumerate() {
            c.write_all(t.line.as_bytes())
                .and_then(|()| c.write_all(b"\n"))
                .map_err(|e| format!("prewarm {k}: write: {e}"))?;
            let mut reply = String::new();
            r.read_line(&mut reply)
                .map_err(|e| format!("prewarm {k}: read: {e}"))?;
            if !reply.contains(&needles[k]) {
                return Err(format!(
                    "prewarm {k}: reply does not embed the cold mapping"
                ));
            }
        }
    }

    let (mut fleet, idle_conns_held) = raise_idle_fleet(cfg, &server)?;

    // The load connections: a shared FIFO of in-flight records per
    // connection (sender pushes, that connection's reader pops), plus a
    // reader thread each.
    let conns = cfg.conns.max(1);
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::with_capacity(conns);
    let mut queues: Vec<Arc<Mutex<VecDeque<InFlight>>>> = Vec::with_capacity(conns);
    let mut readers = Vec::with_capacity(conns);
    for k in 0..conns {
        let stream = TcpStream::connect(addr).map_err(|e| format!("conn {k}: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .map_err(|e| format!("conn {k}: {e}"))?;
        let queue: Arc<Mutex<VecDeque<InFlight>>> = Arc::new(Mutex::new(VecDeque::new()));
        writers.push(stream.try_clone().map_err(|e| format!("conn {k}: {e}"))?);
        queues.push(Arc::clone(&queue));
        let needles = Arc::clone(&needles);
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut tally = ReaderTally::default();
            let mut r = BufReader::new(stream);
            let mut reply = String::new();
            loop {
                // A timed-out `read_line` leaves whatever it got so far
                // in `reply`; keep it and resume — clearing here would
                // tear replies that straddle a timeout.
                match r.read_line(&mut reply) {
                    Ok(0) => break, // server closed
                    Ok(_) if reply.ends_with('\n') => {}
                    Ok(_) => break, // EOF mid-line
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        continue;
                    }
                    Err(_) => break,
                }
                let Some(sent) = queue.lock().unwrap().pop_front() else {
                    tally.untyped += 1; // a reply nobody asked for
                    continue;
                };
                let latency_us = sent.sent_at.elapsed().as_micros() as u64;
                tally.latencies.push((sent.sec, latency_us));
                if reply.contains("\"status\":\"ok\"") {
                    if reply.contains(&needles[sent.template]) {
                        if reply.contains("\"cached\":true") {
                            tally.cached += 1;
                        } else {
                            tally.computed += 1;
                        }
                    } else {
                        tally.mismatches += 1;
                    }
                } else {
                    match error_code(&reply) {
                        Some(code) => {
                            *tally.rejections.entry(code.to_string()).or_insert(0) += 1;
                        }
                        None => tally.untyped += 1,
                    }
                }
                reply.clear();
            }
            tally
        }));
    }

    // The Poisson injection schedule: absolute deadlines from t0, so a
    // slow write on one connection does not stretch the whole schedule
    // (catch-up sends burst, as an open-loop generator must).
    let mut g = Gen::from_seed(cfg.seed);
    let t0 = Instant::now();
    let mut offset = Duration::ZERO;
    let window = Duration::from_secs_f64(cfg.duration_secs);
    let mut sent = 0u64;
    let mut next_conn = 0usize;
    while offset < window {
        let due = t0 + offset;
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let template = zipf.sample(&mut g);
        let k = next_conn;
        next_conn = (next_conn + 1) % conns;
        queues[k].lock().unwrap().push_back(InFlight {
            sent_at: Instant::now(),
            sec: offset.as_secs(),
            template,
        });
        let t = &templates[template];
        writers[k]
            .write_all(t.line.as_bytes())
            .and_then(|()| writers[k].write_all(b"\n"))
            .map_err(|e| format!("send {sent}: {e}"))?;
        sent += 1;
        // Next inter-arrival: Exp(offered_rps) via inverse transform.
        let u: f64 = g.f64();
        let gap = -(1.0 - u).ln() / cfg.offered_rps;
        offset += Duration::from_secs_f64(gap);
    }

    // Drain: everything injected must be answered. 30 s is far beyond
    // any sane backlog at these rates; hitting it means requests were
    // silently dropped, which the completion count will show.
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    while queues.iter().any(|q| !q.lock().unwrap().is_empty()) {
        if Instant::now() > drain_deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, Ordering::Relaxed);

    let mut tallies = ReaderTally::default();
    for reader in readers {
        let t = reader.join().map_err(|_| "reader thread panicked")?;
        tallies.cached += t.cached;
        tallies.computed += t.computed;
        tallies.untyped += t.untyped;
        tallies.mismatches += t.mismatches;
        for (code, n) in t.rejections {
            *tallies.rejections.entry(code).or_insert(0) += n;
        }
        tallies.latencies.extend(t.latencies);
    }

    // The idle fleet must still be parked (nothing reaped it mid-run)
    // and the service must still answer new traffic alongside it.
    let idle_check_ok = if cfg.idle_conns > 0 {
        let still = server.loop_stats().connections.load(Ordering::Relaxed);
        let mut probe = TcpStream::connect(addr).map_err(|e| format!("probe: {e}"))?;
        probe
            .write_all(b"{\"id\":0,\"op\":\"ping\"}\n")
            .map_err(|e| format!("probe: {e}"))?;
        let mut reply = String::new();
        BufReader::new(probe)
            .read_line(&mut reply)
            .map_err(|e| format!("probe: {e}"))?;
        still >= cfg.idle_conns as u64 && reply.contains("\"pong\":true")
    } else {
        true
    };
    fleet.release();

    let loop_stats = server.loop_stats();
    let batches = loop_stats.batches_total.load(Ordering::Relaxed);
    let frames = loop_stats.frames_total.load(Ordering::Relaxed);
    server.shutdown();
    server.join();
    service.shutdown();

    // Aggregate: overall percentiles plus the per-second trajectory.
    let completed = tallies.latencies.len() as u64;
    let mut all: Vec<u64> = tallies.latencies.iter().map(|&(_, us)| us).collect();
    all.sort_unstable();
    let mut per_sec: BTreeMap<u64, (u64, Vec<u64>)> = BTreeMap::new();
    for s in 0..cfg.duration_secs.ceil() as u64 {
        per_sec.insert(s, (0, Vec::new()));
    }
    for &(sec, us) in &tallies.latencies {
        let slot = per_sec.entry(sec).or_default();
        slot.0 += 1;
        slot.1.push(us);
    }
    // Per-second *sent* counts come from the completion records plus
    // whatever never completed; reconstruct sent-per-second from the
    // deterministic schedule.
    let mut sent_per_sec: BTreeMap<u64, u64> = BTreeMap::new();
    {
        let mut g = Gen::from_seed(cfg.seed);
        let mut offset = Duration::ZERO;
        while offset < window {
            let _ = zipf.sample(&mut g);
            *sent_per_sec.entry(offset.as_secs()).or_insert(0) += 1;
            let u: f64 = g.f64();
            offset += Duration::from_secs_f64(-(1.0 - u).ln() / cfg.offered_rps);
        }
    }
    let trajectory: Vec<SecondSample> = per_sec
        .into_iter()
        .map(|(sec, (done, mut lats))| {
            lats.sort_unstable();
            SecondSample {
                sec,
                sent: sent_per_sec.get(&sec).copied().unwrap_or(0),
                completed: done,
                p50_us: percentile(&lats, 0.50),
                p99_us: percentile(&lats, 0.99),
            }
        })
        .collect();

    let achieved_rps = completed as f64 / cfg.duration_secs;
    let p99_us = percentile(&all, 0.99);
    let mut gate_failures = Vec::new();
    if tallies.untyped > 0 {
        gate_failures.push(format!("{} untyped client-visible errors", tallies.untyped));
    }
    if tallies.mismatches > 0 {
        gate_failures.push(format!(
            "{} mappings diverged from the cold oracle",
            tallies.mismatches
        ));
    }
    if completed < sent {
        gate_failures.push(format!(
            "{} of {sent} injected requests never completed",
            sent - completed
        ));
    }
    if cfg.gate_min_rps > 0.0 && achieved_rps < cfg.gate_min_rps {
        gate_failures.push(format!(
            "achieved {achieved_rps:.0} RPS below the {:.0} floor",
            cfg.gate_min_rps
        ));
    }
    if cfg.gate_p99_us > 0 && p99_us >= cfg.gate_p99_us {
        gate_failures.push(format!(
            "p99 {p99_us} µs at or above the {} µs ceiling",
            cfg.gate_p99_us
        ));
    }
    if !idle_check_ok {
        gate_failures.push("idle-fleet check failed".into());
    }

    Ok(OpenLoopReport {
        seed: cfg.seed,
        offered_rps: cfg.offered_rps,
        achieved_rps,
        duration_secs: cfg.duration_secs,
        sent,
        completed,
        cached: tallies.cached,
        computed: tallies.computed,
        rejections: tallies.rejections,
        untyped_errors: tallies.untyped,
        mapping_mismatches: tallies.mismatches,
        p50_us: percentile(&all, 0.50),
        p99_us,
        p999_us: percentile(&all, 0.999),
        trajectory,
        idle_conns_held,
        idle_check_ok,
        batches,
        frames,
        gates_ok: gate_failures.is_empty(),
        gate_failures,
    })
}

/// Renders the human-readable campaign summary.
pub fn render(report: &OpenLoopReport) -> String {
    let rejected: u64 = report.rejections.values().sum();
    let mut out = format!(
        "== serve-open — seed {} ==\n\
         offered       {:>8.0} req/s for {:.0} s (open-loop Poisson, {} idle conns parked)\n\
         achieved      {:>8.0} req/s   ({} of {} completed; {} cached + {} computed, {} typed rejections)\n\
         latency       p50 {} µs, p99 {} µs, p99.9 {} µs\n\
         batching      {} frames drained in {} batches ({:.1} frames/batch)\n\
         trajectory    sec:  sent → completed   p50/p99 µs",
        report.seed,
        report.offered_rps,
        report.duration_secs,
        report.idle_conns_held,
        report.achieved_rps,
        report.completed,
        report.sent,
        report.cached,
        report.computed,
        rejected,
        report.p50_us,
        report.p99_us,
        report.p999_us,
        report.frames,
        report.batches,
        report.frames as f64 / report.batches.max(1) as f64,
    );
    for s in &report.trajectory {
        out.push_str(&format!(
            "\n              {:>3}: {:>5} → {:>5}       {}/{}",
            s.sec, s.sent, s.completed, s.p50_us, s.p99_us
        ));
    }
    if report.gates_ok {
        out.push_str("\ngates         all passed (RPS floor, p99 ceiling, 0 untyped, 0 mismatches, idle fleet)");
    } else {
        for f in &report.gate_failures {
            out.push_str(&format!("\ngate FAILED   {f}"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_answers_everything_with_byte_identity() {
        let report = run(&OpenLoopConfig::smoke(7)).unwrap();
        assert!(report.sent > 0, "nothing injected");
        assert_eq!(report.completed, report.sent, "requests lost");
        assert_eq!(report.untyped_errors, 0);
        assert_eq!(report.mapping_mismatches, 0);
        assert!(report.idle_check_ok);
        assert_eq!(report.idle_conns_held, 64);
        assert!(report.gates_ok, "{:?}", report.gate_failures);
        assert!(!report.trajectory.is_empty());
        // Prewarm means the open window is all hits.
        assert!(report.cached >= report.computed);
    }

    #[test]
    fn schedule_is_deterministic_for_a_seed() {
        // The reconstructed sent-per-second histogram must match what
        // the sender injects: same Gen stream, same arithmetic.
        let cfg = OpenLoopConfig::smoke(11);
        let mut g = Gen::from_seed(cfg.seed);
        let zipf = Zipf::new(4);
        let mut n = 0u64;
        let mut offset = Duration::ZERO;
        let window = Duration::from_secs_f64(cfg.duration_secs);
        while offset < window {
            let _ = zipf.sample(&mut g);
            n += 1;
            let u: f64 = g.f64();
            offset += Duration::from_secs_f64(-(1.0 - u).ln() / cfg.offered_rps);
        }
        // Expected count ≈ rate × window; Poisson keeps it in a wide
        // but bounded band.
        let expect = cfg.offered_rps * cfg.duration_secs;
        assert!(
            (n as f64) > expect * 0.5 && (n as f64) < expect * 1.5,
            "{n}"
        );
    }
}
