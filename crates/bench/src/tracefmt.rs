//! Rendering for request traces and flight-recorder dumps
//! (`repro trace <file...>`).
//!
//! Accepts three artifact shapes and renders each as text:
//!
//! * a bare trace record (as returned by the `trace` protocol op or
//!   found inside a flight dump's `traces` array);
//! * a map response line that carries a `"trace"` field;
//! * a `flight-record/v1` dump written by the service's flight
//!   recorder on an anomaly trigger.
//!
//! A trace renders as a **waterfall** — one bar per stage, offset and
//! scaled against the request's total — followed by a per-stage
//! **attribution table** (duration and share of the total, with any
//! unattributed remainder called out). A flight dump renders its
//! header and context, a one-line summary per recorded trace, and the
//! full waterfall of the slowest trace in the ring.

use cachemap_util::Json;

/// Character width of the waterfall column.
const BAR_WIDTH: usize = 48;

/// Renders any trace-bearing artifact (see module docs).
pub fn render(v: &Json) -> Result<String, String> {
    if v.get("schema").and_then(Json::as_str) == Some(cachemap_obs::FLIGHT_SCHEMA) {
        return render_flight(v);
    }
    if v.get("trace_id").is_some() && v.get("stages").is_some() {
        return render_trace(v);
    }
    if let Some(t) = v.get("trace") {
        // A map response line (or a `trace` op reply) wrapping the record.
        return render(t);
    }
    Err(
        "not a trace artifact: expected a trace record, a response with a \
         'trace' field, or a flight-record dump"
            .to_string(),
    )
}

/// One stage row pulled out of a trace's `stages` array.
struct StageRow {
    name: String,
    role: Option<String>,
    start_us: u64,
    dur_us: u64,
    profile_spans: usize,
}

fn stage_rows(trace: &Json) -> Vec<StageRow> {
    trace
        .get("stages")
        .and_then(Json::as_array)
        .map(|stages| {
            stages
                .iter()
                .filter_map(|s| {
                    Some(StageRow {
                        name: s.get("name").and_then(Json::as_str)?.to_string(),
                        role: s
                            .get("role")
                            .and_then(Json::as_str)
                            .map(std::string::ToString::to_string),
                        start_us: s.get("start_us").and_then(Json::as_u64)?,
                        dur_us: s.get("dur_us").and_then(Json::as_u64)?,
                        profile_spans: s
                            .get("profile")
                            .and_then(|p| p.get("spans"))
                            .and_then(Json::as_array)
                            .map_or(0, <[Json]>::len),
                    })
                })
                .collect()
        })
        .unwrap_or_default()
}

/// `[  ▕███▏   ]`-style bar: `dur` placed at `start` on a `total` axis.
fn bar(start_us: u64, dur_us: u64, total_us: u64) -> String {
    let total = total_us.max(1);
    let lead = (start_us.min(total) as usize * BAR_WIDTH) / total as usize;
    let lead = lead.min(BAR_WIDTH.saturating_sub(1));
    let len = ((dur_us as usize * BAR_WIDTH) / total as usize).max(1);
    let len = len.min(BAR_WIDTH - lead);
    let mut out = String::with_capacity(BAR_WIDTH * 3);
    out.push_str(&"·".repeat(lead));
    out.push_str(&"█".repeat(len));
    out.push_str(&" ".repeat(BAR_WIDTH - lead - len));
    out
}

/// Renders one trace record: header, waterfall, attribution table.
pub fn render_trace(trace: &Json) -> Result<String, String> {
    cachemap_obs::validate_trace(trace)
        .map_err(|errs| format!("invalid trace record: {}", errs.join("; ")))?;
    let id = trace.get("trace_id").and_then(Json::as_str).unwrap_or("?");
    let tenant = trace.get("tenant").and_then(Json::as_str).unwrap_or("?");
    let outcome = trace.get("outcome").and_then(Json::as_str).unwrap_or("?");
    let seq = trace.get("seq").and_then(Json::as_u64).unwrap_or(0);
    let cached = trace.get("cached") == Some(&Json::Bool(true));
    let total_us = trace.get("total_us").and_then(Json::as_u64).unwrap_or(0);
    let rows = stage_rows(trace);

    let mut out = format!(
        "trace {id}  seq {seq}  tenant {tenant}  outcome {outcome}  \
         cached {cached}  total {total_us} µs\n"
    );
    for r in &rows {
        let label = match &r.role {
            Some(role) => format!("{} ({role})", r.name),
            None => r.name.clone(),
        };
        let extra = if r.profile_spans > 0 {
            format!("  [{} profile spans]", r.profile_spans)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "  {label:<20} |{}| {:>9} µs @ {:>9}{extra}\n",
            bar(r.start_us, r.dur_us, total_us),
            r.dur_us,
            r.start_us,
        ));
    }

    out.push_str("  attribution:\n");
    let sum: u64 = rows.iter().map(|r| r.dur_us).sum();
    for r in &rows {
        let share = r.dur_us as f64 / total_us.max(1) as f64 * 100.0;
        out.push_str(&format!(
            "    {:<20} {:>9} µs  {share:>5.1}%\n",
            r.name, r.dur_us
        ));
    }
    if total_us > sum {
        let rem = total_us - sum;
        out.push_str(&format!(
            "    {:<20} {rem:>9} µs  {:>5.1}%\n",
            "(unattributed)",
            rem as f64 / total_us.max(1) as f64 * 100.0
        ));
    }
    out.push_str(&format!("    {:<20} {sum:>9} µs  of {total_us} µs\n", "Σ"));
    Ok(out)
}

/// Renders one flight-recorder dump: header, ring summary, and the
/// slowest trace's waterfall.
pub fn render_flight(record: &Json) -> Result<String, String> {
    cachemap_obs::validate_flight_record(record)
        .map_err(|errs| format!("invalid flight record: {}", errs.join("; ")))?;
    let trigger = record.get("trigger").and_then(Json::as_str).unwrap_or("?");
    let dump_seq = record.get("dump_seq").and_then(Json::as_u64).unwrap_or(0);
    let recorded = record
        .get("recorded_total")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let traces = record
        .get("traces")
        .and_then(Json::as_array)
        .unwrap_or_default();

    let mut out = format!(
        "== flight record — trigger {trigger}, dump {dump_seq}, \
         {} of {recorded} recorded traces in the ring ==\n",
        traces.len()
    );
    // Context: every scalar field beyond the schema's fixed header.
    if let Json::Object(pairs) = record {
        for (k, v) in pairs {
            if matches!(
                k.as_str(),
                "schema" | "trigger" | "dump_seq" | "recorded_total" | "traces"
            ) {
                continue;
            }
            out.push_str(&format!("   {k}: {}\n", v.to_string_compact()));
        }
    }

    let mut slowest: Option<&Json> = None;
    for t in traces {
        let total = t.get("total_us").and_then(Json::as_u64).unwrap_or(0);
        out.push_str(&format!(
            "   {:<18} seq {:>6}  {:<14} {:<12} {:>9} µs\n",
            t.get("trace_id").and_then(Json::as_str).unwrap_or("?"),
            t.get("seq").and_then(Json::as_u64).unwrap_or(0),
            t.get("outcome").and_then(Json::as_str).unwrap_or("?"),
            t.get("tenant").and_then(Json::as_str).unwrap_or("?"),
            total,
        ));
        if slowest
            .and_then(|s| s.get("total_us"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
            <= total
        {
            slowest = Some(t);
        }
    }
    if let Some(s) = slowest {
        out.push_str("slowest trace:\n");
        out.push_str(&render_trace(s)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemap_obs::{TraceId, TraceRecord};

    fn sample_trace() -> Json {
        let mut r = TraceRecord::new(TraceId::derive(7, 3), 3, "00ff".into(), "acme".into());
        r.push_stage("fingerprint", 0, 10);
        r.push_stage("l1", 10, 5);
        r.push_tagged("coalesce", 15, 900, "follower");
        r.push_stage("serialize", 915, 60);
        r.outcome = "ok_coalesced".into();
        r.cached = true;
        r.total_us = 1000;
        r.to_json()
    }

    #[test]
    fn trace_waterfall_renders_all_stages_and_sums() {
        let text = render(&sample_trace()).unwrap();
        for needle in [
            "fingerprint",
            "coalesce (follower)",
            "serialize",
            "tenant acme",
            "outcome ok_coalesced",
            "(unattributed)",
            "total 1000 µs",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn response_wrapper_and_flight_record_both_render() {
        let wrapped = Json::object(vec![
            ("id", Json::UInt(1)),
            ("status", Json::Str("ok".into())),
            ("trace", sample_trace()),
        ]);
        assert!(render(&wrapped).unwrap().contains("outcome ok_coalesced"));

        let flight = Json::object(vec![
            ("schema", Json::Str(cachemap_obs::FLIGHT_SCHEMA.into())),
            ("trigger", Json::Str("slow_request".into())),
            ("dump_seq", Json::UInt(0)),
            ("recorded_total", Json::UInt(1)),
            ("queue_depth", Json::UInt(4)),
            ("traces", Json::Array(vec![sample_trace()])),
        ]);
        let text = render(&flight).unwrap();
        assert!(text.contains("trigger slow_request"));
        assert!(text.contains("queue_depth: 4"));
        assert!(text.contains("slowest trace:"));
    }

    #[test]
    fn junk_is_rejected_with_a_reason() {
        let junk = Json::object(vec![("hello", Json::UInt(1))]);
        assert!(render(&junk).is_err());
        let bad_flight = Json::object(vec![
            ("schema", Json::Str(cachemap_obs::FLIGHT_SCHEMA.into())),
            ("trigger", Json::Str(String::new())),
        ]);
        assert!(render(&bad_flight).unwrap_err().contains("invalid flight"));
    }
}
