//! Experiment harness for the HPDC'10 reproduction.
//!
//! This crate contains the shared machinery behind the `repro` binary
//! (one subcommand per table/figure of the paper's Section 5) and the
//! criterion benchmarks. The central entry point is [`run_cell`]: map one
//! application with one version on one platform, simulate it, and return
//! the [`SimReport`]. Everything above that is sweep + formatting logic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use cachemap_core::{Mapper, MapperConfig, Version};
use cachemap_polyhedral::DataSpace;
use cachemap_storage::{HierarchyTree, PlatformConfig, SimReport, Simulator};
use cachemap_workloads::{Application, Scale};

pub mod advisor;
pub mod chaos;
pub mod cluster_bench;
pub mod experiments;
pub mod obs;
pub mod open_loop;
pub mod report;
pub mod router_storm;
pub mod serve;
pub mod storm;
pub mod timing;
pub mod tracefmt;

pub use obs::{render_artifact, run_cell_observed, write_obs_artifact};

/// Runs one (application, version, platform) cell end to end.
pub fn run_cell(
    app: &Application,
    platform: &PlatformConfig,
    mapper_cfg: &MapperConfig,
    version: Version,
) -> SimReport {
    let data = DataSpace::new(&app.program.arrays, platform.chunk_bytes);
    let tree = HierarchyTree::from_config(platform).expect("valid platform config");
    let mapper = Mapper::new(*mapper_cfg);
    let mapped = mapper.map(&app.program, &data, platform, &tree, version);
    Simulator::new(platform.clone())
        .expect("valid platform config")
        .run(&mapped)
        .expect("well-formed mapped program")
}

/// The reports of all requested versions for one application.
#[derive(Debug, Clone)]
pub struct AppResults {
    /// Application name.
    pub app: String,
    /// `(version label, report)` in request order.
    pub versions: Vec<(String, SimReport)>,
}

impl AppResults {
    /// The report for a version label.
    pub fn get(&self, label: &str) -> &SimReport {
        &self
            .versions
            .iter()
            .find(|(l, _)| l == label)
            .unwrap_or_else(|| panic!("no version {label}"))
            .1
    }
}

/// Runs the given versions for every app of the suite on one platform,
/// fanning the independent (app, version) cells out over worker threads.
pub fn run_suite(
    scale: Scale,
    platform: &PlatformConfig,
    mapper_cfg: &MapperConfig,
    versions: &[Version],
) -> Vec<AppResults> {
    let apps = cachemap_workloads::suite(scale);
    let mut cells: Vec<(usize, Version)> = Vec::new();
    for ai in 0..apps.len() {
        for &v in versions {
            cells.push((ai, v));
        }
    }

    // One pool task per (app, version) cell; `CACHEMAP_THREADS`
    // overrides the machine's available parallelism. Results come back
    // in cell order, so the per-app tables below are deterministic.
    let results: Vec<(usize, Version, SimReport)> = cachemap_par::Pool::from_env()
        .map(&cells, |_, &(ai, v)| {
            (ai, v, run_cell(&apps[ai], platform, mapper_cfg, v))
        });

    let mut per_app: Vec<AppResults> = apps
        .iter()
        .map(|a| AppResults {
            app: a.name.to_string(),
            versions: Vec::new(),
        })
        .collect();
    // Preserve the requested version order per app.
    for &v in versions {
        for r in &results {
            if r.1 == v {
                per_app[r.0]
                    .versions
                    .push((v.label().to_string(), r.2.clone()));
            }
        }
    }
    per_app
}

/// Writes a serializable result as pretty JSON under `reports/`.
pub fn write_report<T: cachemap_util::ToJson>(
    name: &str,
    value: &T,
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("reports");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, value.to_json().to_string_pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_cell_produces_consistent_reports() {
        let app = cachemap_workloads::by_name("contour", Scale::Test).unwrap();
        let platform = PlatformConfig::paper_default().with_cache_chunks(8, 8, 8);
        let cfg = MapperConfig::default();
        let a = run_cell(&app, &platform, &cfg, Version::Original);
        let b = run_cell(&app, &platform, &cfg, Version::Original);
        assert_eq!(a.io_latency_ns, b.io_latency_ns, "must be deterministic");
        assert!(a.l1.accesses() > 0);
    }

    #[test]
    fn run_suite_returns_all_apps_and_versions() {
        let platform = PlatformConfig::paper_default().with_cache_chunks(8, 8, 8);
        let cfg = MapperConfig::default();
        let res = run_suite(
            Scale::Test,
            &platform,
            &cfg,
            &[Version::Original, Version::InterProcessor],
        );
        assert_eq!(res.len(), 8);
        for r in &res {
            assert_eq!(r.versions.len(), 2);
            assert_eq!(r.versions[0].0, "original");
            let orig = r.get("original");
            let inter = r.get("inter-processor");
            assert_eq!(
                orig.l1.accesses(),
                inter.l1.accesses(),
                "{}: same access totals across versions",
                r.app
            );
        }
    }
}
