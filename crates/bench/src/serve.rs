//! Closed-loop load harness for the mapping service (`repro serve-bench`).
//!
//! Spawns a live TCP server, replays a seeded zipf-skewed mix of the
//! eight workload applications against it from several closed-loop
//! client threads, and reports throughput, cache hit rate, and p50/p99
//! latency. Three invariants are asserted while the load runs:
//!
//! 1. **No silent drops** — every request is answered either with a
//!    mapping or with a typed `ServiceError` code.
//! 2. **Byte identity** — every served mapping (hit or miss) serializes
//!    to exactly the bytes of an uncached `Mapper::map` run.
//! 3. **Memoization works** — the hit rate over the zipf mix reaches at
//!    least 50% (the template pool is far smaller than the request
//!    count, so misses are bounded by the pool size).
//!
//! The harness is deterministic for a given `(seed, requests, clients)`
//! triple in everything but wall-clock timings.
//!
//! With `tracing` enabled (the default) every reply carries the
//! service's per-request trace; the harness aggregates the per-stage
//! durations around the median request into attribution columns
//! (`queue_wait_us`, `coalesce_us`, `l2_us`, `compute_us`,
//! `serialize_us`, …) whose sum must land within 10% of the
//! service-observed p50 (the median trace total) — a standing check
//! that the trace timeline actually tiles the latency it claims to
//! explain. The client-measured p50 is reported alongside; the gap
//! between the two is the wire: writing megabyte request/response
//! lines and the client's own parse + byte-identity check, none of
//! which the server can attribute.

use cachemap_core::{Mapper, MapperConfig, Version};
use cachemap_par::Pool;
use cachemap_polyhedral::DataSpace;
use cachemap_service::server::Server;
use cachemap_service::{MapRequest, MapService, ServiceConfig};
use cachemap_storage::{HierarchyTree, PlatformConfig};
use cachemap_util::check::Gen;
use cachemap_util::{json, Json, ToJson};
use cachemap_workloads::{suite, Scale};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

/// Load-campaign knobs.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// RNG seed for the zipf template sequence.
    pub seed: u64,
    /// Total requests across all client threads.
    pub requests: usize,
    /// Closed-loop client threads (one TCP connection each).
    pub clients: usize,
    /// Limit on workload applications in the template pool
    /// (`0` = the full eight-application suite); debug-build tests use
    /// a small pool to keep the cold-oracle phase fast.
    pub apps: usize,
    /// Run the service with request tracing on and report per-stage
    /// latency attribution (off measures the trace-free wire format).
    pub tracing: bool,
    /// Flight-recorder dump directory override; `None` keeps the
    /// service default (`reports/`). Tests point this at a temp dir.
    pub flight_dir: Option<std::path::PathBuf>,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            seed: 42,
            requests: 1200,
            clients: 8,
            apps: 0,
            tracing: true,
            flight_dir: None,
        }
    }
}

/// Aggregated campaign results.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// The seed the campaign ran with.
    pub seed: u64,
    /// Requests sent (= answered; the harness asserts no silent drops).
    pub requests: usize,
    /// Distinct request templates in the zipf pool.
    pub templates: usize,
    /// Successful responses served from the fingerprint cache.
    pub hits: u64,
    /// Successful responses computed by the pipeline.
    pub computed: u64,
    /// Typed rejections by `ServiceError` code.
    pub rejections: BTreeMap<String, u64>,
    /// Cache hit rate over successful responses.
    pub hit_rate: f64,
    /// Requests per second over the whole campaign.
    pub throughput_rps: f64,
    /// Median end-to-end latency (µs).
    pub p50_us: u64,
    /// 99th-percentile end-to-end latency (µs).
    pub p99_us: u64,
    /// 99.9th-percentile end-to-end latency (µs).
    pub p999_us: u64,
    /// Successful replies that carried a trace object.
    pub traced: u64,
    /// Median service-side total (µs) over all traces — the latency
    /// the server itself observed, parse through serialize. The gap to
    /// `p50_us` is wire transfer plus client-side parse.
    pub service_p50_us: u64,
    /// Per-stage latency attribution (µs), averaged over the traces
    /// whose total sits in the middle decile around the median — so the
    /// stage values sum to (about) the median request's timeline.
    pub stages: BTreeMap<String, u64>,
    /// Sum of the attribution columns (µs); checked against
    /// `service_p50_us`.
    pub stage_sum_us: u64,
    /// Campaign wall-clock (ms).
    pub elapsed_ms: f64,
    /// Scraped `/metrics` passed the Prometheus schema check.
    pub metrics_schema_ok: bool,
}

impl ToJson for ServeBenchReport {
    fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("bench".into(), Json::Str("serve".into())),
            // Closed-loop: clients wait for each reply before sending
            // again, so `throughput_rps` tracks round-trip latency, not
            // offered load — compare with the `open` section's
            // offered/achieved split before quoting it.
            ("loop".into(), Json::Str("closed".into())),
            ("seed".into(), Json::UInt(self.seed)),
            ("requests".into(), Json::UInt(self.requests as u64)),
            ("templates".into(), Json::UInt(self.templates as u64)),
            ("hits".into(), Json::UInt(self.hits)),
            ("computed".into(), Json::UInt(self.computed)),
            (
                "rejections".into(),
                Json::Object(
                    self.rejections
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            ("hit_rate".into(), Json::Float(self.hit_rate)),
            ("throughput_rps".into(), Json::Float(self.throughput_rps)),
            ("p50_us".into(), Json::UInt(self.p50_us)),
            ("p99_us".into(), Json::UInt(self.p99_us)),
            ("p999_us".into(), Json::UInt(self.p999_us)),
            ("traced".into(), Json::UInt(self.traced)),
            ("service_p50_us".into(), Json::UInt(self.service_p50_us)),
        ];
        // Per-stage attribution columns, one `<stage>_us` key each, in
        // the trace's stage order.
        for stage in cachemap_service::TRACE_STAGES {
            if let Some(us) = self.stages.get(stage) {
                pairs.push((format!("{stage}_us"), Json::UInt(*us)));
            }
        }
        pairs.push(("stage_sum_us".into(), Json::UInt(self.stage_sum_us)));
        pairs.push(("elapsed_ms".into(), Json::Float(self.elapsed_ms)));
        pairs.push((
            "metrics_schema_ok".into(),
            Json::Bool(self.metrics_schema_ok),
        ));
        Json::Object(pairs)
    }
}

pub(crate) struct Template {
    pub(crate) line: String,
    pub(crate) cold_bytes: String,
}

/// Builds the template pool: 8 apps × 2 versions × 2 mapper variants,
/// with each template's cold-pipeline oracle bytes computed up front.
pub(crate) fn build_templates(app_limit: usize) -> Vec<Template> {
    let platform = PlatformConfig::tiny();
    let tree = HierarchyTree::from_config(&platform).expect("tiny config is valid");
    let mappers = [
        MapperConfig::default(),
        MapperConfig {
            refine_passes: 1,
            ..MapperConfig::default()
        },
    ];
    let mut apps = suite(Scale::Test);
    if app_limit > 0 {
        apps.truncate(app_limit);
    }
    let mut out = Vec::new();
    for app in apps {
        let data = DataSpace::new(&app.program.arrays, platform.chunk_bytes);
        for version in [Version::InterProcessor, Version::InterProcessorScheduled] {
            for mapper in mappers {
                let cold_bytes = Mapper::new(mapper)
                    .map(&app.program, &data, &platform, &tree, version)
                    .to_json()
                    .to_string_compact();
                let req = MapRequest {
                    id: out.len() as u64,
                    program: app.program.clone(),
                    platform: platform.clone(),
                    mapper,
                    version,
                    deadline_ms: None,
                    tenant: None,
                };
                out.push(Template {
                    line: req.to_json().to_string_compact(),
                    cold_bytes,
                });
            }
        }
    }
    out
}

/// Zipf(s = 1.2) sampler over `n` ranks via inverse-CDF table lookup.
pub(crate) struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub(crate) fn new(n: usize) -> Self {
        let weights: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(1.2)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf { cdf }
    }

    pub(crate) fn sample(&self, g: &mut Gen) -> usize {
        let u = g.f64();
        self.cdf
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.cdf.len() - 1)
    }
}

pub(crate) struct ClientTally {
    pub(crate) hits: u64,
    pub(crate) computed: u64,
    pub(crate) rejections: BTreeMap<String, u64>,
    pub(crate) latencies_us: Vec<u64>,
    /// Per traced reply: `(trace total_us, per-stage duration sums)`.
    pub(crate) traces: Vec<(u64, BTreeMap<String, u64>)>,
    /// Traced replies whose coalesce stage was tagged `follower`.
    pub(crate) follower_spans: u64,
}

/// Pulls `(total_us, per-stage sums)` out of a reply's `trace` object,
/// plus whether the request waited on another request's computation.
fn digest_trace(trace: &Json) -> Option<(u64, BTreeMap<String, u64>, bool)> {
    let total = trace.get("total_us").and_then(Json::as_u64)?;
    let mut stages: BTreeMap<String, u64> = BTreeMap::new();
    let mut follower = false;
    for s in trace.get("stages").and_then(Json::as_array)? {
        let name = s.get("name").and_then(Json::as_str)?;
        let dur = s.get("dur_us").and_then(Json::as_u64)?;
        *stages.entry(name.to_string()).or_insert(0) += dur;
        if name == "coalesce" && s.get("role").and_then(Json::as_str) == Some("follower") {
            follower = true;
        }
    }
    Some((total, stages, follower))
}

pub(crate) fn drive_client(
    addr: std::net::SocketAddr,
    templates: &[Template],
    zipf: &Zipf,
    seed: u64,
    requests: usize,
) -> Result<ClientTally, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut g = Gen::from_seed(seed);
    let mut tally = ClientTally {
        hits: 0,
        computed: 0,
        rejections: BTreeMap::new(),
        latencies_us: Vec::with_capacity(requests),
        traces: Vec::new(),
        follower_spans: 0,
    };
    let mut reply = String::new();
    for k in 0..requests {
        let t = &templates[zipf.sample(&mut g)];
        let t0 = Instant::now();
        writer
            .write_all(t.line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .map_err(|e| format!("request {k}: write: {e}"))?;
        reply.clear();
        reader
            .read_line(&mut reply)
            .map_err(|e| format!("request {k}: read: {e}"))?;
        tally.latencies_us.push(t0.elapsed().as_micros() as u64);
        if reply.is_empty() {
            return Err(format!("request {k}: connection closed without a reply"));
        }
        let v = json::parse(&reply).map_err(|e| format!("request {k}: bad reply json: {e}"))?;
        match v.get("status").and_then(Json::as_str) {
            Some("ok") => {
                let mapping = v
                    .get("mapping")
                    .ok_or_else(|| format!("request {k}: ok reply without a mapping"))?;
                // Invariant 2: hit or miss, the bytes match the cold run.
                let got = mapping.to_string_compact();
                if got != t.cold_bytes {
                    return Err(format!(
                        "request {k}: mapping diverged from the cold pipeline \
                         ({} vs {} bytes)",
                        got.len(),
                        t.cold_bytes.len()
                    ));
                }
                if v.get("cached") == Some(&Json::Bool(true)) {
                    tally.hits += 1;
                } else {
                    tally.computed += 1;
                }
                if let Some((total, stages, follower)) = v.get("trace").and_then(digest_trace) {
                    tally.traces.push((total, stages));
                    tally.follower_spans += u64::from(follower);
                }
            }
            Some("error") => {
                // Invariant 1: rejections carry a typed code.
                let code = v
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("request {k}: error reply without a code"))?;
                *tally.rejections.entry(code.to_string()).or_insert(0) += 1;
            }
            other => return Err(format!("request {k}: unrecognized status {other:?}")),
        }
    }
    Ok(tally)
}

/// Checks one Prometheus text exposition for schema validity: every
/// sample line is `name{label="value",…} number`, with legal metric and
/// label identifiers.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    fn ident_ok(s: &str, allow_colon: bool) -> bool {
        !s.is_empty()
            && s.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic()
                    || c == '_'
                    || (allow_colon && c == ':')
                    || (i > 0 && c.is_ascii_digit())
            })
    }
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {line:?}", ln + 1))?;
        if !(value == "+Inf" || value == "-Inf" || value == "NaN" || value.parse::<f64>().is_ok()) {
            return Err(format!("line {}: bad value {value:?}", ln + 1));
        }
        let (name, labels) = match series.split_once('{') {
            None => (series, None),
            Some((n, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unterminated label set", ln + 1))?;
                (n, Some(body))
            }
        };
        if !ident_ok(name, true) {
            return Err(format!("line {}: bad metric name {name:?}", ln + 1));
        }
        if let Some(body) = labels {
            for pair in body.split(',') {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("line {}: bad label pair {pair:?}", ln + 1))?;
                if !ident_ok(k, false) {
                    return Err(format!("line {}: bad label name {k:?}", ln + 1));
                }
                if !(v.len() >= 2 && v.starts_with('"') && v.ends_with('"')) {
                    return Err(format!("line {}: unquoted label value {v:?}", ln + 1));
                }
            }
        }
    }
    Ok(())
}

/// Scrapes `GET /metrics` from a live server over plain HTTP.
pub fn scrape_metrics(addr: std::net::SocketAddr) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n")
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = String::new();
    BufReader::new(stream)
        .read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    if !raw.starts_with("HTTP/1.1 200") {
        return Err(format!(
            "unexpected response: {:?}",
            raw.lines().next().unwrap_or("")
        ));
    }
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .ok_or("no body")?;
    Ok(body)
}

/// Runs the full campaign: spawn server, drive the load, scrape
/// metrics, aggregate. Panics on invariant violations (no-silent-drop,
/// byte-identity, hit-rate floor).
pub fn run(cfg: &ServeBenchConfig) -> Result<ServeBenchReport, String> {
    let templates = build_templates(cfg.apps);
    let zipf = Zipf::new(templates.len());
    let mut svc_cfg = ServiceConfig {
        tracing: cfg.tracing,
        ..ServiceConfig::default()
    };
    if let Some(dir) = &cfg.flight_dir {
        svc_cfg.flight_dir = dir.clone();
    }
    let service = Arc::new(MapService::start(svc_cfg));
    let server =
        Server::spawn("127.0.0.1:0", Arc::clone(&service)).map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();

    let clients = cfg.clients.max(1);
    let t0 = Instant::now();
    // The closed-loop load generator runs through the shared pool: one
    // task per client, `CACHEMAP_THREADS` bounding how many drive the
    // server at once (all of them by default). Tallies come back in
    // client order, so the aggregation below is deterministic.
    let client_ids: Vec<usize> = (0..clients).collect();
    let tallies = Pool::from_env_or(clients)
        .try_map(&client_ids, |_, &c| {
            // Spread the remainder so the totals add up exactly.
            let share = cfg.requests / clients + usize::from(c < cfg.requests % clients);
            let seed = cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (c as u64 + 1);
            drive_client(addr, &templates, &zipf, seed, share)
        })
        .map_err(|e| format!("client worker panicked: {e}"))?;

    let mut hits = 0u64;
    let mut computed = 0u64;
    let mut rejections: BTreeMap<String, u64> = BTreeMap::new();
    let mut latencies: Vec<u64> = Vec::with_capacity(cfg.requests);
    let mut traces: Vec<(u64, BTreeMap<String, u64>)> = Vec::new();
    for tally in tallies {
        let tally = tally?;
        hits += tally.hits;
        computed += tally.computed;
        for (code, n) in tally.rejections {
            *rejections.entry(code).or_insert(0) += n;
        }
        latencies.extend(tally.latencies_us);
        traces.extend(tally.traces);
    }
    let elapsed = t0.elapsed();

    // Invariant 1 (no silent drops): every request is accounted for.
    let rejected: u64 = rejections.values().sum();
    let answered = hits + computed + rejected;
    assert_eq!(
        answered as usize, cfg.requests,
        "requests dropped without a typed ServiceError"
    );

    let served = hits + computed;
    let hit_rate = if served == 0 {
        0.0
    } else {
        hits as f64 / served as f64
    };
    // Invariant 3: the zipf mix must actually exercise memoization.
    if cfg.requests >= 4 * templates.len() {
        assert!(
            hit_rate >= 0.5,
            "hit rate {hit_rate:.3} below the 0.5 floor ({hits} hits / {served} served)"
        );
    }

    let metrics = scrape_metrics(addr)?;
    validate_prometheus(&metrics)?;
    if !metrics.contains("cachemap_service_cache_hits_total") {
        return Err("metrics scrape is missing the cache-hit counter".into());
    }

    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            let idx = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len()) - 1;
            latencies[idx]
        }
    };

    // Tracing coverage: every successful reply must carry a trace.
    let traced = traces.len() as u64;
    if cfg.tracing {
        assert_eq!(
            traced,
            served,
            "tracing was on but {} of {served} served replies had no trace",
            served - traced
        );
    } else {
        assert_eq!(traced, 0, "tracing was off but replies carried traces");
    }

    // Per-stage attribution: average the traces whose total sits in the
    // middle decile around the median, so the columns describe the
    // median request's timeline (and therefore sum to ≈ the service-
    // observed p50).
    traces.sort_by_key(|(total, _)| *total);
    let service_p50_us = traces.get(traces.len() / 2).map_or(0, |(t, _)| *t);
    let (stages, stage_sum_us) = if traces.is_empty() {
        (BTreeMap::new(), 0)
    } else {
        let lo = traces.len() * 45 / 100;
        let hi = (traces.len() * 55 / 100 + 1).min(traces.len());
        let window = &traces[lo..hi];
        let mut sums: BTreeMap<String, u64> = BTreeMap::new();
        for (_, per_stage) in window {
            for (name, us) in per_stage {
                *sums.entry(name.clone()).or_insert(0) += us;
            }
        }
        let n = window.len() as u64;
        let stages: BTreeMap<String, u64> = sums.into_iter().map(|(k, v)| (k, v / n)).collect();
        let sum = stages.values().sum();
        (stages, sum)
    };
    // The attribution must explain the latency it claims to: at real
    // campaign sizes the stage sum lands within 10% of the service-
    // observed p50. (The client p50 is not the baseline — it also
    // carries wire transfer and the client's parse + byte-identity
    // check, which no server-side trace can see.)
    if cfg.tracing && cfg.requests >= 400 {
        let p50 = service_p50_us as f64;
        let sum = stage_sum_us as f64;
        assert!(
            (sum - p50).abs() <= 0.10 * p50.max(1.0),
            "stage attribution sum {stage_sum_us} µs strays more than 10% \
             from the service p50 {service_p50_us} µs"
        );
    }

    let report = ServeBenchReport {
        seed: cfg.seed,
        requests: cfg.requests,
        templates: templates.len(),
        hits,
        computed,
        rejections,
        hit_rate,
        throughput_rps: cfg.requests as f64 / elapsed.as_secs_f64(),
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        p999_us: pct(0.999),
        traced,
        service_p50_us,
        stages,
        stage_sum_us,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        metrics_schema_ok: true,
    };

    server.shutdown();
    service.shutdown();
    Ok(report)
}

/// Renders the human-readable campaign summary.
pub fn render(report: &ServeBenchReport) -> String {
    let rej: u64 = report.rejections.values().sum();
    let mut out = format!(
        "== serve-bench — seed {} ==\n\
         requests      {:>8}   ({} templates, {} clients closed-loop)\n\
         served        {:>8}   ({} cached + {} computed, hit rate {:.1}%)\n\
         rejected      {:>8}   (all with typed ServiceError codes)\n\
         throughput    {:>8.0} req/s\n\
         latency       p50 {} µs, p99 {} µs, p99.9 {} µs",
        report.seed,
        report.requests,
        report.templates,
        ServeBenchConfig::default().clients,
        report.hits + report.computed,
        report.hits,
        report.computed,
        report.hit_rate * 100.0,
        rej,
        report.throughput_rps,
        report.p50_us,
        report.p99_us,
        report.p999_us,
    );
    if !report.stages.is_empty() {
        let cols: Vec<String> = cachemap_service::TRACE_STAGES
            .iter()
            .filter_map(|s| report.stages.get(*s).map(|us| format!("{s} {us}")))
            .collect();
        out.push_str(&format!(
            "\nattribution   {} µs  (Σ {} µs ≈ service p50 {} µs over {} traces;\n\
             \x20             client p50 − service p50 = wire + client parse)",
            cols.join(" | "),
            report.stage_sum_us,
            report.service_p50_us,
            report.traced,
        ));
    }
    out.push_str(&format!(
        "\nwall clock    {:>8.1} ms\n\
         metrics       Prometheus schema OK",
        report.elapsed_ms,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(32);
        let mut g = Gen::from_seed(7);
        let mut counts = [0usize; 32];
        for _ in 0..2000 {
            counts[z.sample(&mut g)] += 1;
        }
        assert!(counts[0] > counts[31], "rank 0 must dominate rank 31");
        assert!(counts.iter().sum::<usize>() == 2000);
    }

    #[test]
    fn prometheus_validator_accepts_real_and_rejects_junk() {
        let good = "# HELP x_total help\n# TYPE x_total counter\n\
                    x_total{op=\"map\",outcome=\"ok\"} 3\n\
                    lat_bucket{le=\"+Inf\"} 7\nlat_sum 0.25\n";
        validate_prometheus(good).unwrap();
        for bad in [
            "1bad_name 3\n",
            "x{op=map} 3\n",
            "x{op=\"map\"} notanumber\n",
            "x{op=\"map\" 3\n",
        ] {
            assert!(validate_prometheus(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn tiny_campaign_meets_all_invariants() {
        // Two apps keep the cold-oracle phase fast in debug builds; the
        // full eight-app pool runs under `repro serve-bench` in release.
        let flight = std::env::temp_dir().join(format!("cachemap-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&flight);
        let report = run(&ServeBenchConfig {
            seed: 7,
            requests: 64,
            clients: 4,
            apps: 2,
            tracing: true,
            flight_dir: Some(flight.clone()),
        })
        .unwrap();
        assert_eq!(report.requests, 64);
        assert_eq!(report.templates, 8);
        assert!(report.hit_rate >= 0.5);
        assert!(report.metrics_schema_ok);
        // Tracing: every served reply carried a trace and the stage
        // columns aggregated into a non-empty attribution.
        assert_eq!(report.traced, report.hits + report.computed);
        assert!(report.stage_sum_us > 0, "empty stage attribution");
        assert!(report.service_p50_us > 0, "no service-side p50");
        assert!(
            report.stages.contains_key("fingerprint"),
            "every trace starts with the fingerprint stage"
        );
        // The graceful shutdown dumped a drain flight record.
        let drains: Vec<_> = std::fs::read_dir(&flight)
            .expect("flight dir exists")
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name()
                    .to_str()
                    .is_some_and(|n| n.starts_with("flight-drain-") && n.ends_with(".json"))
            })
            .collect();
        assert_eq!(drains.len(), 1, "expected exactly one drain dump");
        let dump = std::fs::read_to_string(drains[0].path()).unwrap();
        cachemap_obs::validate_flight_record(&json::parse(&dump).unwrap())
            .expect("drain dump matches the flight-record schema");
        let _ = std::fs::remove_dir_all(&flight);
    }

    #[test]
    fn untraced_campaign_has_no_trace_fields() {
        let report = run(&ServeBenchConfig {
            seed: 11,
            requests: 24,
            clients: 2,
            apps: 1,
            tracing: false,
            flight_dir: None,
        })
        .unwrap();
        assert_eq!(report.traced, 0);
        assert!(report.stages.is_empty());
        assert_eq!(report.stage_sum_us, 0);
    }
}
