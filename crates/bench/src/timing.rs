//! A miniature wall-clock benchmarking harness.
//!
//! The workspace builds offline, so the `harness = false` bench targets
//! use this module instead of an external benchmarking crate: warm up,
//! run a fixed number of timed iterations, and report min/median/mean.
//! Numbers are indicative rather than statistically rigorous — the bench
//! binaries exist to keep every experiment's machinery exercised and its
//! cost visible, not to gate regressions automatically.

use std::hint::black_box;
use std::time::Instant;

/// Runs `f` `iters` times after `warmup` unrecorded runs and prints one
/// line of timing. The closure's result is passed through [`black_box`]
/// so the optimizer cannot delete the work.
pub fn bench<R, F: FnMut() -> R>(name: &str, warmup: usize, iters: usize, mut f: F) {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut samples_ns: Vec<u128> = Vec::with_capacity(iters.max(1));
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        black_box(f());
        samples_ns.push(t0.elapsed().as_nanos());
    }
    samples_ns.sort_unstable();
    let min = samples_ns[0];
    let median = samples_ns[samples_ns.len() / 2];
    let mean = samples_ns.iter().sum::<u128>() / samples_ns.len() as u128;
    println!(
        "{name:<44} min {:>12}  median {:>12}  mean {:>12}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean)
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_closure() {
        let mut calls = 0u32;
        bench("noop", 1, 3, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 4);
    }

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_ns(10), "10 ns");
        assert_eq!(fmt_ns(2_500), "2.500 us");
        assert_eq!(fmt_ns(2_500_000), "2.500 ms");
        assert_eq!(fmt_ns(2_500_000_000), "2.500 s");
    }
}
