//! `repro` — regenerate the tables and figures of the HPDC'10 paper.
//!
//! ```text
//! repro [--test-scale] <experiment> [experiment...]
//! repro all
//! ```
//!
//! Experiments: `table1 table2 example fig10 fig11 fig12 fig13 fig14
//! fig18 alphabeta prefetch refine linkage policies schedmetric deps multinest
//! mapping-cost resilience`, plus the diagnostics `detail:<app>` and
//! `clients:<app>`.
//!
//! Chaos: `repro chaos[:<seed>[:<plans>]]` runs a seeded fault-plan
//! campaign against the online supervisor and checks four invariants
//! per plan; violated plans are shrunk to minimal `chaos_repro_*.json`
//! files, which `repro chaos-replay <file...>` re-runs byte-for-byte.
//!
//! Each experiment prints a paper-style table and archives the raw
//! numbers under `reports/<id>.json`.
//!
//! Observability: `repro obs-export[:<app>]` captures one fully observed
//! run (mapper phase profile + engine time series) into
//! `reports/<app>-inter-scheduled.obs.json`; `repro obs <path...>`
//! renders such artifacts; `repro resilience` additionally exports an
//! artifact showing the crash → failover → steady-state timeline.

use cachemap_bench::{experiments, report::Matrix, write_report};
use cachemap_storage::PlatformConfig;
use cachemap_util::ToJson;
use cachemap_workloads::Scale;

fn emit(matrices: &[Matrix]) {
    for m in matrices {
        println!("{}", m.render());
        match write_report(&m.id, m) {
            Ok(path) => println!("   [raw numbers: {}]\n", path.display()),
            Err(e) => eprintln!("   [warning: could not write report: {e}]\n"),
        }
    }
}

/// Renders the §4.4 worked example (Figures 6-9 and 17) as text.
fn worked_example() -> String {
    use cachemap_core::cluster::{distribute, ClusterParams};
    use cachemap_core::graph::SimilarityGraph;
    use cachemap_core::schedule::{schedule, ScheduleParams};
    use cachemap_core::tags::tag_nest;
    use cachemap_polyhedral::{
        AffineExpr, ArrayDecl, ArrayRef, DataSpace, IterationSpace, Loop, LoopNest, Program,
    };
    use cachemap_storage::HierarchyTree;

    // Figure 6: A[m], 12 chunks of d elements, i = 0 .. m-4d-1,
    // accessing A[i], A[i%d] (≡ chunk 0), A[i+4d], A[i+2d].
    let d: i64 = 4;
    let m = 12 * d;
    let a = ArrayDecl::new("A", vec![m], 8);
    let space = IterationSpace::new(vec![Loop::constant(0, m - 4 * d - 1)]);
    let refs = vec![
        ArrayRef::write(0, vec![AffineExpr::var(0)]),
        ArrayRef::read(0, vec![AffineExpr::var(0).with_mod(d)]),
        ArrayRef::read(0, vec![AffineExpr::var_plus(0, 4 * d)]),
        ArrayRef::read(0, vec![AffineExpr::var_plus(0, 2 * d)]),
    ];
    let program = Program::new("fig6", vec![a], vec![LoopNest::new("fig6", space, refs)]);
    let data = DataSpace::new(&program.arrays, 8 * d as u64);

    let mut out = String::from("== example — §4.4 worked example (Figures 6-9, 17) ==\n");
    let tagged = tag_nest(&program, 0, &data);
    out.push_str("Iteration chunks and tags (Figure 8):\n");
    for (k, c) in tagged.chunks.iter().enumerate() {
        out.push_str(&format!(
            "  γ{} : i = {:>2} .. {:>2}   tag {}\n",
            k + 1,
            c.points.first().unwrap()[0],
            c.points.last().unwrap()[0],
            c.tag.to_tag_string()
        ));
    }

    let g = SimilarityGraph::build(&tagged.chunks);
    out.push_str("Similarity edges with weight ≥ 2 (Figure 8 graph):\n");
    for (i, j, w) in g.edges_at_least(2) {
        out.push_str(&format!("  ω(γ{}, γ{}) = {}\n", i + 1, j + 1, w));
    }

    let cfg = cachemap_storage::PlatformConfig::tiny();
    let tree = HierarchyTree::from_config(&cfg).expect("tiny config is valid");
    let dist = distribute(&tagged.chunks, &tree, &ClusterParams::default());
    out.push_str("Clustering (Figure 9):\n");
    for (c, items) in dist.per_client.iter().enumerate() {
        let names: Vec<String> = items.iter().map(|i| format!("γ{}", i.chunk + 1)).collect();
        out.push_str(&format!("  CN{} ← {{{}}}\n", c, names.join(", ")));
    }

    let sched = schedule(&dist, &tagged.chunks, &tree, &ScheduleParams::default());
    out.push_str("Final schedule (Figure 17):\n");
    for (c, items) in sched.per_client.iter().enumerate() {
        let names: Vec<String> = items.iter().map(|i| format!("γ{}", i.chunk + 1)).collect();
        out.push_str(&format!("  Compute Node {} : {}\n", c, names.join(", ")));
    }
    out
}

/// Updates one section of the committed `BENCH_service.json`, which
/// holds `{"router": {…}, "serve": {…}, "storm": {…}}`. A missing file
/// or a pre-split single-report file starts a fresh sectioned object.
fn merge_bench_service(section: &str, value: cachemap_util::Json) -> std::io::Result<()> {
    use cachemap_util::Json;
    let path = "BENCH_service.json";
    let mut pairs: Vec<(String, Json)> = match std::fs::read_to_string(path)
        .ok()
        .and_then(|text| cachemap_util::json::parse(&text).ok())
    {
        Some(Json::Object(pairs))
            if pairs
                .iter()
                .all(|(k, _)| k == "serve" || k == "storm" || k == "router" || k == "open") =>
        {
            pairs
        }
        _ => Vec::new(),
    };
    match pairs.iter_mut().find(|(k, _)| k == section) {
        Some(slot) => slot.1 = value,
        None => pairs.push((section.to_string(), value)),
    }
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    std::fs::write(path, Json::Object(pairs).to_string_pretty())
}

fn usage() -> String {
    "usage: repro [--test-scale] <subcommand...>\n\
     \n\
     paper experiments:\n\
     \x20 all table1 table2 example fig10 fig11 fig12 fig13 fig14 fig18\n\
     \x20 alphabeta prefetch refine linkage policies schedmetric deps\n\
     \x20 multinest mapping-cost resilience\n\
     diagnostics:\n\
     \x20 detail:<app> clients:<app> analyze:<app> trace:<app>\n\
     observability:\n\
     \x20 obs <artifact.obs.json...>    render exported artifacts\n\
     \x20 obs-export[:<app>]            capture one observed run\n\
     \x20 trace <file...>               render request traces / flight\n\
     \x20                               dumps (flight-*.json, trace-op\n\
     \x20                               replies, map response lines)\n\
     fault injection:\n\
     \x20 chaos[:<seed>[:<plans>]]      seeded fault-plan campaign\n\
     \x20 chaos-replay <file...>        re-run shrunk repro plans\n\
     mapping service:\n\
     \x20 serve[:<addr>]                long-running mapping server\n\
     \x20                               (default 127.0.0.1:7411;\n\
     \x20                               CACHEMAP_L2_DIR enables the durable\n\
     \x20                               L2 tier, CACHEMAP_L2_TTL_SECS its TTL,\n\
     \x20                               CACHEMAP_TRACING=off disables request\n\
     \x20                               tracing + the flight recorder)\n\
     \x20 serve-async[:<addr>]          long-running epoll/batching server\n\
     \x20                               (default 127.0.0.1:7412; same\n\
     \x20                               JSON-lines protocol as serve)\n\
     \x20 serve-bench[:<seed>[:<requests>]]\n\
     \x20                               closed-loop SLO load campaign\n\
     \x20                               (default seed 42, 1200 requests)\n\
     \x20 serve-open[:<rps>[:<secs>]]   open-loop Poisson campaign against\n\
     \x20                               the async server: offered vs\n\
     \x20                               achieved RPS, p99 gate, 10k idle\n\
     \x20                               connections parked (default\n\
     \x20                               1200 req/s for 8 s, seed 42)\n\
     \x20 serve-storm[:<seed>]          robustness storm: hot-fingerprint\n\
     \x20                               coalescing barrage, mid-campaign\n\
     \x20                               kill + torn-tail restart, graceful\n\
     \x20                               drain under load (default seed 42)\n\
     \x20 router-storm[:<seed>]         replica-fleet failover storm:\n\
     \x20                               3-replica consistent-hash router\n\
     \x20                               under network faults, mid-campaign\n\
     \x20                               kill + cold restart, run twice for\n\
     \x20                               reproducibility (default seed 42)\n\
     parallel runtime:\n\
     \x20 bench-cluster[:<seed>]        sequential vs parallel distribute\n\
     \x20                               at paper scale (default seed 42);\n\
     \x20                               CACHEMAP_THREADS caps pool workers\n\
     policy zoo:\n\
     \x20 advisor[:<seed>]              per-(workload, level) eviction-policy\n\
     \x20                               sweep over the adversarial scenarios\n\
     \x20                               + hf/contour; writes the crossover\n\
     \x20                               table to BENCH_policies.json\n\
     \x20                               (default seed 42; deterministic)\n\
     \x20 advisor-check <file...>       validate advisor reports against\n\
     \x20                               the BENCH_policies.json schema\n\
     help:\n\
     \x20 help | --help | -h            this screen"
        .to_string()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_scale = args.iter().any(|a| a == "--test-scale");
    let wants_help = args
        .iter()
        .any(|a| a == "help" || a == "--help" || a == "-h");
    let mut wanted: Vec<String> = args
        .into_iter()
        .filter(|a| !a.starts_with("--") && a != "help" && a != "-h")
        .collect();
    if wants_help {
        println!("{}", usage());
        return;
    }
    if wanted.is_empty() {
        eprintln!("{}", usage());
        std::process::exit(2);
    }

    // `repro obs <path...>` renders exported artifacts; the remaining
    // arguments are file paths, not experiment names.
    if wanted[0] == "obs" {
        if wanted.len() < 2 {
            eprintln!("usage: repro obs <artifact.obs.json...>");
            std::process::exit(2);
        }
        for path in &wanted[1..] {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            match cachemap_obs::ObsArtifact::parse(&text) {
                Ok(a) => println!("{}", cachemap_bench::render_artifact(&a)),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        return;
    }
    // `repro trace <path...>` renders request traces and flight-recorder
    // dumps; the remaining arguments are file paths. (The colon form
    // `trace:<app>` below is the unrelated reuse-distance diagnostic.)
    if wanted[0] == "trace" {
        if wanted.len() < 2 {
            eprintln!("usage: repro trace <flight-*.json | trace.json ...>");
            std::process::exit(2);
        }
        for path in &wanted[1..] {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            let parsed = cachemap_util::json::parse(&text).unwrap_or_else(|e| {
                eprintln!("{path}: not JSON: {e}");
                std::process::exit(2);
            });
            match cachemap_bench::tracefmt::render(&parsed) {
                Ok(rendered) => println!("{rendered}"),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        return;
    }
    // `repro advisor-check <path...>` validates advisor reports; the
    // remaining arguments are file paths, not experiment names.
    if wanted[0] == "advisor-check" {
        if wanted.len() < 2 {
            eprintln!("usage: repro advisor-check <BENCH_policies.json...>");
            std::process::exit(2);
        }
        for path in &wanted[1..] {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            let parsed = cachemap_util::json::parse(&text).unwrap_or_else(|e| {
                eprintln!("{path}: not JSON: {e}");
                std::process::exit(1);
            });
            match cachemap_bench::advisor::validate_report(&parsed) {
                Ok(()) => println!("{path}: valid advisor report"),
                Err(e) => {
                    eprintln!("{path}: schema violation: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }
    // `repro chaos-replay <path...>` re-runs shrunk chaos plans; the
    // remaining arguments are repro files, not experiment names.
    if wanted[0] == "chaos-replay" {
        if wanted.len() < 2 {
            eprintln!("usage: repro chaos-replay <chaos_repro_*.json...>");
            std::process::exit(2);
        }
        let mut all_reproduced = true;
        for path in &wanted[1..] {
            match cachemap_bench::chaos::replay(std::path::Path::new(path)) {
                Ok(outcome) => {
                    if outcome.reproduced() {
                        println!(
                            "{path}: failure reproduced ({})",
                            outcome.observed.join("; ")
                        );
                    } else {
                        all_reproduced = false;
                        println!(
                            "{path}: NOT reproduced — recorded [{}], observed [{}]",
                            outcome.recorded.join("; "),
                            outcome.observed.join("; ")
                        );
                    }
                }
                Err(e) => {
                    all_reproduced = false;
                    eprintln!("{path}: {e}");
                }
            }
        }
        std::process::exit(if all_reproduced { 0 } else { 1 });
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = [
            "table1",
            "table2",
            "example",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig18",
            "alphabeta",
            "prefetch",
            "refine",
            "linkage",
            "policies",
            "schedmetric",
            "deps",
            "multinest",
            "mapping-cost",
            "resilience",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let scale = if test_scale {
        Scale::Test
    } else {
        Scale::Paper
    };
    let platform = PlatformConfig::paper_default();

    // The default-platform runs are shared by table2 / fig10 / fig11 /
    // fig18; compute them lazily, at most once.
    let mut default_runs: Option<Vec<cachemap_bench::AppResults>> = None;
    let needs_default = ["table2", "fig10", "fig11", "fig18"];
    let mut get_runs = |scale: Scale, platform: &PlatformConfig| {
        if default_runs.is_none() {
            eprintln!("[running default-platform suite: 8 apps × 4 versions …]");
            default_runs = Some(experiments::default_runs(scale, platform));
        }
        default_runs.clone().unwrap()
    };
    let _ = needs_default;

    for exp in &wanted {
        match exp.as_str() {
            "table1" => println!("{}", experiments::table1(&platform)),
            "table2" => {
                let runs = get_runs(scale, &platform);
                emit(&[experiments::table2(&runs, scale)]);
            }
            "example" => println!("{}", worked_example()),
            "fig10" => {
                let runs = get_runs(scale, &platform);
                emit(&experiments::fig10(&runs));
            }
            "fig11" => {
                let runs = get_runs(scale, &platform);
                emit(&experiments::fig11(&runs));
            }
            "fig12" => {
                eprintln!("[fig12: topology sweep …]");
                emit(&experiments::fig12(scale, &platform));
            }
            "fig13" => {
                eprintln!("[fig13: cache capacity sweep …]");
                emit(&experiments::fig13(scale, &platform));
            }
            "fig14" => {
                eprintln!("[fig14: chunk size sweep …]");
                emit(&experiments::fig14(scale, &platform));
            }
            "fig18" => {
                let runs = get_runs(scale, &platform);
                emit(&experiments::fig18(&runs));
            }
            "alphabeta" => {
                eprintln!("[alphabeta: scheduling weight sweep …]");
                emit(&[experiments::alphabeta(scale, &platform)]);
            }
            "refine" => {
                eprintln!("[refine: boundary-refinement ablation …]");
                emit(&[experiments::refine_ablation(scale, &platform)]);
            }
            "prefetch" => {
                eprintln!("[prefetch: server read-ahead ablation …]");
                emit(&[experiments::prefetch_ablation(scale, &platform)]);
            }
            "linkage" => {
                eprintln!("[linkage: merge-linkage ablation …]");
                emit(&[experiments::linkage_ablation(scale, &platform)]);
            }
            "policies" => {
                eprintln!("[policies: replacement-policy ablation …]");
                emit(&[experiments::policy_ablation(scale, &platform)]);
            }
            "schedmetric" => {
                eprintln!("[schedmetric: scheduling-metric ablation …]");
                emit(&[experiments::schedule_metric_ablation(scale, &platform)]);
            }
            "deps" => emit(&[experiments::deps_exp(scale, &platform)]),
            "resilience" => {
                eprintln!("[resilience: mid-run I/O-node crash, remap vs failover ...]");
                emit(&[experiments::resilience(scale, &platform)]);
                eprintln!("[resilience-online: supervised epochs, oracle-free detection ...]");
                let online = experiments::resilience_online(scale, &platform);
                for (app, cells) in &online.rows {
                    // cells: unremapped, online, detect latency (ns), remaps.
                    if cells[2] >= 0.0 {
                        println!(
                            "   detection latency {app}: {:.3} ms simulated ({} remap{})",
                            cells[2] / 1e6,
                            cells[3] as u64,
                            if cells[3] as u64 == 1 { "" } else { "s" }
                        );
                    } else {
                        println!("   detection latency {app}: crash never detected");
                    }
                }
                println!();
                emit(&[online]);
                let artifact = cachemap_bench::obs::resilience_observed(scale, &platform);
                let label = artifact.meta.label.clone();
                match cachemap_bench::write_obs_artifact(&label, &artifact) {
                    Ok(path) => println!(
                        "   [obs artifact: {} — inspect with `repro obs`]\n",
                        path.display()
                    ),
                    Err(e) => eprintln!("   [warning: could not write obs artifact: {e}]\n"),
                }
            }
            s if s == "chaos" || s.starts_with("chaos:") => {
                let mut parts = s.splitn(3, ':').skip(1);
                let seed: u64 = parts.next().map_or(42, |p| {
                    p.parse().unwrap_or_else(|_| panic!("bad chaos seed: {p}"))
                });
                let mut cfg = cachemap_bench::chaos::ChaosConfig::with_seed(seed);
                if let Some(p) = parts.next() {
                    cfg.plans = p
                        .parse()
                        .unwrap_or_else(|_| panic!("bad chaos budget: {p}"));
                }
                cfg.scale = scale;
                eprintln!(
                    "[chaos: seed {seed}, {} randomized fault plans, 4 invariants ...]",
                    cfg.plans
                );
                let report = cachemap_bench::chaos::run_campaign(&cfg, |p| {
                    let verdict = if p.violations.is_empty() {
                        "ok".to_string()
                    } else {
                        format!("VIOLATED: {}", p.violations.join("; "))
                    };
                    println!(
                        "  plan {:>3} {:<10} {} event{}{}: {verdict}",
                        p.index,
                        p.app,
                        p.events,
                        if p.events == 1 { "" } else { "s" },
                        if p.transient { " + transients" } else { "" },
                    );
                });
                if report.clean() {
                    println!(
                        "chaos campaign clean: {} plans, zero invariant violations",
                        report.plans.len()
                    );
                } else {
                    for f in &report.failures {
                        eprintln!(
                            "plan {} ({}) failed after shrinking to {} event(s): {}",
                            f.plan_index,
                            f.app,
                            f.shrunk.events.len(),
                            f.violations.join("; ")
                        );
                        if let Some(p) = &f.repro_path {
                            eprintln!(
                                "  repro: {} (replay with `repro chaos-replay {}`)",
                                p.display(),
                                p.display()
                            );
                        }
                    }
                    std::process::exit(1);
                }
            }
            s if s == "obs-export" || s.starts_with("obs-export:") => {
                let name = s.strip_prefix("obs-export:").unwrap_or("contour");
                let app = cachemap_workloads::by_name(name, scale)
                    .unwrap_or_else(|| panic!("unknown app {name}"));
                eprintln!("[obs-export: observed {name} inter-processor+sched run …]");
                let label = format!("{name}/inter-scheduled");
                let (rep, artifact) = cachemap_bench::run_cell_observed(
                    &app,
                    &platform,
                    &cachemap_core::MapperConfig::default(),
                    cachemap_core::Version::InterProcessorScheduled,
                    &label,
                );
                match cachemap_bench::write_obs_artifact(&label, &artifact) {
                    Ok(path) => println!(
                        "wrote {} (exec {:.1} ms — inspect with `repro obs {}`)",
                        path.display(),
                        rep.exec_time_ns as f64 / 1e6,
                        path.display()
                    ),
                    Err(e) => {
                        eprintln!("could not write obs artifact: {e}");
                        std::process::exit(1);
                    }
                }
            }
            s if s.starts_with("detail:") => {
                let name = &s["detail:".len()..];
                let app = cachemap_workloads::by_name(name, scale)
                    .unwrap_or_else(|| panic!("unknown app {name}"));
                println!("== detail — {name} per-version simulator statistics ==");
                for v in cachemap_core::Version::ALL {
                    let rep = cachemap_bench::run_cell(
                        &app,
                        &platform,
                        &cachemap_core::MapperConfig::default(),
                        v,
                    );
                    let mut finishes = rep.per_client_finish_ns.clone();
                    finishes.sort_unstable();
                    let med = finishes[finishes.len() / 2] as f64 / 1e6;
                    let max = *finishes.last().unwrap() as f64 / 1e6;
                    println!(
                        "{:<22} L1 {:5.1}% ({:>8} acc)  L2 {:5.1}%  L3 {:5.1}%  io {:>8.1}ms  exec med/max {:>8.1}/{:<8.1}ms  disk r/w {:>6}/{:<5} seq {:4.1}%",
                        v.label(),
                        rep.l1_miss_rate() * 100.0,
                        rep.l1.accesses(),
                        rep.l2_miss_rate() * 100.0,
                        rep.l3_miss_rate() * 100.0,
                        rep.io_latency_ms() / platform.num_clients as f64,
                        med,
                        max,
                        rep.disk_reads,
                        rep.disk_writes,
                        rep.disk_sequential_fraction * 100.0,
                    );
                }
            }
            "multinest" => emit(&[experiments::multinest(scale, &platform)]),
            "mapping-cost" => emit(&[experiments::mapping_cost(scale, &platform)]),
            s if s.starts_with("analyze:") => {
                // Static quality metrics (Section 3's two rules, measured)
                // for one app: a block split vs the clustered mapping.
                let name = &s["analyze:".len()..];
                let app = cachemap_workloads::by_name(name, scale)
                    .unwrap_or_else(|| panic!("unknown app {name}"));
                let data =
                    cachemap_polyhedral::DataSpace::new(&app.program.arrays, platform.chunk_bytes);
                let tree = cachemap_storage::HierarchyTree::from_config(&platform)
                    .expect("valid platform config");
                println!("== analyze — {name}: replication / affinity capture per level ==");
                let (chunks, _) = cachemap_core::tags::tag_nests(
                    &app.program,
                    &(0..app.program.nests.len()).collect::<Vec<_>>(),
                    &data,
                );
                let k = platform.num_clients;
                let total: usize = chunks.iter().map(|c| c.len()).sum();
                let mut block = cachemap_core::cluster::Distribution {
                    per_client: vec![Vec::new(); k],
                };
                let mut acc = 0usize;
                for (ci, c) in chunks.iter().enumerate() {
                    let client = (acc * k / total.max(1)).min(k - 1);
                    block.per_client[client]
                        .push(cachemap_core::cluster::WorkItem::whole(ci, c.len()));
                    acc += c.len();
                }
                let clustered = cachemap_core::cluster::distribute(
                    &chunks,
                    &tree,
                    &cachemap_core::cluster::ClusterParams::default(),
                );
                for (label, dist) in [
                    ("block (approximates original)", &block),
                    ("inter-processor", &clustered),
                ] {
                    let a = cachemap_core::analysis::analyze(dist, &chunks, &tree);
                    println!("{label}: {} chunks used", a.total_chunks_used);
                    for lvl in &a.levels {
                        println!(
                            "  {:<8?} domains {:>3}  mean footprint {:>8.1}  replication {:>5.2}x  affinity captured {:>5.1}%",
                            lvl.level,
                            lvl.domains,
                            lvl.mean_footprint,
                            lvl.replication_factor,
                            lvl.affinity_captured * 100.0
                        );
                    }
                }
            }
            s if s.starts_with("trace:") => {
                // Reuse-distance profiles per version of one app.
                let name = &s["trace:".len()..];
                let app = cachemap_workloads::by_name(name, scale)
                    .unwrap_or_else(|| panic!("unknown app {name}"));
                let data =
                    cachemap_polyhedral::DataSpace::new(&app.program.arrays, platform.chunk_bytes);
                let tree = cachemap_storage::HierarchyTree::from_config(&platform)
                    .expect("valid platform config");
                let sim = cachemap_storage::Simulator::new(platform.clone())
                    .expect("valid platform config");
                let mapper = cachemap_core::Mapper::paper_defaults();
                println!("== trace — {name}: reuse-distance profiles ==");
                for v in cachemap_core::Version::ALL {
                    let mapped = mapper.map(&app.program, &data, &platform, &tree, v);
                    let (rep, trace) = sim.run_traced(&mapped).expect("well-formed mapped program");
                    let mut private = cachemap_storage::trace::ReuseProfile::default();
                    for c in 0..platform.num_clients {
                        private.merge(&trace.client_reuse_profile(c));
                    }
                    let served = trace.served_histogram();
                    println!(
                        "{:<22} private: mean dist {:>7.1}, predicted L1 miss {:>5.1}% (sim {:>5.1}%)  served L1/L2/L3/disk = {}/{}/{}/{}",
                        v.label(),
                        private.mean_distance().unwrap_or(f64::NAN),
                        private.miss_rate_at_capacity(platform.client_cache_chunks) * 100.0,
                        rep.l1_miss_rate() * 100.0,
                        served.get(&cachemap_storage::trace::ServedBy::L1).unwrap_or(&0),
                        served.get(&cachemap_storage::trace::ServedBy::L2).unwrap_or(&0),
                        served.get(&cachemap_storage::trace::ServedBy::L3).unwrap_or(&0),
                        served.get(&cachemap_storage::trace::ServedBy::Disk).unwrap_or(&0),
                    );
                }
            }
            s if s.starts_with("clients:") => {
                // Per-client composition of the inter-processor mapping:
                // accesses, unique chunks, simulated finish time.
                let name = &s["clients:".len()..];
                let app = cachemap_workloads::by_name(name, scale)
                    .unwrap_or_else(|| panic!("unknown app {name}"));
                let data =
                    cachemap_polyhedral::DataSpace::new(&app.program.arrays, platform.chunk_bytes);
                let tree = cachemap_storage::HierarchyTree::from_config(&platform)
                    .expect("valid platform config");
                let mapper = cachemap_core::Mapper::paper_defaults();
                let mapped = mapper.map(
                    &app.program,
                    &data,
                    &platform,
                    &tree,
                    cachemap_core::Version::InterProcessor,
                );
                let rep = cachemap_storage::Simulator::new(platform.clone())
                    .expect("valid platform config")
                    .run(&mapped)
                    .expect("well-formed mapped program");
                println!("== clients — {name} inter-processor per-client composition ==");
                let mut rows: Vec<(usize, u64, usize, f64)> = (0..platform.num_clients)
                    .map(|c| {
                        let mut uniq = std::collections::HashSet::new();
                        let mut accs = 0u64;
                        for op in &mapped.per_client[c] {
                            if let cachemap_storage::ClientOp::Access { chunk, .. } = op {
                                uniq.insert(*chunk);
                                accs += 1;
                            }
                        }
                        (
                            c,
                            accs,
                            uniq.len(),
                            rep.per_client_finish_ns[c] as f64 / 1e6,
                        )
                    })
                    .collect();
                rows.sort_by(|a, b| b.3.total_cmp(&a.3));
                for (c, accs, uniq, fin) in rows.iter().take(6) {
                    println!("  client {c:>3}: {accs:>6} accesses, {uniq:>5} unique chunks, finish {fin:>8.1} ms");
                }
                println!("  ...");
                for (c, accs, uniq, fin) in rows.iter().rev().take(3).rev() {
                    println!("  client {c:>3}: {accs:>6} accesses, {uniq:>5} unique chunks, finish {fin:>8.1} ms");
                }
                // Access traces of the slowest and fastest client (first
                // distinct chunk per iteration) to inspect coherence.
                for (c, ..) in [*rows.first().unwrap(), *rows.last().unwrap()] {
                    let chunks: Vec<usize> = mapped.per_client[c]
                        .iter()
                        .filter_map(|op| match op {
                            cachemap_storage::ClientOp::Access { chunk, .. } => Some(*chunk),
                            _ => None,
                        })
                        .collect();
                    let firsts: Vec<usize> = chunks.iter().step_by(5).copied().take(30).collect();
                    println!("  trace client {c}: {firsts:?}");
                }
            }
            // Hidden: the idle-fleet holder `serve-open` spawns so its
            // thousands of parked client fds live in their own process.
            s if s.starts_with("idle-hold:") => {
                let rest = &s["idle-hold:".len()..];
                let (addr, count) = rest
                    .rsplit_once(':')
                    .unwrap_or_else(|| panic!("bad idle-hold spec: {rest}"));
                let count: usize = count
                    .parse()
                    .unwrap_or_else(|_| panic!("bad idle-hold count: {count}"));
                if let Err(e) = cachemap_bench::open_loop::idle_hold(addr, count) {
                    eprintln!("idle-hold: {e}");
                    std::process::exit(1);
                }
            }
            s if s == "serve-async" || s.starts_with("serve-async:") => {
                let addr = s.strip_prefix("serve-async:").unwrap_or("127.0.0.1:7412");
                let mut cfg = cachemap_service::ServiceConfig::default();
                if let Ok(t) = std::env::var("CACHEMAP_TRACING") {
                    cfg.tracing = !matches!(t.as_str(), "" | "0" | "off" | "false");
                }
                let service = std::sync::Arc::new(cachemap_service::MapService::start(cfg));
                let server = cachemap_service::aserver::AsyncServer::spawn(
                    addr,
                    std::sync::Arc::clone(&service),
                )
                .unwrap_or_else(|e| {
                    eprintln!("cannot bind {addr}: {e}");
                    std::process::exit(2);
                });
                println!(
                    "async mapping service listening on {} (epoll event loop, batching\n\
                     dispatch; JSON-lines; GET /metrics for Prometheus;\n\
                     send {{\"op\":\"shutdown\",\"id\":0}} to stop)",
                    server.addr()
                );
                server.join();
                service.shutdown();
            }
            s if s == "serve-open" || s.starts_with("serve-open:") => {
                let mut parts = s.splitn(3, ':').skip(1);
                let mut cfg = cachemap_bench::open_loop::OpenLoopConfig::default();
                if let Some(p) = parts.next() {
                    cfg.offered_rps = p
                        .parse()
                        .unwrap_or_else(|_| panic!("bad serve-open rate: {p}"));
                }
                if let Some(p) = parts.next() {
                    cfg.duration_secs = p
                        .parse()
                        .unwrap_or_else(|_| panic!("bad serve-open duration: {p}"));
                }
                if test_scale {
                    cfg = cachemap_bench::open_loop::OpenLoopConfig::smoke(cfg.seed);
                }
                // The parked fleet rides in a child `repro idle-hold`.
                cfg.idle_hold_exe = std::env::current_exe().ok();
                eprintln!(
                    "[serve-open: seed {}, {:.0} req/s offered for {:.0} s, {} conns, \
                     {} idle conns parked …]",
                    cfg.seed, cfg.offered_rps, cfg.duration_secs, cfg.conns, cfg.idle_conns
                );
                let report = cachemap_bench::open_loop::run(&cfg).unwrap_or_else(|e| {
                    eprintln!("serve-open failed: {e}");
                    std::process::exit(1);
                });
                println!("{}", cachemap_bench::open_loop::render(&report));
                match merge_bench_service("open", report.to_json()) {
                    Ok(()) => println!("   [raw numbers: BENCH_service.json, section \"open\"]"),
                    Err(e) => eprintln!("   [warning: could not write BENCH_service.json: {e}]"),
                }
                let scratch = format!("BENCH_service-open-{}", cfg.seed);
                match write_report(&scratch, &report) {
                    Ok(path) => println!("   [scratch copy: {}]", path.display()),
                    Err(e) => eprintln!("   [warning: could not write scratch copy: {e}]"),
                }
                if !report.gates_ok {
                    eprintln!(
                        "serve-open: gates failed: {}",
                        report.gate_failures.join("; ")
                    );
                    std::process::exit(1);
                }
            }
            s if s == "serve" || s.starts_with("serve:") => {
                let addr = s.strip_prefix("serve:").unwrap_or("127.0.0.1:7411");
                let mut cfg = cachemap_service::ServiceConfig::default();
                if let Ok(dir) = std::env::var("CACHEMAP_L2_DIR") {
                    if !dir.is_empty() {
                        cfg.l2_dir = Some(std::path::PathBuf::from(dir));
                    }
                }
                if let Ok(t) = std::env::var("CACHEMAP_TRACING") {
                    cfg.tracing = !matches!(t.as_str(), "" | "0" | "off" | "false");
                }
                if cfg.tracing {
                    println!(
                        "request tracing: on (per-request trace in map responses, \
                         {{\"op\":\"trace\"}} lookups, flight dumps in {})",
                        cfg.flight_dir.display()
                    );
                }
                if let Ok(ttl) = std::env::var("CACHEMAP_L2_TTL_SECS") {
                    cfg.l2_ttl_secs = ttl
                        .parse()
                        .unwrap_or_else(|_| panic!("bad CACHEMAP_L2_TTL_SECS: {ttl}"));
                }
                if let Some(dir) = &cfg.l2_dir {
                    println!(
                        "durable L2 cache: {} (TTL {} s)",
                        dir.display(),
                        cfg.l2_ttl_secs
                    );
                }
                let service = std::sync::Arc::new(cachemap_service::MapService::start(cfg));
                let server =
                    cachemap_service::server::Server::spawn(addr, std::sync::Arc::clone(&service))
                        .unwrap_or_else(|e| {
                            eprintln!("cannot bind {addr}: {e}");
                            std::process::exit(2);
                        });
                println!(
                    "mapping service listening on {} (JSON-lines; GET /metrics for Prometheus;\n\
                     send {{\"op\":\"shutdown\",\"id\":0}} to stop)",
                    server.addr()
                );
                server.join();
                service.shutdown();
            }
            s if s == "advisor" || s.starts_with("advisor:") => {
                let seed: u64 = s.strip_prefix("advisor").map_or(42, |rest| {
                    let rest = rest.strip_prefix(':').unwrap_or("");
                    if rest.is_empty() {
                        42
                    } else {
                        rest.parse()
                            .unwrap_or_else(|_| panic!("bad advisor seed: {rest}"))
                    }
                });
                eprintln!(
                    "[advisor: seed {seed}, {} workloads × 3 levels × {} policies …]",
                    cachemap_bench::advisor::advisor_workloads(scale).len(),
                    cachemap_storage::PolicyKind::ALL.len(),
                );
                let report = cachemap_bench::advisor::run_advisor(scale, &platform, seed);
                println!("{}", cachemap_bench::advisor::render(&report));
                match std::fs::write("BENCH_policies.json", report.to_json().to_string_pretty()) {
                    Ok(()) => println!("   [raw numbers: BENCH_policies.json]"),
                    Err(e) => eprintln!("   [warning: could not write BENCH_policies.json: {e}]"),
                }
                let scratch = format!("BENCH_policies-{seed}");
                match write_report(&scratch, &report) {
                    Ok(path) => println!("   [scratch copy: {}]", path.display()),
                    Err(e) => eprintln!("   [warning: could not write scratch copy: {e}]"),
                }
            }
            s if s == "bench-cluster" || s.starts_with("bench-cluster:") => {
                let seed: u64 = s.strip_prefix("bench-cluster").map_or(42, |rest| {
                    let rest = rest.strip_prefix(':').unwrap_or("");
                    if rest.is_empty() {
                        42
                    } else {
                        rest.parse()
                            .unwrap_or_else(|_| panic!("bad bench-cluster seed: {rest}"))
                    }
                });
                let cfg = if test_scale {
                    cachemap_bench::cluster_bench::ClusterBenchConfig::smoke(seed)
                } else {
                    cachemap_bench::cluster_bench::ClusterBenchConfig::paper_scale(seed)
                };
                eprintln!(
                    "[bench-cluster: seed {seed}, {} chunks on the {}x{}x{} hierarchy, pools {:?} \
                     (set {} to cap workers) …]",
                    cfg.t_steps * cfg.v,
                    cfg.platform.num_clients,
                    cfg.platform.num_io_nodes,
                    cfg.platform.num_storage_nodes,
                    cfg.pool_sizes,
                    cachemap_par::THREADS_ENV,
                );
                let report = cachemap_bench::cluster_bench::run(&cfg);
                println!("{}", report.render());
                match std::fs::write("BENCH_cluster.json", report.to_json().to_string_pretty()) {
                    Ok(()) => println!("   [raw numbers: BENCH_cluster.json]"),
                    Err(e) => eprintln!("   [warning: could not write BENCH_cluster.json: {e}]"),
                }
                let scratch = format!("BENCH_cluster-{seed}");
                match write_report(&scratch, &report) {
                    Ok(path) => println!("   [scratch copy: {}]", path.display()),
                    Err(e) => eprintln!("   [warning: could not write scratch copy: {e}]"),
                }
            }
            s if s == "serve-bench" || s.starts_with("serve-bench:") => {
                let mut parts = s.splitn(3, ':').skip(1);
                let mut cfg = cachemap_bench::serve::ServeBenchConfig::default();
                if let Some(p) = parts.next() {
                    cfg.seed = p
                        .parse()
                        .unwrap_or_else(|_| panic!("bad serve-bench seed: {p}"));
                }
                if let Some(p) = parts.next() {
                    cfg.requests = p
                        .parse()
                        .unwrap_or_else(|_| panic!("bad serve-bench request count: {p}"));
                }
                eprintln!(
                    "[serve-bench: seed {}, {} requests, {} closed-loop clients …]",
                    cfg.seed, cfg.requests, cfg.clients
                );
                let report = cachemap_bench::serve::run(&cfg).unwrap_or_else(|e| {
                    eprintln!("serve-bench failed: {e}");
                    std::process::exit(1);
                });
                println!("{}", cachemap_bench::serve::render(&report));
                match merge_bench_service("serve", report.to_json()) {
                    Ok(()) => println!("   [raw numbers: BENCH_service.json, section \"serve\"]"),
                    Err(e) => eprintln!("   [warning: could not write BENCH_service.json: {e}]"),
                }
                let scratch = format!("BENCH_service-{}", cfg.seed);
                match write_report(&scratch, &report) {
                    Ok(path) => println!("   [scratch copy: {}]", path.display()),
                    Err(e) => eprintln!("   [warning: could not write scratch copy: {e}]"),
                }
            }
            s if s == "serve-storm" || s.starts_with("serve-storm:") => {
                let seed: u64 = s.strip_prefix("serve-storm").map_or(42, |rest| {
                    let rest = rest.strip_prefix(':').unwrap_or("");
                    if rest.is_empty() {
                        42
                    } else {
                        rest.parse()
                            .unwrap_or_else(|_| panic!("bad serve-storm seed: {rest}"))
                    }
                });
                let cfg = if test_scale {
                    cachemap_bench::storm::StormConfig::smoke(seed)
                } else {
                    cachemap_bench::storm::StormConfig {
                        seed,
                        ..cachemap_bench::storm::StormConfig::default()
                    }
                };
                eprintln!(
                    "[serve-storm: seed {seed}, {} barrage connections, {} zipf requests, \
                     kill + torn-tail restart + drain …]",
                    cfg.storm_connections, cfg.zipf_requests
                );
                let report = cachemap_bench::storm::run(&cfg).unwrap_or_else(|e| {
                    eprintln!("serve-storm failed: {e}");
                    std::process::exit(1);
                });
                println!("{}", cachemap_bench::storm::render(&report));
                match merge_bench_service("storm", report.to_json()) {
                    Ok(()) => println!("   [raw numbers: BENCH_service.json, section \"storm\"]"),
                    Err(e) => eprintln!("   [warning: could not write BENCH_service.json: {e}]"),
                }
                let scratch = format!("BENCH_service-storm-{seed}");
                match write_report(&scratch, &report) {
                    Ok(path) => println!("   [scratch copy: {}]", path.display()),
                    Err(e) => eprintln!("   [warning: could not write scratch copy: {e}]"),
                }
            }
            s if s == "router-storm" || s.starts_with("router-storm:") => {
                let seed: u64 = s.strip_prefix("router-storm").map_or(42, |rest| {
                    let rest = rest.strip_prefix(':').unwrap_or("");
                    if rest.is_empty() {
                        42
                    } else {
                        rest.parse()
                            .unwrap_or_else(|_| panic!("bad router-storm seed: {rest}"))
                    }
                });
                let cfg = if test_scale {
                    cachemap_bench::router_storm::RouterStormConfig::smoke(seed)
                } else {
                    cachemap_bench::router_storm::RouterStormConfig {
                        seed,
                        ..cachemap_bench::router_storm::RouterStormConfig::default()
                    }
                };
                eprintln!(
                    "[router-storm: seed {seed}, {} replicas, {} requests, \
                     netfaults + kill + cold restart, run twice …]",
                    cfg.replicas, cfg.requests
                );
                let report = cachemap_bench::router_storm::run(&cfg).unwrap_or_else(|e| {
                    eprintln!("router-storm failed: {e}");
                    std::process::exit(1);
                });
                println!("{}", cachemap_bench::router_storm::render(&report));
                match merge_bench_service("router", report.to_json()) {
                    Ok(()) => println!("   [raw numbers: BENCH_service.json, section \"router\"]"),
                    Err(e) => eprintln!("   [warning: could not write BENCH_service.json: {e}]"),
                }
                let scratch = format!("BENCH_service-router-{seed}");
                match write_report(&scratch, &report) {
                    Ok(path) => println!("   [scratch copy: {}]", path.display()),
                    Err(e) => eprintln!("   [warning: could not write scratch copy: {e}]"),
                }
            }
            other => {
                eprintln!("unknown experiment: {other}\n\n{}", usage());
                std::process::exit(2);
            }
        }
    }
}
