//! The policy advisor: per-(workload, level) eviction-policy sweeps.
//!
//! For every advisor workload (the four adversarial scenarios plus two
//! contrasting Table 2 apps) and every cache level, the advisor runs the
//! full [`PolicyKind::ALL`] sweep *at that level only* — the other two
//! levels stay at the paper's LRU — and picks a winner per cell:
//! highest hit rate at the swept level, ties broken by lower makespan,
//! then by canonical policy order (so exact ties go to LRU).
//!
//! Within one cell the access stream reaching the swept level is
//! identical for every candidate (upstream levels are fixed at LRU), so
//! hit rates are directly comparable. The result is a crossover table —
//! which (workload, level) cells actually want a non-LRU policy — that
//! `repro advisor[:<seed>]` renders and archives as
//! `BENCH_policies.json`. Everything downstream of the seed is a
//! deterministic simulation, so same seed → byte-identical report.

use crate::run_cell;
use cachemap_core::{MapperConfig, Version};
use cachemap_storage::{PlatformConfig, PolicyKind, SimReport};
use cachemap_util::table::TextTable;
use cachemap_util::{Json, ToJson};
use cachemap_workloads::{Application, Scale};

/// Cache-level labels, in `PlatformConfig::policies` index order.
pub const LEVELS: [&str; 3] = ["L1", "L2", "L3"];

/// Advisor report schema version (checked by `validate_report`).
pub const SCHEMA_VERSION: u64 = 1;

/// One simulated (policy) outcome inside a cell.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// The candidate policy at the swept level.
    pub policy: PolicyKind,
    /// Hits at the swept level.
    pub hits: u64,
    /// Misses at the swept level.
    pub misses: u64,
    /// Simulated makespan of the whole run.
    pub exec_time_ns: u64,
}

impl PolicyOutcome {
    /// Hit rate at the swept level in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One (workload, level) cell: all policy outcomes plus the verdict.
#[derive(Debug, Clone)]
pub struct AdvisorCell {
    /// Workload name.
    pub workload: String,
    /// Swept level label (`"L1"`, `"L2"`, `"L3"`).
    pub level: &'static str,
    /// Outcomes in [`PolicyKind::ALL`] order.
    pub outcomes: Vec<PolicyOutcome>,
    /// The winning policy.
    pub winner: PolicyKind,
}

impl AdvisorCell {
    /// The outcome for one policy.
    pub fn outcome(&self, policy: PolicyKind) -> &PolicyOutcome {
        self.outcomes
            .iter()
            .find(|o| o.policy == policy)
            .expect("all policies present")
    }

    /// Winner hit rate minus LRU hit rate (positive ⇒ LRU loses).
    pub fn margin_vs_lru(&self) -> f64 {
        self.outcome(self.winner).hit_rate() - self.outcome(PolicyKind::Lru).hit_rate()
    }
}

/// The full advisor sweep result.
#[derive(Debug, Clone)]
pub struct AdvisorReport {
    /// Seed recorded in the artifact (the simulation itself is
    /// deterministic; the seed keys archives and CI comparisons).
    pub seed: u64,
    /// `"paper"` or `"test"`.
    pub scale: &'static str,
    /// All (workload, level) cells, workload-major in advisor order.
    pub cells: Vec<AdvisorCell>,
}

impl AdvisorReport {
    /// Cells whose winner strictly beats LRU on hit rate.
    pub fn crossovers(&self) -> Vec<&AdvisorCell> {
        self.cells
            .iter()
            .filter(|c| c.winner != PolicyKind::Lru && c.margin_vs_lru() > 0.0)
            .collect()
    }
}

/// The advisor workload set: the four adversarial scenarios plus two
/// contrasting suite apps (reuse-heavy `hf`, streaming `contour`).
pub fn advisor_workloads(scale: Scale) -> Vec<Application> {
    let mut apps = cachemap_workloads::scenarios(scale);
    apps.push(cachemap_workloads::by_name("hf", scale).expect("suite app"));
    apps.push(cachemap_workloads::by_name("contour", scale).expect("suite app"));
    apps
}

/// The platform the advisor sweeps on. At test scale the workload
/// datasets shrink ~4× (see `Scale::dim`), so cache capacities shrink
/// with them to preserve the paper's cache-pressure regime — otherwise
/// every policy ties and the sweep is vacuous.
pub fn advisor_platform(scale: Scale, base: &PlatformConfig) -> PlatformConfig {
    match scale {
        Scale::Paper => base.clone(),
        Scale::Test => base.clone().with_cache_chunks(
            (base.client_cache_chunks / 4).max(2),
            (base.io_cache_chunks / 4).max(4),
            (base.storage_cache_chunks / 4).max(8),
        ),
    }
}

/// Runs the full advisor sweep: `workloads × levels × policies` cells,
/// fanned out over the worker pool in deterministic order.
pub fn run_advisor(scale: Scale, base: &PlatformConfig, seed: u64) -> AdvisorReport {
    run_advisor_on(scale, base, seed, advisor_workloads(scale))
}

/// [`run_advisor`] restricted to an explicit workload list (tests and
/// partial sweeps).
pub fn run_advisor_on(
    scale: Scale,
    base: &PlatformConfig,
    seed: u64,
    apps: Vec<Application>,
) -> AdvisorReport {
    let platform = advisor_platform(scale, base);
    let cfg = MapperConfig::default();

    let mut cells: Vec<(usize, usize, PolicyKind)> = Vec::new();
    for ai in 0..apps.len() {
        for level in 0..LEVELS.len() {
            for policy in PolicyKind::ALL {
                cells.push((ai, level, policy));
            }
        }
    }

    let results: Vec<(usize, usize, PolicyKind, SimReport)> =
        cachemap_par::Pool::from_env().map(&cells, |_, &(ai, level, policy)| {
            let mut p = platform.clone().with_policy(PolicyKind::Lru);
            p.policies[level] = policy;
            let rep = run_cell(&apps[ai], &p, &cfg, Version::InterProcessor);
            (ai, level, policy, rep)
        });

    let mut out = Vec::new();
    for (ai, app) in apps.iter().enumerate() {
        for (level, level_label) in LEVELS.iter().enumerate() {
            let mut outcomes = Vec::new();
            for policy in PolicyKind::ALL {
                let rep = &results
                    .iter()
                    .find(|r| r.0 == ai && r.1 == level && r.2 == policy)
                    .expect("cell simulated")
                    .3;
                let hm = [&rep.l1, &rep.l2, &rep.l3][level];
                outcomes.push(PolicyOutcome {
                    policy,
                    hits: hm.hits,
                    misses: hm.misses,
                    exec_time_ns: rep.exec_time_ns,
                });
            }
            // Highest hit rate, then lowest makespan, then ALL order.
            // Hit rates within a cell share a denominator, so compare
            // the integer hit counts (no float ties to worry about).
            let winner = PolicyKind::ALL
                .iter()
                .copied()
                .enumerate()
                .max_by(|&(ia, a), &(ib, b)| {
                    let (oa, ob) = (
                        outcomes.iter().find(|o| o.policy == a).expect("present"),
                        outcomes.iter().find(|o| o.policy == b).expect("present"),
                    );
                    oa.hits
                        .cmp(&ob.hits)
                        .then(ob.exec_time_ns.cmp(&oa.exec_time_ns))
                        // Exact tie: earlier in ALL order wins, so a cell
                        // where no policy separates reports LRU, not
                        // whichever policy happens to sort last.
                        .then(ib.cmp(&ia))
                })
                .map(|(_, p)| p)
                .expect("non-empty");
            out.push(AdvisorCell {
                workload: app.name.to_string(),
                level: level_label,
                outcomes,
                winner,
            });
        }
    }
    AdvisorReport {
        seed,
        scale: match scale {
            Scale::Paper => "paper",
            Scale::Test => "test",
        },
        cells: out,
    }
}

/// Renders the advisor result as the harness's standard text block.
pub fn render(report: &AdvisorReport) -> String {
    let mut out = format!(
        "== advisor — per-(workload, level) policy sweep (seed {}, {} scale) ==\n",
        report.seed, report.scale
    );
    let mut columns = vec!["workload/level".to_string()];
    columns.extend(PolicyKind::ALL.iter().map(|p| p.label().to_string()));
    columns.push("winner".into());
    let mut t = TextTable::new(columns.iter().map(String::as_str));
    for cell in &report.cells {
        let mut row = vec![format!("{}/{}", cell.workload, cell.level)];
        for p in PolicyKind::ALL {
            row.push(format!("{:.1}", cell.outcome(p).hit_rate() * 100.0));
        }
        row.push(cell.winner.label().to_string());
        t.row(row);
    }
    out.push_str(&t.render());
    let crossovers = report.crossovers();
    if crossovers.is_empty() {
        out.push_str("   no crossovers: LRU wins or ties every cell\n");
    } else {
        out.push_str("   crossovers (non-LRU strictly beats LRU on hit rate):\n");
        for c in crossovers {
            out.push_str(&format!(
                "   - {}/{}: {} beats lru by {:+.1} pp\n",
                c.workload,
                c.level,
                c.winner.label(),
                c.margin_vs_lru() * 100.0
            ));
        }
    }
    out
}

impl ToJson for AdvisorReport {
    fn to_json(&self) -> Json {
        let policy_order: Vec<Json> = PolicyKind::ALL
            .iter()
            .map(|p| Json::Str(p.label().into()))
            .collect();
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|c| {
                let outcomes: Vec<Json> = c
                    .outcomes
                    .iter()
                    .map(|o| {
                        Json::object(vec![
                            ("policy", Json::Str(o.policy.label().into())),
                            ("hits", Json::UInt(o.hits)),
                            ("misses", Json::UInt(o.misses)),
                            ("hit_rate", Json::Float(o.hit_rate())),
                            ("exec_time_ns", Json::UInt(o.exec_time_ns)),
                        ])
                    })
                    .collect();
                Json::object(vec![
                    ("workload", Json::Str(c.workload.clone())),
                    ("level", Json::Str(c.level.into())),
                    ("outcomes", Json::Array(outcomes)),
                    ("winner", Json::Str(c.winner.label().into())),
                    ("margin_vs_lru", Json::Float(c.margin_vs_lru())),
                ])
            })
            .collect();
        let crossovers: Vec<Json> = self
            .crossovers()
            .iter()
            .map(|c| {
                Json::object(vec![
                    ("workload", Json::Str(c.workload.clone())),
                    ("level", Json::Str(c.level.into())),
                    ("winner", Json::Str(c.winner.label().into())),
                    ("margin_vs_lru", Json::Float(c.margin_vs_lru())),
                ])
            })
            .collect();
        Json::object(vec![
            ("experiment", Json::Str("advisor".into())),
            ("schema_version", Json::UInt(SCHEMA_VERSION)),
            ("seed", Json::UInt(self.seed)),
            ("scale", Json::Str(self.scale.into())),
            ("policy_order", Json::Array(policy_order)),
            ("cells", Json::Array(cells)),
            ("crossovers", Json::Array(crossovers)),
        ])
    }
}

fn field<'a>(v: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("{ctx}: missing `{key}`"))
}

/// Validates a parsed `BENCH_policies.json` against the advisor schema
/// (used by `repro advisor-check` and the CI smoke step).
pub fn validate_report(v: &Json) -> Result<(), String> {
    if field(v, "experiment", "report")?.as_str() != Some("advisor") {
        return Err("report: `experiment` must be \"advisor\"".into());
    }
    if field(v, "schema_version", "report")?.as_u64() != Some(SCHEMA_VERSION) {
        return Err(format!("report: `schema_version` must be {SCHEMA_VERSION}"));
    }
    field(v, "seed", "report")?
        .as_u64()
        .ok_or("report: `seed` must be an unsigned integer")?;
    let scale = field(v, "scale", "report")?
        .as_str()
        .ok_or("report: `scale` must be a string")?;
    if scale != "paper" && scale != "test" {
        return Err(format!("report: unknown scale `{scale}`"));
    }
    let order = field(v, "policy_order", "report")?
        .as_array()
        .ok_or("report: `policy_order` must be an array")?;
    let expected: Vec<&str> = PolicyKind::ALL.iter().map(|p| p.label()).collect();
    let got: Vec<&str> = order.iter().filter_map(|j| j.as_str()).collect();
    if got != expected {
        return Err(format!("report: policy_order {got:?} != {expected:?}"));
    }
    let cells = field(v, "cells", "report")?
        .as_array()
        .ok_or("report: `cells` must be an array")?;
    if cells.is_empty() {
        return Err("report: `cells` is empty".into());
    }
    for (i, cell) in cells.iter().enumerate() {
        let ctx = format!("cells[{i}]");
        field(cell, "workload", &ctx)?
            .as_str()
            .ok_or(format!("{ctx}: `workload` must be a string"))?;
        let level = field(cell, "level", &ctx)?
            .as_str()
            .ok_or(format!("{ctx}: `level` must be a string"))?;
        if !LEVELS.contains(&level) {
            return Err(format!("{ctx}: unknown level `{level}`"));
        }
        let outcomes = field(cell, "outcomes", &ctx)?
            .as_array()
            .ok_or(format!("{ctx}: `outcomes` must be an array"))?;
        if outcomes.len() != PolicyKind::ALL.len() {
            return Err(format!(
                "{ctx}: expected {} outcomes, got {}",
                PolicyKind::ALL.len(),
                outcomes.len()
            ));
        }
        for (o, want) in outcomes.iter().zip(&expected) {
            let octx = format!("{ctx}.outcomes[{want}]");
            if field(o, "policy", &octx)?.as_str() != Some(want) {
                return Err(format!("{octx}: outcomes out of canonical order"));
            }
            field(o, "hits", &octx)?
                .as_u64()
                .ok_or(format!("{octx}: `hits` must be an unsigned integer"))?;
            field(o, "misses", &octx)?
                .as_u64()
                .ok_or(format!("{octx}: `misses` must be an unsigned integer"))?;
            let rate = field(o, "hit_rate", &octx)?
                .as_f64()
                .ok_or(format!("{octx}: `hit_rate` must be a number"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("{octx}: hit_rate {rate} outside [0, 1]"));
            }
            let exec = field(o, "exec_time_ns", &octx)?.as_u64().ok_or(format!(
                "{octx}: `exec_time_ns` must be an unsigned integer"
            ))?;
            if exec == 0 {
                return Err(format!("{octx}: exec_time_ns must be positive"));
            }
        }
        let winner = field(cell, "winner", &ctx)?
            .as_str()
            .ok_or(format!("{ctx}: `winner` must be a string"))?;
        if !expected.contains(&winner) {
            return Err(format!("{ctx}: unknown winner `{winner}`"));
        }
        field(cell, "margin_vs_lru", &ctx)?
            .as_f64()
            .ok_or(format!("{ctx}: `margin_vs_lru` must be a number"))?;
    }
    let crossovers = field(v, "crossovers", "report")?
        .as_array()
        .ok_or("report: `crossovers` must be an array")?;
    for (i, c) in crossovers.iter().enumerate() {
        let ctx = format!("crossovers[{i}]");
        let winner = field(c, "winner", &ctx)?
            .as_str()
            .ok_or(format!("{ctx}: `winner` must be a string"))?;
        if winner == "lru" {
            return Err(format!("{ctx}: an LRU win is not a crossover"));
        }
        let margin = field(c, "margin_vs_lru", &ctx)?
            .as_f64()
            .ok_or(format!("{ctx}: `margin_vs_lru` must be a number"))?;
        if margin <= 0.0 {
            return Err(format!("{ctx}: margin {margin} not positive"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance scenario: SLRU's protected segment rides out the
    /// scan storms that flush LRU, so at the client level scan_storm
    /// prefers SLRU — strictly more L1 hits on the identical stream.
    #[test]
    fn scan_storm_prefers_slru_over_lru_at_l1() {
        let scale = Scale::Test;
        let platform = advisor_platform(scale, &PlatformConfig::paper_default());
        let app = cachemap_workloads::scenario_by_name("scan_storm", scale).expect("scenario");
        let cfg = MapperConfig::default();
        let lru = run_cell(&app, &platform, &cfg, Version::InterProcessor);
        let slru = run_cell(
            &app,
            &platform.clone().with_level_policies(
                PolicyKind::Slru,
                PolicyKind::Lru,
                PolicyKind::Lru,
            ),
            &cfg,
            Version::InterProcessor,
        );
        assert_eq!(
            lru.l1.accesses(),
            slru.l1.accesses(),
            "same stream reaches L1 either way"
        );
        assert!(
            slru.l1.hits > lru.l1.hits,
            "SLRU must out-hit LRU under scan storms: slru {} vs lru {} of {}",
            slru.l1.hits,
            lru.l1.hits,
            lru.l1.accesses()
        );
    }

    /// One-workload advisor end to end: schema-valid JSON and the
    /// scan-storm crossover. The full-sweep double-run byte-determinism
    /// gate lives in CI (`repro --test-scale advisor:42` twice, diffed),
    /// where the release build keeps it cheap; in debug this test stays
    /// at one workload so the workspace suite stays fast.
    #[test]
    fn mini_advisor_is_schema_valid_with_a_crossover() {
        let platform = PlatformConfig::paper_default();
        let scan = cachemap_workloads::scenario_by_name("scan_storm", Scale::Test).expect("app");
        let a = run_advisor_on(Scale::Test, &platform, 42, vec![scan]);
        let ja = a.to_json().to_string_pretty();
        validate_report(&cachemap_util::json::parse(&ja).expect("valid json")).expect("schema");
        assert_eq!(a.cells.len(), LEVELS.len());
        assert!(
            !a.crossovers().is_empty(),
            "scan_storm must prefer a non-LRU policy at some level"
        );
        // The rendered table mentions the workload and the crossovers.
        let text = render(&a);
        assert!(text.contains("scan_storm/L1"));
        assert!(text.contains("crossover"));
    }

    #[test]
    fn validate_report_rejects_malformed_inputs() {
        let good = run_advisor_fixture();
        validate_report(&good).expect("fixture is valid");

        let mut missing = good.clone();
        if let Json::Object(pairs) = &mut missing {
            pairs.retain(|(k, _)| k != "cells");
        }
        assert!(validate_report(&missing).is_err());

        let mut bad_winner = good.clone();
        if let Json::Object(pairs) = &mut bad_winner {
            for (k, v) in pairs.iter_mut() {
                if k == "cells" {
                    if let Json::Array(cells) = v {
                        if let Json::Object(cell) = &mut cells[0] {
                            for (ck, cv) in cell.iter_mut() {
                                if ck == "winner" {
                                    *cv = Json::Str("mru".into());
                                }
                            }
                        }
                    }
                }
            }
        }
        assert!(validate_report(&bad_winner).is_err());

        let mut lru_crossover = good;
        if let Json::Object(pairs) = &mut lru_crossover {
            for (k, v) in pairs.iter_mut() {
                if k == "crossovers" {
                    *v = Json::Array(vec![Json::object(vec![
                        ("workload", Json::Str("x".into())),
                        ("level", Json::Str("L1".into())),
                        ("winner", Json::Str("lru".into())),
                        ("margin_vs_lru", Json::Float(0.1)),
                    ])]);
                }
            }
        }
        assert!(validate_report(&lru_crossover).is_err());
    }

    /// A tiny hand-built valid report (no simulation).
    fn run_advisor_fixture() -> Json {
        let report = AdvisorReport {
            seed: 7,
            scale: "test",
            cells: vec![AdvisorCell {
                workload: "scan_storm".into(),
                level: "L1",
                outcomes: PolicyKind::ALL
                    .iter()
                    .map(|&policy| PolicyOutcome {
                        policy,
                        hits: if policy == PolicyKind::Slru { 90 } else { 50 },
                        misses: 10,
                        exec_time_ns: 1000,
                    })
                    .collect(),
                winner: PolicyKind::Slru,
            }],
        };
        report.to_json()
    }
}
