//! Robustness storm for the mapping service (`repro serve-storm`).
//!
//! Where `serve-bench` measures steady-state SLOs, this harness attacks
//! the failure paths of the two-tier cache stack, in four phases over
//! one live TCP server + crash-durable L2 directory:
//!
//! 1. **Hot-fingerprint barrage** — many connections fire the *same*
//!    request simultaneously at a cold service. Exactly **one** reply
//!    may report `cached: false` (single pipeline run, asserted both on
//!    the wire and against the service's miss counter); every reply
//!    must be byte-identical to the cold oracle.
//! 2. **Pre-kill zipf campaign** — closed-loop clients replay a seeded
//!    zipf mix; mid-campaign the service is **killed** (crash
//!    simulation: workers stop, nothing is flushed) and every
//!    still-queued request must come back with a typed error.
//! 3. **Torn-tail restart** — the tail of the active L2 segment is
//!    truncated (a partial final write), the service is restarted on
//!    the same directory, and the zipf campaign re-runs. Recovery must
//!    succeed and the warm hit rate must reach at least 80% of the
//!    pre-kill rate.
//! 4. **Drain under load** — with clients still hammering, a graceful
//!    shutdown runs; every in-flight and queued request is answered
//!    (mapping or typed error — zero untyped drops), and the drain
//!    duration lands in the stats.

use crate::serve::{build_templates, drive_client, scrape_metrics, validate_prometheus, Zipf};
use cachemap_service::server::Server;
use cachemap_service::{MapService, ServiceConfig};
use cachemap_util::{json, Json, ToJson};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Storm-campaign knobs.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// RNG seed for the zipf phases.
    pub seed: u64,
    /// Simultaneous connections in the hot-fingerprint barrage.
    pub storm_connections: usize,
    /// Requests per zipf phase (pre-kill and post-restart).
    pub zipf_requests: usize,
    /// Closed-loop client threads per zipf phase.
    pub clients: usize,
    /// Workload applications in the template pool (`0` = all eight).
    pub apps: usize,
    /// L2 cache directory; `None` uses a per-run temp directory that is
    /// removed afterwards.
    pub l2_dir: Option<PathBuf>,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            seed: 42,
            storm_connections: 64,
            zipf_requests: 800,
            clients: 8,
            apps: 0,
            l2_dir: None,
        }
    }
}

impl StormConfig {
    /// A small configuration for CI smoke runs and debug-build tests.
    pub fn smoke(seed: u64) -> Self {
        StormConfig {
            seed,
            storm_connections: 16,
            zipf_requests: 120,
            clients: 4,
            apps: 2,
            l2_dir: None,
        }
    }
}

/// Aggregated storm results.
#[derive(Debug, Clone)]
pub struct StormReport {
    /// The seed the campaign ran with.
    pub seed: u64,
    /// Connections in the hot-fingerprint barrage.
    pub storm_connections: usize,
    /// Replies in the barrage that reported `cached: false` (must be 1).
    pub storm_computes: u64,
    /// Requests that attached to the in-flight computation.
    pub storm_coalesced: u64,
    /// Barrage replies whose trace carried a `follower` coalesce span —
    /// must equal `storm_coalesced`: every waiter can point at the
    /// in-flight computation it waited on.
    pub storm_follower_spans: u64,
    /// `flight-slow_request-*.json` dumps left behind by the campaign.
    pub slow_dumps: u64,
    /// `flight-recovery-*.json` dumps from the torn-tail restart.
    pub recovery_dumps: u64,
    /// `flight-drain-*.json` dumps from the graceful shutdown.
    pub drain_dumps: u64,
    /// Successful zipf replies before the kill.
    pub prekill_served: u64,
    /// Typed rejections during the kill window.
    pub prekill_rejected: u64,
    /// Cache hit rate over the pre-kill zipf phase.
    pub prekill_hit_rate: f64,
    /// Bytes torn off the active L2 segment before restart.
    pub torn_bytes: u64,
    /// L2 index entries recovered at restart.
    pub recovered_entries: u64,
    /// Cache hit rate over the post-restart zipf phase.
    pub postrestart_hit_rate: f64,
    /// `postrestart_hit_rate / prekill_hit_rate` (the ≥ 0.8 gate).
    pub warm_ratio: f64,
    /// Requests issued during the drain-under-load phase.
    pub drain_requests: u64,
    /// Of those, served with a mapping.
    pub drain_served: u64,
    /// Of those, rejected with a typed error code.
    pub drain_rejected_typed: u64,
    /// Duration of the graceful drain in seconds.
    pub drain_seconds: f64,
    /// Campaign wall-clock (ms).
    pub elapsed_ms: f64,
    /// Scraped `/metrics` passed the Prometheus schema check.
    pub metrics_schema_ok: bool,
}

impl ToJson for StormReport {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("bench", Json::Str("serve-storm".into())),
            ("seed", Json::UInt(self.seed)),
            (
                "storm_connections",
                Json::UInt(self.storm_connections as u64),
            ),
            ("storm_computes", Json::UInt(self.storm_computes)),
            ("storm_coalesced", Json::UInt(self.storm_coalesced)),
            (
                "storm_follower_spans",
                Json::UInt(self.storm_follower_spans),
            ),
            ("slow_dumps", Json::UInt(self.slow_dumps)),
            ("recovery_dumps", Json::UInt(self.recovery_dumps)),
            ("drain_dumps", Json::UInt(self.drain_dumps)),
            ("prekill_served", Json::UInt(self.prekill_served)),
            ("prekill_rejected", Json::UInt(self.prekill_rejected)),
            ("prekill_hit_rate", Json::Float(self.prekill_hit_rate)),
            ("torn_bytes", Json::UInt(self.torn_bytes)),
            ("recovered_entries", Json::UInt(self.recovered_entries)),
            (
                "postrestart_hit_rate",
                Json::Float(self.postrestart_hit_rate),
            ),
            ("warm_ratio", Json::Float(self.warm_ratio)),
            ("drain_requests", Json::UInt(self.drain_requests)),
            ("drain_served", Json::UInt(self.drain_served)),
            (
                "drain_rejected_typed",
                Json::UInt(self.drain_rejected_typed),
            ),
            ("drain_seconds", Json::Float(self.drain_seconds)),
            ("elapsed_ms", Json::Float(self.elapsed_ms)),
            ("metrics_schema_ok", Json::Bool(self.metrics_schema_ok)),
        ])
    }
}

fn service_config(dir: &Path) -> ServiceConfig {
    ServiceConfig {
        workers: 4,
        l2_dir: Some(dir.to_path_buf()),
        drain_limit_ms: 10_000,
        // Tracing on with a 1 ms slow-request threshold: the storm is
        // built out of anomalies, so it must leave flight dumps behind
        // (slow coalesce waits, the torn-tail recovery, the drain).
        tracing: true,
        slow_trace_ms: 1,
        flight_dir: dir.join("flight"),
        ..ServiceConfig::default()
    }
}

/// Counts `flight-<trigger>-*.json` dumps in the flight directory.
fn count_dumps(dir: &Path, trigger: &str) -> u64 {
    let prefix = format!("flight-{trigger}-");
    std::fs::read_dir(dir.join("flight"))
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter(|e| {
                    e.file_name()
                        .to_str()
                        .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".json"))
                })
                .count() as u64
        })
        .unwrap_or(0)
}

/// One barrage shooter: connect, wait for the barrier, fire the hot
/// line once, parse the reply. Returns `(cached, follower)` — whether
/// the reply came from cache, and whether its trace carries a coalesce
/// span tagged `follower` (the request waited on the leader's compute).
fn fire_hot(
    addr: std::net::SocketAddr,
    barrier: &Barrier,
    line: &str,
    cold_bytes: &str,
) -> Result<(bool, bool), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let mut reader = BufReader::new(stream);
    barrier.wait();
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| format!("write: {e}"))?;
    let mut reply = String::new();
    reader
        .read_line(&mut reply)
        .map_err(|e| format!("read: {e}"))?;
    let v = json::parse(&reply).map_err(|e| format!("bad reply json: {e}"))?;
    if v.get("status").and_then(Json::as_str) != Some("ok") {
        return Err(format!("storm reply was not ok: {}", reply.trim()));
    }
    let got = v
        .get("mapping")
        .ok_or("ok reply without a mapping")?
        .to_string_compact();
    if got != cold_bytes {
        return Err("storm mapping diverged from the cold oracle".into());
    }
    let follower = v
        .get("trace")
        .and_then(|t| t.get("stages"))
        .and_then(Json::as_array)
        .is_some_and(|stages| {
            stages.iter().any(|s| {
                s.get("name").and_then(Json::as_str) == Some("coalesce")
                    && s.get("role").and_then(Json::as_str) == Some("follower")
            })
        });
    Ok((v.get("cached") == Some(&Json::Bool(true)), follower))
}

/// The newest `seg-*.log` file in the L2 directory.
fn last_segment(dir: &Path) -> Option<PathBuf> {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".log"))
        })
        .collect();
    segs.sort();
    segs.pop()
}

struct ZipfOutcome {
    served: u64,
    rejected: u64,
    hit_rate: f64,
    rejections: BTreeMap<String, u64>,
}

/// Answered-request total so far (all cache tiers + computes + waits).
fn answered(svc: &MapService) -> u64 {
    let s = svc.stats();
    s.hits + s.l2_hits + s.misses + s.coalesced
}

/// Runs one closed-loop zipf campaign; optionally kills `victim` once
/// roughly half the phase's requests have been answered.
fn zipf_phase(
    addr: std::net::SocketAddr,
    templates: &[crate::serve::Template],
    cfg: &StormConfig,
    phase_seed: u64,
    victim: Option<&Arc<MapService>>,
) -> Result<ZipfOutcome, String> {
    let zipf = Zipf::new(templates.len());
    let clients = cfg.clients.max(1);
    let killer = victim.map(|svc| {
        let svc = Arc::clone(svc);
        let half = (cfg.zipf_requests / 2) as u64;
        let baseline = answered(&svc);
        std::thread::spawn(move || {
            // Kill mid-campaign (or after a hard 10s backstop, so a
            // stall cannot hang the harness).
            let deadline = Instant::now() + Duration::from_secs(10);
            while answered(&svc) - baseline < half && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            svc.kill();
        })
    });

    // Scoped threads (not the shared pool): the kill must be able to
    // land while clients are mid-flight.
    let tallies: Vec<Result<crate::serve::ClientTally, String>> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..clients)
            .map(|c| {
                let share =
                    cfg.zipf_requests / clients + usize::from(c < cfg.zipf_requests % clients);
                let seed = phase_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (c as u64 + 1);
                let zipf = &zipf;
                s.spawn(move || drive_client(addr, templates, zipf, seed, share))
            })
            .collect();
        joins
            .into_iter()
            .map(|j| {
                j.join()
                    .unwrap_or_else(|_| Err("zipf client panicked".into()))
            })
            .collect()
    });
    if let Some(k) = killer {
        let _ = k.join();
    }

    let mut served = 0u64;
    let mut hits = 0u64;
    let mut rejections: BTreeMap<String, u64> = BTreeMap::new();
    for tally in tallies {
        let tally = tally?;
        served += tally.hits + tally.computed;
        hits += tally.hits;
        for (code, n) in tally.rejections {
            *rejections.entry(code).or_insert(0) += n;
        }
    }
    let rejected: u64 = rejections.values().sum();
    // Zero untyped drops: every request in the phase is accounted for.
    if (served + rejected) as usize != cfg.zipf_requests {
        return Err(format!(
            "phase dropped requests silently: {served} served + {rejected} rejected != {}",
            cfg.zipf_requests
        ));
    }
    let hit_rate = if served == 0 {
        0.0
    } else {
        hits as f64 / served as f64
    };
    Ok(ZipfOutcome {
        served,
        rejected,
        hit_rate,
        rejections,
    })
}

/// Runs the full storm. Panics (via `Err`) on any violated invariant.
pub fn run(cfg: &StormConfig) -> Result<StormReport, String> {
    let t0 = Instant::now();
    let own_dir = cfg.l2_dir.is_none();
    let dir = cfg.l2_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "cachemap-storm-{}-{}",
            cfg.seed,
            std::process::id()
        ))
    });
    if own_dir {
        let _ = std::fs::remove_dir_all(&dir);
    }
    let templates = build_templates(cfg.apps);

    // ---- Phase 1 + 2: cold service, hot barrage, then zipf + kill.
    let service = Arc::new(MapService::start(service_config(&dir)));
    let server =
        Server::spawn("127.0.0.1:0", Arc::clone(&service)).map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();

    let shooters = cfg.storm_connections.max(2);
    let barrier = Arc::new(Barrier::new(shooters));
    let hot_line = templates[0].line.clone();
    let hot_cold = templates[0].cold_bytes.clone();
    let storm_joins: Vec<_> = (0..shooters)
        .map(|_| {
            let b = Arc::clone(&barrier);
            let line = hot_line.clone();
            let cold = hot_cold.clone();
            std::thread::spawn(move || fire_hot(addr, &b, &line, &cold))
        })
        .collect();
    let mut storm_computes = 0u64;
    let mut storm_follower_spans = 0u64;
    for j in storm_joins {
        let (cached, follower) = j.join().map_err(|_| "storm shooter panicked")??;
        if !cached {
            storm_computes += 1;
        }
        storm_follower_spans += u64::from(follower);
    }
    let storm_stats = service.stats();
    if storm_computes != 1 {
        return Err(format!(
            "hot barrage: expected exactly 1 computed reply, saw {storm_computes}"
        ));
    }
    if storm_stats.misses != 1 {
        return Err(format!(
            "hot barrage: {} pipeline runs for one fingerprint",
            storm_stats.misses
        ));
    }
    // Attribution invariant: every coalesced waiter's trace points at
    // the computation it waited on — a `follower` span per attach.
    if storm_follower_spans != storm_stats.coalesced {
        return Err(format!(
            "hot barrage: {} follower spans but {} coalesce attaches",
            storm_follower_spans, storm_stats.coalesced
        ));
    }

    let prekill = zipf_phase(addr, &templates, cfg, cfg.seed, Some(&service))?;
    // The kill must not leave untyped wreckage: everything rejected
    // during the window carried a code (zipf_phase already summed it).
    server.shutdown();
    drop(server);
    drop(service);

    // ---- Phase 3: tear the tail of the last segment, restart, re-run.
    let torn_bytes = match last_segment(&dir) {
        Some(seg) => {
            let len = std::fs::metadata(&seg)
                .map_err(|e| format!("stat: {e}"))?
                .len();
            let cut = len.min(23); // mid-record: forces tail truncation
            std::fs::OpenOptions::new()
                .write(true)
                .open(&seg)
                .and_then(|f| f.set_len(len - cut))
                .map_err(|e| format!("tear: {e}"))?;
            cut
        }
        None => 0,
    };
    let service2 = Arc::new(MapService::start(service_config(&dir)));
    let recovered_entries = service2.l2_entries().unwrap_or(0) as u64;
    let server2 =
        Server::spawn("127.0.0.1:0", Arc::clone(&service2)).map_err(|e| format!("re-bind: {e}"))?;
    let addr2 = server2.addr();

    let post = zipf_phase(addr2, &templates, cfg, cfg.seed ^ 0x5a5a, None)?;
    let warm_ratio = if prekill.hit_rate > 0.0 {
        post.hit_rate / prekill.hit_rate
    } else {
        1.0
    };
    if prekill.hit_rate > 0.0 && warm_ratio < 0.8 {
        return Err(format!(
            "warm restart regressed: post-restart hit rate {:.3} < 80% of pre-kill {:.3}",
            post.hit_rate, prekill.hit_rate
        ));
    }

    // ---- Phase 4: graceful drain under live load.
    let drain_requests = (cfg.zipf_requests / 2).max(cfg.clients.max(1)) as u64;
    let drainer = {
        let svc = Arc::clone(&service2);
        let at_least = drain_requests / 4;
        let baseline = answered(&svc);
        std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(10);
            while answered(&svc) - baseline < at_least && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            svc.shutdown();
        })
    };
    let drain_cfg = StormConfig {
        zipf_requests: drain_requests as usize,
        ..cfg.clone()
    };
    let drain = zipf_phase(addr2, &templates, &drain_cfg, cfg.seed ^ 0xd3a1, None)?;
    let _ = drainer.join();
    for code in drain.rejections.keys() {
        if code.is_empty() {
            return Err("drain produced an empty rejection code".into());
        }
    }
    let drain_seconds = service2.stats().drain_seconds;
    if drain_seconds <= 0.0 {
        return Err("graceful drain did not record its duration".into());
    }

    let metrics = scrape_metrics(addr2)?;
    validate_prometheus(&metrics)?;
    for required in [
        "cachemap_service_coalesced_total",
        "cachemap_service_l2_hits_total",
        "cachemap_service_l2_promotions_total",
        "cachemap_service_drain_seconds",
    ] {
        if !metrics.contains(required) {
            return Err(format!("metrics scrape is missing {required}"));
        }
    }

    server2.shutdown();
    drop(server2);
    drop(service2);

    // Anomaly forensics: the campaign must leave flight dumps behind —
    // slow coalesce waits during the phases, the torn-tail recovery at
    // restart, and the graceful drain.
    let slow_dumps = count_dumps(&dir, "slow_request");
    let recovery_dumps = count_dumps(&dir, "recovery");
    let drain_dumps = count_dumps(&dir, "drain");
    if slow_dumps == 0 {
        return Err("no slow_request flight dump despite coalesce waits over 1 ms".into());
    }
    if torn_bytes > 0 && recovery_dumps == 0 {
        return Err("torn-tail restart left no recovery flight dump".into());
    }
    if drain_dumps == 0 {
        return Err("graceful drain left no drain flight dump".into());
    }
    if own_dir {
        let _ = std::fs::remove_dir_all(&dir);
    }

    Ok(StormReport {
        seed: cfg.seed,
        storm_connections: shooters,
        storm_computes,
        storm_coalesced: storm_stats.coalesced,
        storm_follower_spans,
        slow_dumps,
        recovery_dumps,
        drain_dumps,
        prekill_served: prekill.served,
        prekill_rejected: prekill.rejected,
        prekill_hit_rate: prekill.hit_rate,
        torn_bytes,
        recovered_entries,
        postrestart_hit_rate: post.hit_rate,
        warm_ratio,
        drain_requests,
        drain_served: drain.served,
        drain_rejected_typed: drain.rejected,
        drain_seconds,
        elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
        metrics_schema_ok: true,
    })
}

/// Renders the human-readable storm summary.
pub fn render(report: &StormReport) -> String {
    format!(
        "== serve-storm — seed {} ==\n\
         barrage       {:>8} connections, {} compute, {} coalesced\n\
         attribution   {:>8} follower spans (one per coalesce attach)\n\
         pre-kill      {:>8} served + {} typed rejections (hit rate {:.1}%)\n\
         torn tail     {:>8} bytes cut; {} L2 entries recovered\n\
         post-restart  hit rate {:.1}%  (warm ratio {:.2}, gate ≥ 0.80)\n\
         drain         {:>8} requests: {} served, {} typed, 0 untyped drops\n\
         drain time    {:>8.3} s\n\
         flight dumps  {:>8} slow_request, {} recovery, {} drain\n\
         wall clock    {:>8.1} ms\n\
         metrics       Prometheus schema OK",
        report.seed,
        report.storm_connections,
        report.storm_computes,
        report.storm_coalesced,
        report.storm_follower_spans,
        report.prekill_served,
        report.prekill_rejected,
        report.prekill_hit_rate * 100.0,
        report.torn_bytes,
        report.recovered_entries,
        report.postrestart_hit_rate * 100.0,
        report.warm_ratio,
        report.drain_requests,
        report.drain_served,
        report.drain_rejected_typed,
        report.drain_seconds,
        report.slow_dumps,
        report.recovery_dumps,
        report.drain_dumps,
        report.elapsed_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_storm_meets_all_invariants() {
        let report = run(&StormConfig::smoke(7)).unwrap();
        assert_eq!(report.storm_computes, 1);
        assert_eq!(report.storm_follower_spans, report.storm_coalesced);
        assert!(report.warm_ratio >= 0.8);
        assert!(report.drain_seconds > 0.0);
        assert!(report.slow_dumps >= 1);
        assert!(report.drain_dumps >= 1);
        assert!(report.torn_bytes == 0 || report.recovery_dumps >= 1);
        assert!(report.metrics_schema_ok);
    }
}
