//! Observability plumbing for the harness: capture one fully observed
//! run (mapper phase profile + engine metric series), export it as a
//! `*.obs.json` artifact, and render artifacts for the `repro obs`
//! subcommand.

use cachemap_core::{Mapper, MapperConfig, Version};
use cachemap_obs::{
    ArtifactMeta, EngineObs, Level, ObsArtifact, Profile, Recorder, SCHEMA_VERSION,
};
use cachemap_polyhedral::DataSpace;
use cachemap_storage::{HierarchyTree, PlatformConfig, SimReport, Simulator};
use cachemap_util::table::TextTable;
use cachemap_util::ToJson;
use cachemap_workloads::{Application, Scale};

/// How many simulated-time buckets the exporter aims for per run.
const TARGET_BUCKETS: u64 = 48;

/// Picks a bucket width giving roughly [`TARGET_BUCKETS`] buckets over a
/// run of `exec_ns`, rounded up to a 1-2-5 × 10ᵏ value so bucket edges
/// land on readable timestamps.
pub fn pick_bucket_ns(exec_ns: u64) -> u64 {
    let raw = (exec_ns / TARGET_BUCKETS).max(1);
    let mut step = 1u64;
    loop {
        for m in [1, 2, 5] {
            let cand = step.saturating_mul(m);
            if cand >= raw {
                return cand;
            }
        }
        step = step.saturating_mul(10);
    }
}

fn artifact_meta(platform: &PlatformConfig, label: &str) -> ArtifactMeta {
    let policy = |i: usize| platform.policies[i].label().to_string();
    ArtifactMeta {
        schema_version: SCHEMA_VERSION,
        label: label.to_string(),
        clients: platform.num_clients,
        io_nodes: platform.num_io_nodes,
        storage_nodes: platform.num_storage_nodes,
        chunk_bytes: platform.chunk_bytes,
        policies: [policy(0), policy(1), policy(2)],
    }
}

/// Runs one (application, version, platform) cell with full
/// observability: the mapping pipeline records a phase [`Profile`] and
/// the engine run records per-node time series. The simulation runs
/// twice — once unobserved to learn the execution time (which sizes the
/// buckets via [`pick_bucket_ns`]), once recorded; both runs produce the
/// same report since a recorder never disturbs the simulation.
pub fn run_cell_observed(
    app: &Application,
    platform: &PlatformConfig,
    mapper_cfg: &MapperConfig,
    version: Version,
    label: &str,
) -> (SimReport, ObsArtifact) {
    let data = DataSpace::new(&app.program.arrays, platform.chunk_bytes);
    let tree = HierarchyTree::from_config(platform).expect("valid platform config");
    let mapper = Mapper::new(*mapper_cfg);
    let mut prof = Profile::enabled();
    let mapped = mapper.map_profiled(&app.program, &data, platform, &tree, version, &mut prof);
    let sim = Simulator::new(platform.clone()).expect("valid platform config");
    let sizing = sim.run(&mapped).expect("well-formed mapped program");
    let mut rec = Recorder::enabled(pick_bucket_ns(sizing.exec_time_ns));
    let rep = sim
        .run_observed(&mapped, &mut rec)
        .expect("well-formed mapped program");
    let artifact = ObsArtifact {
        meta: artifact_meta(platform, label),
        mapper: Some(prof),
        engine: rec.finish(),
    };
    (rep, artifact)
}

/// The observed companion of the `resilience` experiment, for the first
/// app of the suite: the *unremapped* inter-processor mapping runs under
/// the same crash plan with a recorder (so the `io_crash` and `failover`
/// events and the post-crash steady state land on the timeline), while
/// the failure-aware mapping is re-derived with a profile (so the
/// `remap` span shows up in the phase profile).
pub fn resilience_observed(scale: Scale, platform: &PlatformConfig) -> ObsArtifact {
    use cachemap_storage::{FaultEvent, FaultPlan};

    let app = cachemap_workloads::suite(scale)
        .into_iter()
        .next()
        .expect("non-empty suite");
    let tree = HierarchyTree::from_config(platform).expect("valid platform config");
    let mapper = Mapper::new(MapperConfig::default());
    let crashed_ios: Vec<usize> = (0..platform.num_io_nodes)
        .filter(|&io| tree.storage_of_io(io) == 0)
        .collect();
    let failed: Vec<usize> = (0..platform.num_clients)
        .filter(|&c| crashed_ios.contains(&tree.io_of_client(c)))
        .collect();

    let data = DataSpace::new(&app.program.arrays, platform.chunk_bytes);
    let inter = mapper.map(
        &app.program,
        &data,
        platform,
        &tree,
        Version::InterProcessor,
    );
    let mut prof = Profile::enabled();
    let _remapped = mapper
        .map_with_failures_profiled(
            &app.program,
            &data,
            platform,
            &tree,
            Version::InterProcessor,
            &failed,
            &mut prof,
        )
        .expect("valid failed-client set");

    // Same schedule as experiments::resilience: crash a third of the way
    // into the fault-free run.
    let clean = Simulator::new(platform.clone())
        .expect("valid platform config")
        .run(&inter)
        .expect("well-formed mapped program");
    let at_ns = (clean.exec_time_ns / 3).max(1);
    let mut plan = FaultPlan::new();
    for &io in &crashed_ios {
        plan = plan.with_event(FaultEvent::IoNodeCrash { io, at_ns });
    }
    let sim = Simulator::new(platform.clone())
        .expect("valid platform config")
        .with_fault_plan(plan)
        .expect("plan fits the platform");
    let degraded = sim.run(&inter).expect("well-formed mapped program");
    let mut rec = Recorder::enabled(pick_bucket_ns(degraded.exec_time_ns));
    let _ = sim
        .run_observed(&inter, &mut rec)
        .expect("well-formed mapped program");

    ObsArtifact {
        meta: artifact_meta(platform, &format!("resilience/{}", app.name)),
        mapper: Some(prof),
        engine: rec.finish(),
    }
}

/// Writes an artifact as pretty JSON under `reports/<name>.obs.json`
/// (slashes in `name` become dashes).
pub fn write_obs_artifact(
    name: &str,
    artifact: &ObsArtifact,
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("reports");
    std::fs::create_dir_all(dir)?;
    let safe: String = name
        .chars()
        .map(|c| if c == '/' || c == '\\' { '-' } else { c })
        .collect();
    let path = dir.join(format!("{safe}.obs.json"));
    std::fs::write(&path, artifact.to_json().to_string_pretty())?;
    Ok(path)
}

const SPARK_RAMP: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// A fixed-width activity sparkline: one glyph per bucket `0..=max_b`,
/// scaled against the series' own peak.
fn sparkline(series: &std::collections::BTreeMap<u64, u64>, max_b: u64) -> String {
    let peak = series.values().copied().max().unwrap_or(0);
    (0..=max_b)
        .map(|b| {
            let v = series.get(&b).copied().unwrap_or(0);
            if peak == 0 || v == 0 {
                SPARK_RAMP[0]
            } else {
                // Nonzero activity always renders at least the lowest bar.
                let idx = 1 + (v.saturating_sub(1) * 7 / peak.max(1)) as usize;
                SPARK_RAMP[idx.min(8)]
            }
        })
        .collect()
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e6)
}

fn render_level_table(out: &mut String, obs: &EngineObs, level: Level, max_b: u64) {
    let nodes: Vec<_> = obs.nodes.iter().filter(|((l, _), _)| *l == level).collect();
    if nodes.is_empty() {
        return;
    }
    out.push_str(&format!(
        "-- {} nodes ({} buckets × {} ms) --\n",
        level.label(),
        max_b + 1,
        obs.bucket_ns as f64 / 1e6
    ));
    let mut t = TextTable::new([
        "node", "hits", "misses", "evict", "wback", "queue ms", "activity",
    ]);
    for ((_, node), series) in nodes {
        let mut total = cachemap_obs::BucketStats::default();
        for s in series.values() {
            total.add(s);
        }
        let activity: std::collections::BTreeMap<u64, u64> = series
            .iter()
            .map(|(&b, s)| (b, s.hits + s.misses))
            .collect();
        t.row([
            format!("{node}"),
            format!("{}", total.hits),
            format!("{}", total.misses),
            format!("{}", total.evictions),
            format!("{}", total.writebacks),
            fmt_ms(total.queue_ns),
            format!("|{}|", sparkline(&activity, max_b)),
        ]);
    }
    out.push_str(&t.render());
}

/// Renders one artifact as the `repro obs` text report: run metadata,
/// the mapper phase profile, per-level per-node time-series tables,
/// per-client timelines, the event log, the busiest links, and the
/// hottest chunks.
pub fn render_artifact(artifact: &ObsArtifact) -> String {
    let meta = &artifact.meta;
    let mut out = format!(
        "== obs — {} ==\nplatform: {} clients / {} I/O nodes / {} storage nodes, {} B chunks\n\
         eviction policies: L1 {} / L2 {} / L3 {}\n",
        meta.label,
        meta.clients,
        meta.io_nodes,
        meta.storage_nodes,
        meta.chunk_bytes,
        meta.policies[0],
        meta.policies[1],
        meta.policies[2]
    );

    match &artifact.mapper {
        Some(prof) if !prof.is_empty() => {
            out.push_str("\n-- mapper phase profile --\n");
            out.push_str(&prof.render());
        }
        _ => out.push_str("\n-- mapper phase profile: (not captured) --\n"),
    }

    let Some(obs) = &artifact.engine else {
        out.push_str("\n-- engine series: (not captured) --\n");
        return out;
    };
    let max_b = obs.max_bucket();
    out.push('\n');
    for level in [Level::L1, Level::L2, Level::L3] {
        render_level_table(&mut out, obs, level, max_b);
    }

    if !obs.clients.is_empty() {
        out.push_str("-- client timelines (I/O activity per bucket) --\n");
        let mut t = TextTable::new(["client", "accesses", "io ms", "compute ms", "activity"]);
        for (&c, series) in &obs.clients {
            let total = obs.client_totals(c);
            let activity: std::collections::BTreeMap<u64, u64> =
                series.iter().map(|(&b, s)| (b, s.io_ns)).collect();
            t.row([
                format!("{c}"),
                format!("{}", total.accesses),
                fmt_ms(total.io_ns),
                fmt_ms(total.compute_ns),
                format!("|{}|", sparkline(&activity, max_b)),
            ]);
        }
        out.push_str(&t.render());
    }

    if !obs.events.is_empty() {
        out.push_str("-- events --\n");
        const SHOWN: usize = 40;
        for e in obs.events.iter().take(SHOWN) {
            out.push_str(&format!(
                "  t={:>10} ms  {:<14} subject {}\n",
                fmt_ms(e.t_ns),
                e.kind,
                e.subject
            ));
        }
        if obs.events.len() > SHOWN {
            out.push_str(&format!("  (+{} more)\n", obs.events.len() - SHOWN));
        }
    }

    if !obs.links.is_empty() {
        out.push_str("-- busiest links --\n");
        let mut links: Vec<_> = obs.links.iter().collect();
        links.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        let mut t = TextTable::new(["hop", "src", "dst", "bytes"]);
        for ((hop, src, dst), bytes) in links.into_iter().take(10) {
            t.row([
                hop.label().to_string(),
                format!("{src}"),
                format!("{dst}"),
                format!("{bytes}"),
            ]);
        }
        out.push_str(&t.render());
    }

    if !obs.hot_chunks.is_empty() {
        out.push_str("-- hottest chunks --\n");
        let mut t = TextTable::new(["chunk", "accesses"]);
        for (chunk, count) in obs.hot_chunks.iter().take(16) {
            t.row([format!("{chunk}"), format!("{count}")]);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_width_is_a_readable_step() {
        assert_eq!(pick_bucket_ns(0), 1);
        assert_eq!(pick_bucket_ns(48), 1);
        assert_eq!(pick_bucket_ns(480), 10);
        assert_eq!(pick_bucket_ns(48 * 3), 5);
        assert_eq!(pick_bucket_ns(48_000_000), 1_000_000);
        for exec in [1u64, 1000, 123_456_789, u64::MAX] {
            let b = pick_bucket_ns(exec);
            assert!(b >= 1);
            // 1-2-5 × 10^k shape.
            let mut x = b;
            while x.is_multiple_of(10) {
                x /= 10;
            }
            assert!(matches!(x, 1 | 2 | 5), "bucket {b} not 1-2-5-shaped");
        }
    }

    #[test]
    fn observed_cell_matches_plain_report_and_renders() {
        let app = cachemap_workloads::by_name("contour", Scale::Test).unwrap();
        let platform = PlatformConfig::paper_default().with_cache_chunks(8, 8, 8);
        let cfg = MapperConfig::default();
        let plain = crate::run_cell(&app, &platform, &cfg, Version::InterProcessorScheduled);
        let (rep, artifact) = run_cell_observed(
            &app,
            &platform,
            &cfg,
            Version::InterProcessorScheduled,
            "contour/inter-scheduled",
        );
        assert_eq!(
            rep.to_json().to_string_compact(),
            plain.to_json().to_string_compact(),
            "recording must not disturb the simulation"
        );
        let text = render_artifact(&artifact);
        assert!(text.contains("mapper phase profile"));
        assert!(text.contains("l1 nodes"));
        assert!(text.contains("l2 nodes"));
        assert!(text.contains("l3 nodes"));
        assert!(text.contains("client timelines"));
        assert!(text.contains("hottest chunks"));
        // Round-trips through JSON.
        let json = artifact.to_json().to_string_pretty();
        let back = ObsArtifact::parse(&json).expect("round-trip");
        assert_eq!(render_artifact(&back), text);
        cachemap_obs::validate_artifact(&cachemap_util::json::parse(&json).unwrap())
            .expect("schema-valid artifact");
    }

    #[test]
    fn resilience_artifact_shows_failover_and_remap() {
        let platform = PlatformConfig::paper_default().with_cache_chunks(8, 8, 8);
        let artifact = resilience_observed(Scale::Test, &platform);
        let obs = artifact.engine.as_ref().expect("engine series captured");
        assert!(
            obs.events.iter().any(|e| e.kind == "io_crash"),
            "crash events on the timeline"
        );
        assert!(
            obs.events.iter().any(|e| e.kind == "failover"),
            "failover events on the timeline"
        );
        let prof = artifact.mapper.as_ref().expect("mapper profile captured");
        let map = prof.root_named("map").expect("map span");
        assert!(
            map.children.iter().any(|&i| prof.node(i).name == "remap"),
            "remap span in the profile"
        );
        let text = render_artifact(&artifact);
        assert!(text.contains("io_crash"));
        assert!(text.contains("resilience/"));
    }
}
