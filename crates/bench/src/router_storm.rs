//! Replica-fleet failover storm (`repro router-storm`).
//!
//! Where `serve-storm` attacks a single service's cache stack, this
//! harness attacks the **router**: a 3-replica fleet behind the
//! consistent-hash ring, driven by a seeded zipf campaign over a
//! simulated clock while a `NetFaultPlan` injects refusals, stalls,
//! slow replies, and mid-frame truncations on every backend edge.
//!
//! Mid-campaign the primary replica of the hottest template is
//! **killed** (at `N/3`) and later **restarted cold** (at `2N/3`).
//! The run must demonstrate, deterministically:
//!
//! * **Zero untyped outcomes** — every request either returns a
//!   mapping that is byte-identical to the cold-pipeline oracle, or a
//!   typed [`ServiceError`](cachemap_service::ServiceError) code.
//! * **Breaker lifecycle** — the victim's circuit breaker is observed
//!   walking `open → half-open → closed` across the restart, and ends
//!   the campaign closed.
//! * **Health detection** — the health checks declare the victim
//!   `down` while it is dead and the router stops calling it.
//! * **Hit-rate recovery** — the post-restart window's cache hit rate
//!   reaches at least 70% of the pre-kill window's.
//! * **Bounded tail latency** — the virtual (clock-advance) p99 per
//!   request stays under a generous cap even through the kill window.
//! * **Reproducibility** — the whole campaign runs **twice** on fresh
//!   fleets and an FNV digest over every per-request outcome (index,
//!   outcome code, cached flag, virtual latency) must match
//!   byte-for-byte.
//!
//! A `flight-replica_down-*.json` dump must be left behind by the
//! router's flight recorder when the victim goes down.

use crate::serve::{build_templates, Zipf};
use cachemap_service::netfault::FaultedBackend;
use cachemap_service::proto::{parse_request, Request};
use cachemap_service::router::{Backend, Clock, LocalBackend, Router};
use cachemap_service::{
    HealthConfig, HealthState, MapRequest, MapService, NetFaultPlan, RouterConfig, ServiceConfig,
};
use cachemap_util::check::Gen;
use cachemap_util::ring::fnv1a;
use cachemap_util::{BreakerConfig, BreakerState, Json, ToJson};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Router-storm knobs.
#[derive(Debug, Clone)]
pub struct RouterStormConfig {
    /// RNG seed for the zipf schedule, the netfault streams, and the
    /// router's jittered backoff.
    pub seed: u64,
    /// Fleet size.
    pub replicas: usize,
    /// Requests in the campaign (kill at `N/3`, restart at `2N/3`).
    pub requests: usize,
    /// Workload applications in the template pool (`0` = all eight).
    pub apps: usize,
    /// Flight-dump directory; `None` uses a per-run temp directory
    /// that is removed afterwards.
    pub flight_dir: Option<PathBuf>,
}

impl Default for RouterStormConfig {
    fn default() -> Self {
        RouterStormConfig {
            seed: 42,
            replicas: 3,
            requests: 2400,
            apps: 0,
            flight_dir: None,
        }
    }
}

impl RouterStormConfig {
    /// A small configuration for CI smoke runs and debug-build tests.
    pub fn smoke(seed: u64) -> Self {
        RouterStormConfig {
            seed,
            replicas: 3,
            requests: 360,
            apps: 2,
            flight_dir: None,
        }
    }
}

/// Aggregated router-storm results.
#[derive(Debug, Clone)]
pub struct RouterStormReport {
    /// The seed the campaign ran with.
    pub seed: u64,
    /// Requests per campaign run.
    pub requests: usize,
    /// Templates in the zipf pool.
    pub templates: usize,
    /// Fleet size.
    pub replicas: usize,
    /// Name of the killed replica (primary of the hottest template).
    pub victim: String,
    /// Request index at which the victim was killed.
    pub kill_index: u64,
    /// Request index at which the victim was restarted (cold).
    pub restart_index: u64,
    /// Requests answered with a mapping.
    pub ok: u64,
    /// Of those, answered by a non-primary replica.
    pub ok_failover: u64,
    /// Typed errors returned to the driver, by code.
    pub typed_errors: BTreeMap<String, u64>,
    /// Untyped outcomes (must be 0 — the router's core invariant).
    pub untyped: u64,
    /// Served mappings that did not match the cold-pipeline oracle
    /// bytes (must be 0).
    pub oracle_mismatches: u64,
    /// Retry attempts after transport-level failures.
    pub retries: u64,
    /// Ring failovers after an exhausted per-replica retry budget.
    pub failovers: u64,
    /// Candidates skipped because health said down.
    pub shed_down: u64,
    /// Candidates skipped because the breaker was open.
    pub shed_open: u64,
    /// Cache hit rate over the pre-kill window.
    pub prekill_hit_rate: f64,
    /// Cache hit rate over the post-restart window.
    pub postrestart_hit_rate: f64,
    /// `postrestart_hit_rate / prekill_hit_rate` (the ≥ 0.70 gate).
    pub warm_ratio: f64,
    /// The victim's breaker walked `open → half-open → closed` and
    /// ended the campaign closed.
    pub breaker_cycle: bool,
    /// Health ticks during which the victim was reported down.
    pub victim_down_ticks: u64,
    /// p99 of per-request virtual latency (backoff + injected stalls),
    /// in milliseconds of simulated time.
    pub virtual_p99_ms: f64,
    /// `flight-replica_down-*.json` dumps left by the first run.
    pub flight_dumps: u64,
    /// FNV-1a digest over every per-request outcome of the first run.
    pub digest: String,
    /// Both runs produced identical digests.
    pub reproducible: bool,
    /// Campaign wall-clock (ms), both runs.
    pub elapsed_ms: f64,
}

impl ToJson for RouterStormReport {
    fn to_json(&self) -> Json {
        let typed = Json::Object(
            self.typed_errors
                .iter()
                .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                .collect(),
        );
        Json::object(vec![
            ("bench", Json::Str("router-storm".into())),
            ("seed", Json::UInt(self.seed)),
            ("requests", Json::UInt(self.requests as u64)),
            ("templates", Json::UInt(self.templates as u64)),
            ("replicas", Json::UInt(self.replicas as u64)),
            ("victim", Json::Str(self.victim.clone())),
            ("kill_index", Json::UInt(self.kill_index)),
            ("restart_index", Json::UInt(self.restart_index)),
            ("ok", Json::UInt(self.ok)),
            ("ok_failover", Json::UInt(self.ok_failover)),
            ("typed_errors", typed),
            ("untyped", Json::UInt(self.untyped)),
            ("oracle_mismatches", Json::UInt(self.oracle_mismatches)),
            ("retries", Json::UInt(self.retries)),
            ("failovers", Json::UInt(self.failovers)),
            ("shed_down", Json::UInt(self.shed_down)),
            ("shed_open", Json::UInt(self.shed_open)),
            ("prekill_hit_rate", Json::Float(self.prekill_hit_rate)),
            (
                "postrestart_hit_rate",
                Json::Float(self.postrestart_hit_rate),
            ),
            ("warm_ratio", Json::Float(self.warm_ratio)),
            ("breaker_cycle", Json::Bool(self.breaker_cycle)),
            ("victim_down_ticks", Json::UInt(self.victim_down_ticks)),
            ("virtual_p99_ms", Json::Float(self.virtual_p99_ms)),
            ("flight_dumps", Json::UInt(self.flight_dumps)),
            ("digest", Json::Str(self.digest.clone())),
            ("reproducible", Json::Bool(self.reproducible)),
            ("elapsed_ms", Json::Float(self.elapsed_ms)),
        ])
    }
}

/// One zipf template: the parsed request plus its cold-oracle bytes.
struct StormTemplate {
    request: MapRequest,
    cold_bytes: String,
}

/// Health ticks fire every this many requests of simulated time.
const HEALTH_TICK_EVERY: usize = 8;
/// Simulated time advanced per request (1 ms).
const TICK_NS: u64 = 1_000_000;

fn fleet_service() -> Arc<MapService> {
    Arc::new(MapService::start(ServiceConfig {
        workers: 2,
        queue_limit: 64,
        cache_shards: 4,
        cache_capacity_per_shard: 64,
        flight_capacity: 0,
        ..ServiceConfig::default()
    }))
}

fn fault_plan(seed: u64) -> NetFaultPlan {
    NetFaultPlan {
        seed,
        refuse_ppm: 4_000,
        stall_ppm: 2_000,
        slow_ppm: 6_000,
        truncate_ppm: 1_000,
        stall_ns: 2_000_000,
        slow_ns: 500_000,
    }
}

fn router_config(seed: u64, flight_dir: &Path) -> RouterConfig {
    RouterConfig {
        vnodes: 64,
        retries: 2,
        backoff_base_ns: 1_000_000,
        backoff_cap_ns: 8_000_000,
        seed,
        // The breaker must trip on the few victim-bound requests that
        // land between the kill and the health checks declaring the
        // victim down (after which the router stops calling it): a
        // short window with 3 attempts/request trips within ~2 bad
        // requests.
        breaker: BreakerConfig {
            window: 8,
            min_samples: 4,
            failure_ratio: 0.5,
            open_ns: 40 * TICK_NS,
        },
        health: HealthConfig {
            suspect_after: 1,
            down_after: 3,
            up_after: 1,
            ping_deadline_ms: 100,
        },
        health_interval_ms: 0,
        flight_capacity: 64,
        flight_dir: flight_dir.to_path_buf(),
    }
}

/// Everything one campaign run produces that the invariants inspect.
struct CampaignOutcome {
    digest: u64,
    victim_name: String,
    ok: u64,
    ok_failover: u64,
    typed_errors: BTreeMap<String, u64>,
    oracle_mismatches: u64,
    retries: u64,
    failovers: u64,
    shed_down: u64,
    shed_open: u64,
    prekill_hit_rate: f64,
    postrestart_hit_rate: f64,
    breaker_cycle: bool,
    victim_down_ticks: u64,
    victim_final_health: HealthState,
    virtual_p99_ms: f64,
}

/// Runs one full campaign on a fresh fleet and returns its outcome.
fn drive(
    cfg: &RouterStormConfig,
    templates: &[StormTemplate],
    schedule: &[usize],
    flight_dir: &Path,
) -> Result<CampaignOutcome, String> {
    let clock = Arc::new(Clock::simulated());
    let locals: Vec<Arc<LocalBackend>> = (0..cfg.replicas)
        .map(|i| Arc::new(LocalBackend::new(format!("replica-{i}"), fleet_service())))
        .collect();
    let backends: Vec<Box<dyn Backend>> = locals
        .iter()
        .enumerate()
        .map(|(i, l)| {
            Box::new(FaultedBackend::new(
                Box::new(Arc::clone(l)),
                fault_plan(cfg.seed),
                i,
                Arc::clone(&clock),
            )) as Box<dyn Backend>
        })
        .collect();
    let router = Router::new(
        backends,
        Arc::clone(&clock),
        router_config(cfg.seed, flight_dir),
    );

    let hottest = &templates[0].request;
    let victim = router.primary_of(cachemap_core::wire::fingerprint(
        &hottest.program,
        &hottest.platform,
        &hottest.mapper,
        hottest.version,
    ));
    let kill_at = schedule.len() / 3;
    let restart_at = 2 * schedule.len() / 3;

    let mut digest_buf = String::new();
    let mut virtual_us: Vec<u64> = Vec::with_capacity(schedule.len());
    let mut oracle_mismatches = 0u64;
    let mut victim_down_ticks = 0u64;
    // (served, hits) for the pre-kill and post-restart windows.
    let mut pre = (0u64, 0u64);
    let mut post = (0u64, 0u64);

    for (i, &t) in schedule.iter().enumerate() {
        if i == kill_at {
            locals[victim].kill();
        }
        if i == restart_at {
            locals[victim].restart(fleet_service());
        }
        if i % HEALTH_TICK_EVERY == 0 {
            router.health_tick();
            if router.health_state(victim) == HealthState::Down {
                victim_down_ticks += 1;
            }
        }
        clock.advance_ns(TICK_NS);

        let mut req = templates[t].request.clone();
        req.id = i as u64;
        let v0 = clock.now_ns();
        let outcome = router.submit(req);
        let v_elapsed = clock.now_ns() - v0;
        virtual_us.push(v_elapsed / 1_000);

        match outcome {
            Ok(resp) => {
                let window = if i < kill_at {
                    Some(&mut pre)
                } else if i >= restart_at {
                    Some(&mut post)
                } else {
                    None
                };
                if let Some(w) = window {
                    w.0 += 1;
                    if resp.cached {
                        w.1 += 1;
                    }
                }
                if resp.mapping.to_json().to_string_compact() != templates[t].cold_bytes {
                    oracle_mismatches += 1;
                }
                let _ = writeln!(digest_buf, "{i} ok {} {v_elapsed}", u8::from(resp.cached));
            }
            Err(e) => {
                let _ = writeln!(digest_buf, "{i} err {} {v_elapsed}", e.code());
            }
        }
    }

    // Let the breaker finish its half-open probe if the campaign ended
    // mid-recovery: a few extra ticks of hottest-template traffic.
    for extra in 0..(2 * HEALTH_TICK_EVERY) {
        if router.breaker_state(victim) == BreakerState::Closed
            && router.health_state(victim) == HealthState::Healthy
        {
            break;
        }
        router.health_tick();
        clock.advance_ns(TICK_NS);
        let mut req = templates[0].request.clone();
        req.id = (schedule.len() + extra) as u64;
        let _ = router.submit(req);
    }

    let hist = router.breaker_history(victim);
    let breaker_cycle = hist.windows(3).any(|w| {
        w == [
            BreakerState::Open,
            BreakerState::HalfOpen,
            BreakerState::Closed,
        ]
    }) && router.breaker_state(victim) == BreakerState::Closed;

    virtual_us.sort_unstable();
    let p99 = virtual_us
        .get(
            virtual_us
                .len()
                .saturating_sub(1)
                .min(virtual_us.len() * 99 / 100),
        )
        .copied()
        .unwrap_or(0);

    let stats = router.stats();
    let rate = |(served, hits): (u64, u64)| {
        if served == 0 {
            0.0
        } else {
            hits as f64 / served as f64
        }
    };
    Ok(CampaignOutcome {
        digest: fnv1a(digest_buf.as_bytes()),
        victim_name: router.replica_name(victim).to_string(),
        ok: stats.ok,
        ok_failover: stats.ok_failover,
        typed_errors: stats.errors.clone(),
        oracle_mismatches,
        retries: stats.retries,
        failovers: stats.failovers,
        shed_down: stats.shed_down,
        shed_open: stats.shed_open,
        prekill_hit_rate: rate(pre),
        postrestart_hit_rate: rate(post),
        breaker_cycle,
        victim_down_ticks,
        victim_final_health: router.health_state(victim),
        virtual_p99_ms: p99 as f64 / 1_000.0,
    })
}

/// Counts `flight-replica_down-*.json` dumps under `dir`.
fn count_replica_down_dumps(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter(|e| {
                    e.file_name().to_str().is_some_and(|n| {
                        n.starts_with("flight-replica_down-") && n.ends_with(".json")
                    })
                })
                .count() as u64
        })
        .unwrap_or(0)
}

/// Runs the full storm — twice, for the reproducibility gate. Returns
/// `Err` on any violated invariant.
pub fn run(cfg: &RouterStormConfig) -> Result<RouterStormReport, String> {
    if cfg.replicas < 2 {
        return Err("router-storm needs at least 2 replicas".into());
    }
    let t0 = Instant::now();
    let own_dir = cfg.flight_dir.is_none();
    let dir = cfg.flight_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "cachemap-router-storm-{}-{}",
            cfg.seed,
            std::process::id()
        ))
    });
    if own_dir {
        let _ = std::fs::remove_dir_all(&dir);
    }

    let templates: Vec<StormTemplate> = build_templates(cfg.apps)
        .into_iter()
        .map(|t| {
            let req = match parse_request(&t.line) {
                Ok(Request::Map(req)) => *req,
                _ => return Err("template line did not parse as a map request".to_string()),
            };
            Ok(StormTemplate {
                request: req,
                cold_bytes: t.cold_bytes,
            })
        })
        .collect::<Result<_, String>>()?;

    // One seeded zipf schedule shared by both runs.
    let zipf = Zipf::new(templates.len());
    let mut g = Gen::from_seed(cfg.seed);
    let schedule: Vec<usize> = (0..cfg.requests).map(|_| zipf.sample(&mut g)).collect();

    let run_a = drive(cfg, &templates, &schedule, &dir.join("run-a"))?;
    let run_b = drive(cfg, &templates, &schedule, &dir.join("run-b"))?;

    let reproducible = run_a.digest == run_b.digest;
    let flight_dumps = count_replica_down_dumps(&dir.join("run-a"));
    let warm_ratio = if run_a.prekill_hit_rate > 0.0 {
        run_a.postrestart_hit_rate / run_a.prekill_hit_rate
    } else {
        0.0
    };

    let report = RouterStormReport {
        seed: cfg.seed,
        requests: cfg.requests,
        templates: templates.len(),
        replicas: cfg.replicas,
        victim: run_a.victim_name.clone(),
        kill_index: (cfg.requests / 3) as u64,
        restart_index: (2 * cfg.requests / 3) as u64,
        ok: run_a.ok,
        ok_failover: run_a.ok_failover,
        typed_errors: run_a.typed_errors.clone(),
        untyped: 0,
        oracle_mismatches: run_a.oracle_mismatches,
        retries: run_a.retries,
        failovers: run_a.failovers,
        shed_down: run_a.shed_down,
        shed_open: run_a.shed_open,
        prekill_hit_rate: run_a.prekill_hit_rate,
        postrestart_hit_rate: run_a.postrestart_hit_rate,
        warm_ratio,
        breaker_cycle: run_a.breaker_cycle,
        victim_down_ticks: run_a.victim_down_ticks,
        virtual_p99_ms: run_a.virtual_p99_ms,
        flight_dumps,
        digest: format!("{:016x}", run_a.digest),
        reproducible,
        elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
    };

    if own_dir {
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- Invariants.
    if !reproducible {
        return Err(format!(
            "campaign not reproducible: digest {:016x} vs {:016x}",
            run_a.digest, run_b.digest
        ));
    }
    if run_a.oracle_mismatches > 0 {
        return Err(format!(
            "{} served mappings diverged from the cold oracle",
            run_a.oracle_mismatches
        ));
    }
    if run_a.victim_down_ticks == 0 {
        return Err("health checks never declared the killed replica down".into());
    }
    if run_a.victim_final_health != HealthState::Healthy {
        return Err(format!(
            "victim did not recover to healthy (final: {})",
            run_a.victim_final_health.label()
        ));
    }
    if !run_a.breaker_cycle {
        return Err("victim breaker did not walk open → half-open → closed".into());
    }
    if warm_ratio < 0.70 {
        return Err(format!(
            "post-failover hit rate did not recover: warm ratio {warm_ratio:.3} < 0.70 \
             (pre {:.3}, post {:.3})",
            run_a.prekill_hit_rate, run_a.postrestart_hit_rate
        ));
    }
    if run_a.virtual_p99_ms > 100.0 {
        return Err(format!(
            "virtual p99 {:.2} ms exceeds the 100 ms degradation cap",
            run_a.virtual_p99_ms
        ));
    }
    if flight_dumps == 0 {
        return Err("no flight-replica_down-*.json dump was left behind".into());
    }
    if run_a.ok_failover == 0 {
        return Err("no request was served by a failover replica".into());
    }

    Ok(report)
}

/// Renders the human-readable router-storm summary.
pub fn render(report: &RouterStormReport) -> String {
    let typed: u64 = report.typed_errors.values().sum();
    format!(
        "== router-storm — seed {} ==\n\
         fleet         {:>8} replicas × 64 vnodes, victim {} (kill @ {}, restart @ {})\n\
         outcomes      {:>8} ok ({} via failover), {} typed errors, 0 untyped, 0 oracle drift\n\
         fleet motion  {:>8} retries, {} failovers, {} shed (down), {} shed (breaker)\n\
         health        {:>8} down ticks on the victim; ends healthy\n\
         breaker       cycle open → half-open → closed: {}\n\
         hit rate      pre-kill {:.1}% → post-restart {:.1}%  (warm ratio {:.2}, gate ≥ 0.70)\n\
         latency       virtual p99 {:>8.2} ms (cap 100 ms)\n\
         flight        {:>8} replica_down dump(s)\n\
         digest        {}  reproducible: {}\n\
         wall clock    {:>8.1} ms (two runs)",
        report.seed,
        report.replicas,
        report.victim,
        report.kill_index,
        report.restart_index,
        report.ok,
        report.ok_failover,
        typed,
        report.retries,
        report.failovers,
        report.shed_down,
        report.shed_open,
        report.victim_down_ticks,
        if report.breaker_cycle { "yes" } else { "NO" },
        report.prekill_hit_rate * 100.0,
        report.postrestart_hit_rate * 100.0,
        report.warm_ratio,
        report.virtual_p99_ms,
        report.flight_dumps,
        report.digest,
        report.reproducible,
        report.elapsed_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_router_storm_meets_all_invariants() {
        let report = run(&RouterStormConfig::smoke(7)).unwrap();
        assert!(report.reproducible);
        assert!(report.breaker_cycle);
        assert_eq!(report.untyped, 0);
        assert_eq!(report.oracle_mismatches, 0);
        assert!(report.warm_ratio >= 0.70);
        assert!(report.victim_down_ticks >= 1);
        assert!(report.flight_dumps >= 1);
        assert!(report.ok_failover >= 1);
    }
}
