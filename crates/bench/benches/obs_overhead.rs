//! Guard for the near-zero-cost-when-disabled observability contract:
//! an engine run carrying a *disabled* recorder must cost about the same
//! as a plain run. The instrumented paths compile to one branch per
//! observation, so anything beyond noise indicates an accidental
//! always-on allocation or formatting on the hot path.

use cachemap_bench::timing::bench;
use cachemap_obs::Recorder;
use cachemap_storage::{ClientOp, MappedProgram, PlatformConfig, Simulator};
use std::hint::black_box;
use std::time::Instant;

fn stream(len: usize, span: usize) -> Vec<usize> {
    let mut x = 0x2545_f491_4f6c_dd1du64;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as usize % span
        })
        .collect()
}

fn median_ns<R, F: FnMut() -> R>(warmup: usize, iters: usize, mut f: F) -> u128 {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let platform = PlatformConfig::paper_default();
    let sim = Simulator::new(platform.clone()).expect("paper default is valid");

    let mut program = MappedProgram::new(platform.num_clients);
    for (ci, ops) in program.per_client.iter_mut().enumerate() {
        for (k, chunk) in stream(2000, 2048).into_iter().enumerate() {
            ops.push(ClientOp::Access {
                chunk: (chunk + ci * 7) % 2048,
                write: k % 5 == 0,
            });
        }
    }
    println!("program: {} accesses", program.total_accesses());

    bench("engine/plain", 2, 15, || {
        sim.run(&program).expect("program simulates")
    });
    bench("engine/disabled-recorder", 2, 15, || {
        let mut rec = Recorder::disabled();
        sim.run_observed(&program, &mut rec)
            .expect("program simulates")
    });
    bench("engine/enabled-recorder", 2, 15, || {
        let mut rec = Recorder::enabled(1_000_000);
        sim.run_observed(&program, &mut rec)
            .expect("program simulates")
    });

    let plain = median_ns(2, 15, || sim.run(&program).expect("program simulates"));
    let disabled = median_ns(2, 15, || {
        let mut rec = Recorder::disabled();
        sim.run_observed(&program, &mut rec)
            .expect("program simulates")
    });
    let ratio = disabled as f64 / plain as f64;
    println!("disabled-recorder overhead: {ratio:.3}x");
    assert!(
        ratio < 1.5,
        "disabled recorder must be near-free (got {ratio:.3}x); \
         an instrumented path is doing work while observability is off"
    );
}
