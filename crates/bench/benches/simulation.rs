//! Benchmarks of the storage-platform simulator substrate: cache
//! replacement policies, the discrete-event engine's access path, and
//! whole-program simulation throughput.

use cachemap_bench::timing::bench;
use cachemap_storage::cache::{ChunkCache, FifoCache, LfuCache, LruCache};
use cachemap_storage::{ClientOp, MappedProgram, PlatformConfig, Simulator};

/// A deterministic pseudo-random chunk stream (LCG; no rand dependency
/// needed here).
fn stream(len: usize, span: usize) -> Vec<usize> {
    let mut x = 0x2545_f491_4f6c_dd1du64;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as usize % span
        })
        .collect()
}

fn drive(cache: &mut dyn ChunkCache, accesses: &[usize]) -> u64 {
    for &a in accesses {
        if !cache.access(a, false) {
            cache.insert(a, false);
        }
    }
    cache.stats().misses
}

fn main() {
    let accesses = stream(10_000, 512);
    bench("cache-policy/lru", 2, 20, || {
        drive(&mut LruCache::new(128), &accesses)
    });
    bench("cache-policy/fifo", 2, 20, || {
        drive(&mut FifoCache::new(128), &accesses)
    });
    bench("cache-policy/lfu", 2, 20, || {
        drive(&mut LfuCache::new(128), &accesses)
    });

    let platform = PlatformConfig::paper_default();
    let sim = Simulator::new(platform.clone()).expect("paper default is valid");

    // 64 clients × 2000 accesses of mixed locality.
    let mut program = MappedProgram::new(platform.num_clients);
    for (ci, ops) in program.per_client.iter_mut().enumerate() {
        for (k, chunk) in stream(2000, 2048).into_iter().enumerate() {
            ops.push(ClientOp::Access {
                chunk: (chunk + ci * 7) % 2048,
                write: k % 5 == 0,
            });
        }
    }
    let total = program.total_accesses();
    println!("engine program: {total} accesses");

    bench("engine/mixed-128k-accesses", 1, 10, || {
        sim.run(&program).expect("benchmark program simulates")
    });
}
