//! Criterion benchmarks of the storage-platform simulator substrate:
//! cache replacement policies, the discrete-event engine's access path,
//! and whole-program simulation throughput.

use cachemap_storage::cache::{ChunkCache, FifoCache, LfuCache, LruCache};
use cachemap_storage::{ClientOp, MappedProgram, PlatformConfig, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A deterministic pseudo-random chunk stream (LCG; no rand dependency
/// needed here).
fn stream(len: usize, span: usize) -> Vec<usize> {
    let mut x = 0x2545_f491_4f6c_dd1du64;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as usize % span
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let accesses = stream(10_000, 512);
    let mut group = c.benchmark_group("cache-policy");
    group.bench_function("lru", |b| {
        b.iter(|| {
            let mut cache = LruCache::new(128);
            for &a in &accesses {
                if !cache.access(black_box(a), false) {
                    cache.insert(a, false);
                }
            }
            cache.stats().misses
        })
    });
    group.bench_function("fifo", |b| {
        b.iter(|| {
            let mut cache = FifoCache::new(128);
            for &a in &accesses {
                if !cache.access(black_box(a), false) {
                    cache.insert(a, false);
                }
            }
            cache.stats().misses
        })
    });
    group.bench_function("lfu", |b| {
        b.iter(|| {
            let mut cache = LfuCache::new(128);
            for &a in &accesses {
                if !cache.access(black_box(a), false) {
                    cache.insert(a, false);
                }
            }
            cache.stats().misses
        })
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let platform = PlatformConfig::paper_default();
    let sim = Simulator::new(platform.clone());

    // 64 clients × 2000 accesses of mixed locality.
    let mut program = MappedProgram::new(platform.num_clients);
    for (ci, ops) in program.per_client.iter_mut().enumerate() {
        for (k, chunk) in stream(2000, 2048).into_iter().enumerate() {
            ops.push(ClientOp::Access {
                chunk: (chunk + ci * 7) % 2048,
                write: k % 5 == 0,
            });
        }
    }
    let total = program.total_accesses();

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(total));
    group.bench_function("mixed-128k-accesses", |b| {
        b.iter(|| sim.run(black_box(&program)))
    });
    group.finish();
}

criterion_group!(benches, bench_policies, bench_engine);
criterion_main!(benches);
