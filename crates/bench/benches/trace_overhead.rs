//! Guard for the free-when-off request-tracing contract: a mapping
//! service with tracing disabled must serve the L1 hit path at about
//! the cost of the untraced service (the instrumented path is one
//! branch per stage), and with tracing *on* the full pipeline — stage
//! timestamps, trace finalization, flight-recorder ring write — must
//! stay under 1.5× of the disabled path. The disabled path's response
//! must also be byte-identical to the untraced wire format.

use cachemap_core::{MapperConfig, Version};
use cachemap_polyhedral::{AffineExpr, ArrayDecl, ArrayRef, IterationSpace, LoopNest, Program};
use cachemap_service::{MapRequest, MapService, ServiceConfig};
use cachemap_storage::PlatformConfig;
use cachemap_util::ToJson;
use std::hint::black_box;
use std::time::{Duration, Instant};

fn tiny_request() -> MapRequest {
    let a = ArrayDecl::new("A", vec![256], 8);
    let space = IterationSpace::rectangular(&[256]);
    let nest = LoopNest::new(
        "axpy",
        space,
        vec![
            ArrayRef::read(0, vec![AffineExpr::var(0)]),
            ArrayRef::write(0, vec![AffineExpr::var(0)]),
        ],
    );
    MapRequest {
        id: 1,
        program: Program::new("axpy", vec![a], vec![nest]),
        platform: PlatformConfig::tiny(),
        mapper: MapperConfig::default(),
        version: Version::InterProcessor,
        deadline_ms: None,
        tenant: None,
    }
}

fn median_ns<R, F: FnMut() -> R>(warmup: usize, iters: usize, mut f: F) -> u128 {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let off = MapService::start(ServiceConfig {
        tracing: false,
        ..ServiceConfig::default()
    });
    let on = MapService::start(ServiceConfig {
        tracing: true,
        ..ServiceConfig::default()
    });
    let req = tiny_request();

    // Warm both L1 caches so the measured path is the pure hit path.
    let cold_off = off.submit(req.clone()).expect("off service maps");
    let cold_on = on.submit_traced(req.clone(), 0).expect("on service maps");
    assert_eq!(
        cold_off.mapping.to_json().to_string_compact(),
        cold_on.mapping.to_json().to_string_compact(),
        "both services must serve identical mappings"
    );

    // Disabled tracing leaves no trace anywhere on the response.
    let hit = off.submit(req.clone()).expect("off hit");
    assert!(
        hit.trace.is_none(),
        "tracing off must not attach a trace to responses"
    );

    const WARMUP: usize = 200;
    const ITERS: usize = 2000;
    let t_off = median_ns(WARMUP, ITERS, || {
        off.submit(req.clone()).expect("off hit path")
    });
    let t_on = median_ns(WARMUP, ITERS, || {
        let mut resp = on.submit_traced(req.clone(), 3).expect("on hit path");
        if let Some(pending) = resp.trace.take() {
            black_box(on.finalize_trace(pending, Duration::from_micros(1)));
        }
        resp
    });

    let ratio = t_on as f64 / t_off as f64;
    println!("hit path off: {t_off} ns  on: {t_on} ns  overhead: {ratio:.3}x");
    assert!(
        ratio < 1.5,
        "tracing overhead on the hit path must stay under 1.5x (got {ratio:.3}x)"
    );

    on.shutdown();
    off.shutdown();
}
