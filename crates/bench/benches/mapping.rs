//! Criterion benchmarks of the mapping pipeline itself — the
//! "compile-time overhead" dimension the paper reports as a 46-87%
//! compilation-time increase (Section 5.1).
//!
//! Benchmarked stages: iteration tagging (§4.2), similarity-graph
//! construction, hierarchical clustering + load balancing (Figure 5),
//! local scheduling (Figure 15), and the end-to-end `Mapper::map`.

use cachemap_core::cluster::{distribute, ClusterParams};
use cachemap_core::graph::SimilarityGraph;
use cachemap_core::schedule::{schedule, ScheduleParams};
use cachemap_core::tags::tag_nest;
use cachemap_core::{Mapper, Version};
use cachemap_polyhedral::DataSpace;
use cachemap_storage::{HierarchyTree, PlatformConfig};
use cachemap_workloads::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_stages(c: &mut Criterion) {
    let platform = PlatformConfig::paper_default();
    let tree = HierarchyTree::from_config(&platform);
    let app = cachemap_workloads::by_name("hf", Scale::Test).unwrap();
    let data = DataSpace::new(&app.program.arrays, platform.chunk_bytes);

    c.bench_function("tagging/hf-test", |b| {
        b.iter(|| tag_nest(black_box(&app.program), 0, &data))
    });

    let tagged = tag_nest(&app.program, 0, &data);
    c.bench_function("graph/hf-test", |b| {
        b.iter(|| SimilarityGraph::build(black_box(&tagged.chunks)))
    });

    c.bench_function("cluster/hf-test", |b| {
        b.iter(|| distribute(black_box(&tagged.chunks), &tree, &ClusterParams::default()))
    });

    let dist = distribute(&tagged.chunks, &tree, &ClusterParams::default());
    c.bench_function("schedule/hf-test", |b| {
        b.iter(|| {
            schedule(
                black_box(&dist),
                &tagged.chunks,
                &tree,
                &ScheduleParams::default(),
            )
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let platform = PlatformConfig::paper_default();
    let tree = HierarchyTree::from_config(&platform);
    let mapper = Mapper::paper_defaults();
    let mut group = c.benchmark_group("map-end-to-end");
    group.sample_size(10);
    for name in ["hf", "contour", "madbench2"] {
        let app = cachemap_workloads::by_name(name, Scale::Test).unwrap();
        let data = DataSpace::new(&app.program.arrays, platform.chunk_bytes);
        for version in [Version::Original, Version::InterProcessorScheduled] {
            group.bench_function(format!("{name}/{}", version.label()), |b| {
                b.iter(|| {
                    mapper.map(
                        black_box(&app.program),
                        &data,
                        &platform,
                        &tree,
                        version,
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_stages, bench_end_to_end);
criterion_main!(benches);
