//! Benchmarks of the mapping pipeline itself — the "compile-time
//! overhead" dimension the paper reports as a 46-87% compilation-time
//! increase (Section 5.1).
//!
//! Benchmarked stages: iteration tagging (§4.2), similarity-graph
//! construction, hierarchical clustering + load balancing (Figure 5),
//! local scheduling (Figure 15), and the end-to-end `Mapper::map`.

use cachemap_bench::timing::bench;
use cachemap_core::cluster::{distribute, ClusterParams};
use cachemap_core::graph::SimilarityGraph;
use cachemap_core::schedule::{schedule, ScheduleParams};
use cachemap_core::tags::tag_nest;
use cachemap_core::{Mapper, Version};
use cachemap_polyhedral::DataSpace;
use cachemap_storage::{HierarchyTree, PlatformConfig};
use cachemap_workloads::Scale;

fn main() {
    let platform = PlatformConfig::paper_default();
    let tree = HierarchyTree::from_config(&platform).expect("paper default is valid");
    let app = cachemap_workloads::by_name("hf", Scale::Test).unwrap();
    let data = DataSpace::new(&app.program.arrays, platform.chunk_bytes);

    bench("tagging/hf-test", 2, 20, || {
        tag_nest(&app.program, 0, &data)
    });

    let tagged = tag_nest(&app.program, 0, &data);
    bench("graph/hf-test", 2, 20, || {
        SimilarityGraph::build(&tagged.chunks)
    });

    bench("cluster/hf-test", 2, 20, || {
        distribute(&tagged.chunks, &tree, &ClusterParams::default())
    });

    let dist = distribute(&tagged.chunks, &tree, &ClusterParams::default());
    bench("schedule/hf-test", 2, 20, || {
        schedule(&dist, &tagged.chunks, &tree, &ScheduleParams::default())
    });

    let mapper = Mapper::paper_defaults();
    for name in ["hf", "contour", "madbench2"] {
        let app = cachemap_workloads::by_name(name, Scale::Test).unwrap();
        let data = DataSpace::new(&app.program.arrays, platform.chunk_bytes);
        for version in [Version::Original, Version::InterProcessorScheduled] {
            bench(
                &format!("map-end-to-end/{name}/{}", version.label()),
                1,
                10,
                || mapper.map(&app.program, &data, &platform, &tree, version),
            );
        }
    }
}
