//! One criterion benchmark per table/figure of the paper's evaluation,
//! each executing the same experiment pipeline the `repro` binary uses
//! (at test scale, so `cargo bench` finishes in minutes). The actual
//! paper-style rows are produced by `cargo run --release -p
//! cachemap-bench --bin repro -- all`; these benches keep every
//! experiment's machinery exercised and its cost tracked.

use cachemap_bench::experiments;
use cachemap_core::{MapperConfig, Version};
use cachemap_storage::PlatformConfig;
use cachemap_workloads::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn platform() -> PlatformConfig {
    PlatformConfig::paper_default().with_cache_chunks(8, 16, 32)
}

fn bench_default_figures(c: &mut Criterion) {
    let platform = platform();
    // Shared runs feed table2 / fig10 / fig11 / fig18.
    let runs = experiments::default_runs(Scale::Test, &platform);

    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("table2", |b| {
        b.iter(|| experiments::table2(black_box(&runs), Scale::Test))
    });
    group.bench_function("fig10", |b| b.iter(|| experiments::fig10(black_box(&runs))));
    group.bench_function("fig11", |b| b.iter(|| experiments::fig11(black_box(&runs))));
    group.bench_function("fig18", |b| b.iter(|| experiments::fig18(black_box(&runs))));
    group.finish();
}

fn bench_sweep_figures(c: &mut Criterion) {
    let platform = platform();
    let mut group = c.benchmark_group("sweeps");
    group.sample_size(10);
    group.bench_function("suite-run(default-platform)", |b| {
        b.iter(|| {
            cachemap_bench::run_suite(
                Scale::Test,
                black_box(&platform),
                &MapperConfig::default(),
                &[Version::Original, Version::InterProcessor],
            )
        })
    });
    group.bench_function("fig12-topologies", |b| {
        b.iter(|| experiments::fig12(Scale::Test, black_box(&platform)))
    });
    group.bench_function("fig13-capacities", |b| {
        b.iter(|| experiments::fig13(Scale::Test, black_box(&platform)))
    });
    group.bench_function("fig14-chunk-sizes", |b| {
        b.iter(|| experiments::fig14(Scale::Test, black_box(&platform)))
    });
    group.finish();
}

fn bench_ablation_figures(c: &mut Criterion) {
    let platform = platform();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("alphabeta", |b| {
        b.iter(|| experiments::alphabeta(Scale::Test, black_box(&platform)))
    });
    group.bench_function("deps", |b| {
        b.iter(|| experiments::deps_exp(Scale::Test, black_box(&platform)))
    });
    group.bench_function("multinest", |b| {
        b.iter(|| experiments::multinest(Scale::Test, black_box(&platform)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_default_figures,
    bench_sweep_figures,
    bench_ablation_figures
);
criterion_main!(benches);
