//! One benchmark per table/figure of the paper's evaluation, each
//! executing the same experiment pipeline the `repro` binary uses (at
//! test scale, so the full run finishes in minutes). The actual
//! paper-style rows are produced by `cargo run --release -p
//! cachemap-bench --bin repro -- all`; these benches keep every
//! experiment's machinery exercised and its cost tracked.

use cachemap_bench::experiments;
use cachemap_bench::timing::bench;
use cachemap_core::{MapperConfig, Version};
use cachemap_storage::PlatformConfig;
use cachemap_workloads::Scale;

fn platform() -> PlatformConfig {
    PlatformConfig::paper_default().with_cache_chunks(8, 16, 32)
}

fn main() {
    let platform = platform();
    // Shared runs feed table2 / fig10 / fig11 / fig18.
    let runs = experiments::default_runs(Scale::Test, &platform);

    bench("figures/table2", 1, 10, || {
        experiments::table2(&runs, Scale::Test)
    });
    bench("figures/fig10", 1, 10, || experiments::fig10(&runs));
    bench("figures/fig11", 1, 10, || experiments::fig11(&runs));
    bench("figures/fig18", 1, 10, || experiments::fig18(&runs));

    bench("sweeps/suite-run(default-platform)", 1, 10, || {
        cachemap_bench::run_suite(
            Scale::Test,
            &platform,
            &MapperConfig::default(),
            &[Version::Original, Version::InterProcessor],
        )
    });
    bench("sweeps/fig12-topologies", 1, 10, || {
        experiments::fig12(Scale::Test, &platform)
    });
    bench("sweeps/fig13-capacities", 1, 10, || {
        experiments::fig13(Scale::Test, &platform)
    });
    bench("sweeps/fig14-chunk-sizes", 1, 10, || {
        experiments::fig14(Scale::Test, &platform)
    });

    bench("ablations/alphabeta", 1, 10, || {
        experiments::alphabeta(Scale::Test, &platform)
    });
    bench("ablations/deps", 1, 10, || {
        experiments::deps_exp(Scale::Test, &platform)
    });
    bench("ablations/multinest", 1, 10, || {
        experiments::multinest(Scale::Test, &platform)
    });
}
