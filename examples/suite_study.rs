//! Run one evaluation-suite application end to end and print the
//! paper-style per-version comparison (miss rates per level, I/O latency,
//! execution time) — the single-app view behind Figures 10, 11 and 18.
//!
//! ```text
//! cargo run --release --example suite_study [app]
//! ```
//!
//! where `app` is one of `hf sar contour astro e_elem apsi madbench2
//! wupwise` (default: `hf`).

use cachemap::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "hf".to_string());
    let app = cachemap::workloads::by_name(&name, Scale::Paper).unwrap_or_else(|| {
        eprintln!(
            "unknown app {name:?}; pick one of {:?}",
            cachemap::workloads::NAMES
        );
        std::process::exit(2);
    });

    let platform = PlatformConfig::paper_default();
    let data = DataSpace::new(&app.program.arrays, platform.chunk_bytes);
    let tree = HierarchyTree::from_config(&platform).expect("valid platform config");
    let sim = Simulator::new(platform.clone()).expect("valid platform config");
    let mapper = Mapper::paper_defaults();

    println!("{} — {}", app.name, app.description);
    println!(
        "dataset: {} chunks ({} MB at 64 KB); {} iterations across {} nest(s)",
        data.num_chunks(),
        data.num_chunks() as u64 * platform.chunk_bytes / (1 << 20),
        app.program.total_iterations(),
        app.program.nests.len(),
    );
    let (p1, p2, p3) = app.paper_miss_rates;
    println!(
        "paper Table 2 original miss rates: L1 {:.1}%  L2 {:.1}%  L3 {:.1}%\n",
        p1 * 100.0,
        p2 * 100.0,
        p3 * 100.0
    );

    println!(
        "{:<24} {:>8} {:>8} {:>8} {:>11} {:>11}",
        "version", "L1 miss", "L2 miss", "L3 miss", "I/O (norm)", "exec (norm)"
    );
    let mut base: Option<SimReport> = None;
    for version in Version::ALL {
        let mapped = mapper.map(&app.program, &data, &platform, &tree, version);
        let rep = sim.run(&mapped).expect("well-formed mapped program");
        let b = base.get_or_insert_with(|| rep.clone());
        println!(
            "{:<24} {:>7.1}% {:>7.1}% {:>7.1}% {:>11.3} {:>11.3}",
            version.label(),
            rep.l1_miss_rate() * 100.0,
            rep.l2_miss_rate() * 100.0,
            rep.l3_miss_rate() * 100.0,
            rep.io_latency_ns as f64 / b.io_latency_ns as f64,
            rep.exec_time_ns as f64 / b.exec_time_ns as f64,
        );
    }
}
