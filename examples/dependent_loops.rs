//! Mapping loops that carry cross-iteration dependences (Section 5.4).
//!
//! Builds a first-order recurrence nest (`A[i] = f(A[i-8])`) whose
//! dependences cross data-chunk boundaries, then maps it with the two
//! strategies the paper describes:
//!
//! * **co-cluster** — dependent iteration chunks get an infinite edge
//!   weight and land on a single client (no synchronization, less
//!   parallelism);
//! * **sync-insert** — dependences are treated as data sharing and the
//!   lowered program carries explicit signal/wait tokens between clients
//!   (the paper's implemented choice).
//!
//! ```text
//! cargo run --example dependent_loops
//! ```

use cachemap::prelude::*;

fn main() {
    // for i = 8..2047: A[i] = A[i-8] * s  — chunk-crossing recurrence.
    let n: i64 = 2048;
    let stride: i64 = 8;
    let a = ArrayDecl::new("A", vec![n], 8);
    let space = IterationSpace::new(vec![Loop::constant(stride, n - 1)]);
    let refs = vec![
        ArrayRef::read(0, vec![AffineExpr::var_plus(0, -stride)]),
        ArrayRef::write(0, vec![AffineExpr::var(0)]),
    ];
    let nest = LoopNest::new("recurrence", space, refs).with_compute_us(50.0);
    let program = Program::new("recurrence", vec![a], vec![nest]);

    let platform = PlatformConfig::tiny();
    let data = DataSpace::new(&program.arrays, 64); // 8 elements per chunk
    let tree = HierarchyTree::from_config(&platform).expect("valid platform config");
    let sim = Simulator::new(platform.clone()).expect("valid platform config");

    // The dependence analysis sees the flow dependence exactly.
    let deps = cachemap::polyhedral::deps::exact_dependences(&program.nests[0], &program.arrays);
    println!(
        "dependences: {} distinct distance vectors, e.g. {:?} ({:?})",
        deps.len(),
        deps[0].distance,
        deps[0].kind
    );
    println!(
        "outermost parallel level: {:?} (none — every level carries the recurrence)\n",
        cachemap::polyhedral::deps::outermost_parallel_level(&deps, 1)
    );

    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>10}",
        "strategy", "exec (ms)", "I/O (ms)", "sync ops", "clients"
    );
    for (label, strategy) in [
        ("co-cluster", DepStrategy::CoCluster),
        ("sync-insert", DepStrategy::SyncInsert),
    ] {
        let mapper = Mapper::new(MapperConfig {
            dep_strategy: strategy,
            ..MapperConfig::default()
        });
        let mapped = mapper.map(&program, &data, &platform, &tree, Version::InterProcessor);
        let syncs = mapped
            .per_client
            .iter()
            .flatten()
            .filter(|op| matches!(op, ClientOp::Signal { .. } | ClientOp::Wait { .. }))
            .count();
        let busy = mapped
            .per_client
            .iter()
            .filter(|ops| !ops.is_empty())
            .count();
        let rep = sim.run(&mapped).expect("well-formed mapped program");
        println!(
            "{:<14} {:>10.2} {:>10.2} {:>12} {:>10}",
            label,
            rep.exec_time_ms(),
            rep.io_latency_ms(),
            syncs,
            busy
        );
    }

    println!(
        "\nCo-clustering keeps the whole dependence chain on one client —\n\
         correct without synchronization but serial. Sync-insert spreads the\n\
         chain and pays signal/wait tokens instead (the paper's choice)."
    );
}
