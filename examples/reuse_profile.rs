//! Trace capture and reuse-distance analysis.
//!
//! Runs one suite application under the original and inter-processor
//! mappings with trace capture on, then prints Mattson reuse-distance
//! profiles — the analytical lens that explains *why* the mapping
//! changes miss rates: an access hits an LRU cache of capacity C iff
//! its reuse distance is < C, so the profile predicts the miss rate at
//! every capacity at once.
//!
//! ```text
//! cargo run --release --example reuse_profile [app]
//! ```

use cachemap::prelude::*;
use cachemap::storage::trace::ReuseProfile;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "astro".to_string());
    let app = cachemap::workloads::by_name(&name, Scale::Paper).unwrap_or_else(|| {
        eprintln!("unknown app {name:?}");
        std::process::exit(2);
    });

    let platform = PlatformConfig::paper_default();
    let data = DataSpace::new(&app.program.arrays, platform.chunk_bytes);
    let tree = HierarchyTree::from_config(&platform).expect("valid platform config");
    let sim = Simulator::new(platform.clone()).expect("valid platform config");
    let mapper = Mapper::paper_defaults();

    println!("{name}: reuse-distance view of the mapping effect\n");
    for version in [Version::Original, Version::InterProcessor] {
        let mapped = mapper.map(&app.program, &data, &platform, &tree, version);
        let (report, trace) = sim.run_traced(&mapped).expect("well-formed mapped program");

        // Aggregate private (per-client) profile: what L1 caches see.
        let mut private = ReuseProfile::default();
        for c in 0..platform.num_clients {
            private.merge(&trace.client_reuse_profile(c));
        }

        println!("== {} ==", version.label());
        println!(
            "  simulated:  L1 miss {:5.1}%   I/O {:8.1} ms   disk reads {}",
            report.l1_miss_rate() * 100.0,
            report.io_latency_ms() / platform.num_clients as f64,
            report.disk_reads
        );
        println!(
            "  predicted L1 miss from the trace's reuse distances: {:5.1}%",
            private.miss_rate_at_capacity(platform.client_cache_chunks) * 100.0
        );
        print!("  L1 miss rate if the client caches held N chunks:  ");
        for cap in [8usize, 16, 32, 64, 128] {
            print!(
                "N={cap}:{:4.1}%  ",
                private.miss_rate_at_capacity(cap) * 100.0
            );
        }
        println!();
        match private.mean_distance() {
            Some(d) => println!("  mean finite reuse distance: {d:.1} chunks"),
            None => println!("  no temporal reuse at all (pure streaming)"),
        }
        println!(
            "  cold (first-touch) fraction: {:4.1}%\n",
            private.cold as f64 / private.total.max(1) as f64 * 100.0
        );
    }
    println!(
        "A mapping only helps where reuse distances are reducible: the\n\
         inter-processor version compacts each client's footprint so more\n\
         of its reuse lands inside the 32-chunk L1 window."
    );
}
