//! Mapping onto custom storage hierarchies.
//!
//! The scheme "can be tuned to target any multi-level storage cache
//! hierarchy" (abstract): this example takes one suite application and
//! maps it onto several platforms — deep and shallow trees, fat and thin
//! fan-outs, different replacement policies — showing how the savings
//! track the sharing degree (the Figure 12 effect).
//!
//! ```text
//! cargo run --release --example custom_hierarchy
//! ```

use cachemap::prelude::*;
use cachemap::storage::config::PolicyKind;

fn run(app: &Application, platform: &PlatformConfig) -> (f64, f64) {
    let data = DataSpace::new(&app.program.arrays, platform.chunk_bytes);
    let tree = HierarchyTree::from_config(platform).expect("valid platform config");
    let sim = Simulator::new(platform.clone()).expect("valid platform config");
    let mapper = Mapper::paper_defaults();
    let base = sim
        .run(&mapper.map(&app.program, &data, platform, &tree, Version::Original))
        .expect("well-formed mapped program");
    let inter = sim
        .run(&mapper.map(
            &app.program,
            &data,
            platform,
            &tree,
            Version::InterProcessor,
        ))
        .expect("well-formed mapped program");
    (
        inter.io_latency_ns as f64 / base.io_latency_ns as f64,
        inter.exec_time_ns as f64 / base.exec_time_ns as f64,
    )
}

fn main() {
    let app = cachemap::workloads::by_name("astro", Scale::Paper).expect("suite app");
    println!("application: {} ({})\n", app.name, app.description);
    println!(
        "{:<44} {:>10} {:>10}",
        "platform", "I/O (norm)", "exec (norm)"
    );

    let base = PlatformConfig::paper_default();
    let candidates: Vec<(String, PlatformConfig)> = vec![
        (
            "paper default (64 cl, 32 io, 16 st), LRU".into(),
            base.clone(),
        ),
        (
            "shallow: every client its own I/O path (64,64,16)".into(),
            base.clone().with_topology(64, 64, 16),
        ),
        (
            "fat I/O sharing: 4 clients per I/O node (64,16,8)".into(),
            base.clone().with_topology(64, 16, 8),
        ),
        (
            "single storage node (64,32,1)".into(),
            base.clone().with_topology(64, 32, 1),
        ),
        (
            "FIFO caches".into(),
            base.clone().with_policy(PolicyKind::Fifo),
        ),
        (
            "LFU caches".into(),
            base.clone().with_policy(PolicyKind::Lfu),
        ),
        (
            "mixed zoo: SLRU L1, LFUDA L2, GDSF L3".into(),
            base.clone()
                .with_level_policies(PolicyKind::Slru, PolicyKind::Lfuda, PolicyKind::Gdsf),
        ),
    ];

    for (label, platform) in candidates {
        let (io, exec) = run(&app, &platform);
        println!("{label:<44} {io:>10.3} {exec:>10.3}");
    }

    println!(
        "\nLower is better (normalized to the original mapping on the same platform).\n\
         More clients behind each shared cache → more destructive interference for\n\
         the original mapping → larger wins for hierarchy-aware clustering."
    );
}
