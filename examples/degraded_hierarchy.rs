//! Degraded hierarchy: inject faults into the storage platform and
//! compare plain failover against failure-aware remapping.
//!
//! A mid-run crash takes out every I/O node of storage group 0. The
//! crashed nodes' clients either keep their work and fail over (extra
//! hop, no L2), or — with `Mapper::map_with_failures` — hand their
//! iterations to the survivors by re-clustering against the pruned
//! cache tree.
//!
//! ```text
//! cargo run --release --example degraded_hierarchy
//! ```

use cachemap::prelude::*;
use cachemap::storage::{FaultEvent, FaultPlan, TransientFaults};

fn main() {
    // One of the paper's evaluation applications at full scale.
    let app = cachemap::workloads::by_name("astro", Scale::Paper).expect("known app");
    let program = &app.program;

    let platform = PlatformConfig::paper_default();
    let data = DataSpace::new(&program.arrays, platform.chunk_bytes);
    let tree = HierarchyTree::from_config(&platform).expect("valid platform config");
    let mapper = Mapper::paper_defaults();

    // Every I/O node of storage group 0 crashes, so its clients have no
    // surviving sibling to fail over to — they go direct-to-storage.
    let crashed_ios: Vec<usize> = (0..platform.num_io_nodes)
        .filter(|&io| tree.storage_of_io(io) == 0)
        .collect();
    let failed_clients: Vec<usize> = (0..platform.num_clients)
        .filter(|&c| crashed_ios.contains(&tree.io_of_client(c)))
        .collect();
    println!(
        "crashing I/O nodes {:?} -> stranding clients {:?}\n",
        crashed_ios, failed_clients
    );

    // Three mappings: the original block mapping and the healthy
    // inter-processor mapping (both will fail over), and the
    // inter-processor version remapped around the crash up front.
    let orig = mapper.map(program, &data, &platform, &tree, Version::Original);
    let inter = mapper.map(program, &data, &platform, &tree, Version::InterProcessor);
    let remapped = mapper
        .map_with_failures(
            program,
            &data,
            &platform,
            &tree,
            Version::InterProcessor,
            &failed_clients,
        )
        .expect("valid failed-client set");

    // Schedule the crash a third of the way into the healthy run, and
    // sprinkle in seeded transient errors and a slow disk group.
    let clean = Simulator::new(platform.clone())
        .expect("valid platform config")
        .run(&inter)
        .expect("well-formed mapped program");
    let at_ns = (clean.exec_time_ns / 3).max(1);
    let mut plan = FaultPlan::new()
        .with_event(FaultEvent::DiskDegrade {
            storage: 1,
            at_ns: 0,
            latency_factor: 2,
        })
        .with_transient(TransientFaults {
            rate_ppm: 5_000,
            seed: 42,
        });
    for &io in &crashed_ios {
        plan = plan.with_event(FaultEvent::IoNodeCrash { io, at_ns });
    }
    plan.validate(&platform).expect("plan fits the platform");

    println!(
        "{:<28} {:>10} {:>9} {:>8} {:>10} {:>10}",
        "mapping", "exec (ms)", "failovers", "retries", "lost dirty", "recov (ms)"
    );
    for (label, mapped) in [
        ("original + failover", &orig),
        ("inter + failover", &inter),
        ("inter + remap", &remapped),
    ] {
        let rep = Simulator::new(platform.clone())
            .expect("valid platform config")
            .with_fault_plan(plan.clone())
            .expect("validated plan")
            .run(mapped)
            .expect("well-formed mapped program");
        println!(
            "{:<28} {:>10.1} {:>9} {:>8} {:>10} {:>10.2}",
            label,
            rep.exec_time_ms(),
            rep.faults.failovers,
            rep.faults.retries,
            rep.faults.lost_dirty_chunks,
            rep.faults.recovery_ns as f64 / 1e6,
        );
    }
    println!(
        "\n(healthy inter-processor run: {:.1} ms; the crash fires at {:.1} ms.\n Remapping avoids the degraded route entirely — zero failovers — at the\n cost of slightly larger survivor shares. `repro resilience` sweeps this\n comparison over the whole application suite.)",
        clean.exec_time_ms(),
        at_ns as f64 / 1e6
    );
}
