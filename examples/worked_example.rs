//! The paper's worked example (Section 4.4): the Figure 6 code fragment
//! on the Figure 7 hierarchy, reproducing the tags and graph of Figure 8,
//! the two-level clustering of Figure 9, and the final schedule of
//! Figure 17.
//!
//! ```text
//! cargo run --example worked_example
//! ```

use cachemap::core::cluster::{distribute, ClusterParams};
use cachemap::core::graph::SimilarityGraph;
use cachemap::core::schedule::{schedule, ScheduleParams};
use cachemap::core::tags::tag_nest;
use cachemap::prelude::*;

fn main() {
    // Figure 6:
    //   int A[m];                      // m = 12·d, divided into 12 chunks
    //   for i = 0 to m - 4d - 1
    //       A[i] = A[x] + A[i+4d] + A[i+2d];   // x = i % d → chunk 0
    let d: i64 = 4;
    let m = 12 * d;
    let a = ArrayDecl::new("A", vec![m], 8);
    let space = IterationSpace::new(vec![Loop::constant(0, m - 4 * d - 1)]);
    let refs = vec![
        ArrayRef::write(0, vec![AffineExpr::var(0)]),
        ArrayRef::read(0, vec![AffineExpr::var(0).with_mod(d)]), // A[i % d]
        ArrayRef::read(0, vec![AffineExpr::var_plus(0, 4 * d)]),
        ArrayRef::read(0, vec![AffineExpr::var_plus(0, 2 * d)]),
    ];
    let program = Program::new(
        "figure6",
        vec![a],
        vec![LoopNest::new("figure6", space, refs)],
    );
    let data = DataSpace::new(&program.arrays, 8 * d as u64); // chunk = d elements

    println!("Iteration chunks and tags (Figure 8):");
    let tagged = tag_nest(&program, 0, &data);
    for (k, c) in tagged.chunks.iter().enumerate() {
        println!(
            "  γ{}  i = {:>2}..{:<2}  Λ = {}",
            k + 1,
            c.points.first().unwrap()[0],
            c.points.last().unwrap()[0],
            c.tag.to_tag_string()
        );
    }

    println!("\nSimilarity edges with weight ≥ 2 (Figure 8 hides weight-1 edges):");
    let graph = SimilarityGraph::build(&tagged.chunks);
    for (i, j, w) in graph.edges_at_least(2) {
        println!("  ω(γ{}, γ{}) = {}", i + 1, j + 1, w);
    }

    // Figure 7: 4 clients, 2 I/O nodes, 1 storage node.
    let platform = PlatformConfig::tiny();
    let tree = HierarchyTree::from_config(&platform).expect("valid platform config");

    println!("\nHierarchical clustering (Figure 9):");
    let dist = distribute(&tagged.chunks, &tree, &ClusterParams::default());
    for (client, items) in dist.per_client.iter().enumerate() {
        let names: Vec<String> = items.iter().map(|i| format!("γ{}", i.chunk + 1)).collect();
        println!(
            "  CN{client} ← {{{}}}   (via I/O node {})",
            names.join(", "),
            tree.io_of_client(client)
        );
    }

    println!("\nLocal schedule, α = β = 0.5 (Figure 17):");
    let sched = schedule(&dist, &tagged.chunks, &tree, &ScheduleParams::default());
    for (client, items) in sched.per_client.iter().enumerate() {
        let names: Vec<String> = items.iter().map(|i| format!("γ{}", i.chunk + 1)).collect();
        println!("  Compute Node {client}: {}", names.join(" → "));
    }

    // And run it: the mapped program executes on the simulated platform.
    let mapper = Mapper::paper_defaults();
    let mapped = mapper.map(
        &program,
        &data,
        &platform,
        &tree,
        Version::InterProcessorScheduled,
    );
    let rep = Simulator::new(platform)
        .expect("valid platform config")
        .run(&mapped)
        .expect("well-formed mapped program");
    println!(
        "\nSimulated on the Figure 7 platform: {} accesses, L1 miss {:.1}%, exec {:.2} ms",
        rep.l1.accesses(),
        rep.l1_miss_rate() * 100.0,
        rep.exec_time_ms()
    );
}
