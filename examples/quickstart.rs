//! Quickstart: build a small out-of-core loop nest, map it with all four
//! versions (original, intra-processor, inter-processor, inter+sched),
//! and compare the simulated storage-cache behaviour.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cachemap::prelude::*;

fn main() {
    // A 2-D "transpose-and-scale" kernel over disk-resident matrices:
    //     for (i, j): B[j][i] = s · A[i][j]
    // The write walks B column-major, so contiguous block mapping leaves
    // a lot of cross-client sharing on the table.
    let n: i64 = 48; // blocks per side; one block = one 64 KB chunk
    let e: i64 = 8192; // elements per 64 KB chunk (8-byte elements)
    let a = ArrayDecl::new("A", vec![n * n * e], 8);
    let b = ArrayDecl::new("B", vec![n * n * e], 8);
    let space = IterationSpace::rectangular(&[n, n]);
    let refs = vec![
        ArrayRef::read(0, vec![AffineExpr::new(vec![n * e, e], 0)]), // A[i][j]
        ArrayRef::write(1, vec![AffineExpr::new(vec![e, n * e], 0)]), // B[j][i]
    ];
    let nest = LoopNest::new("transpose", space, refs).with_compute_us(300.0);
    let program = Program::new("transpose", vec![a, b], vec![nest]);

    // The paper's platform: 64 clients → 32 I/O nodes → 16 storage nodes.
    let platform = PlatformConfig::paper_default();
    let data = DataSpace::new(&program.arrays, platform.chunk_bytes);
    let tree = HierarchyTree::from_config(&platform).expect("valid platform config");
    let sim = Simulator::new(platform.clone()).expect("valid platform config");
    let mapper = Mapper::paper_defaults();

    println!(
        "transpose kernel: {} iterations, {} data chunks\n",
        program.total_iterations(),
        data.num_chunks()
    );
    println!(
        "{:<24} {:>8} {:>8} {:>8} {:>12} {:>12}",
        "version", "L1 miss", "L2 miss", "L3 miss", "I/O (ms)", "exec (ms)"
    );
    let mut baseline_io = None;
    for version in Version::ALL {
        let mapped = mapper.map(&program, &data, &platform, &tree, version);
        let rep = sim.run(&mapped).expect("well-formed mapped program");
        let io_ms = rep.io_latency_ms() / platform.num_clients as f64;
        baseline_io.get_or_insert(io_ms);
        println!(
            "{:<24} {:>7.1}% {:>7.1}% {:>7.1}% {:>12.1} {:>12.1}",
            version.label(),
            rep.l1_miss_rate() * 100.0,
            rep.l2_miss_rate() * 100.0,
            rep.l3_miss_rate() * 100.0,
            io_ms,
            rep.exec_time_ms(),
        );
    }
    println!(
        "\n(I/O is the per-client average; versions issue identical accesses, only the\n iteration-to-client assignment differs — the paper's Section 5.1 setup.)"
    );
}
